"""Setuptools shim so the package installs editable without the wheel package."""

from setuptools import setup

setup()
