"""Tests for the GENUS taxonomy and the component catalog."""

from __future__ import annotations

import pytest

from repro.components import genus, standard_catalog
from repro.components.catalog import (
    CatalogError,
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)
from repro.components.counters import FIGURE5_CONFIGURATIONS, counter_parameters


# ---------------------------------------------------------------------------
# GENUS taxonomy
# ---------------------------------------------------------------------------


def test_function_groups_cover_all_functions():
    assert set(genus.ALL_FUNCTIONS) == {
        f for group in genus.FUNCTION_GROUPS.values() for f in group
    }
    assert "ADD" in genus.ARITHMETIC_FUNCTIONS
    assert "MUX_SCL" in genus.SELECT_FUNCTIONS
    assert "STORAGE" in genus.STRUCTURAL_FUNCTIONS


def test_normalize_function_accepts_aliases_and_case():
    assert genus.normalize_function("+") == "ADD"
    assert genus.normalize_function("add") == "ADD"
    assert genus.normalize_function(">=") == "GE"
    with pytest.raises(genus.UnknownFunctionError):
        genus.normalize_function("FROBNICATE")


def test_function_group_lookup():
    assert genus.function_group("ADD") == "arithmetic"
    assert genus.function_group("EQ") == "relational"
    assert genus.function_group("STORAGE") == "structural"


def test_component_type_lookup_and_functions():
    counter = genus.component_type("Counter")
    assert "INC" in counter.functions
    assert genus.component_type("counter").name == "Counter"
    with pytest.raises(genus.UnknownComponentTypeError):
        genus.component_type("Gizmo")
    adders = genus.component_types_for_function("ADD")
    names = {ct.name for ct in adders}
    assert {"Adder", "Adder_Subtractor", "ALU"} <= names


def test_comparator_aliases():
    comparator = genus.component_type("Comparator")
    aliases = comparator.alias_map()
    assert aliases["O0"] == "OEQ"
    assert aliases["O2"] == "OGT"


def test_default_attributes_and_merge():
    merged = genus.merge_attributes({"size": 8})
    assert merged["size"] == 8
    assert merged["input_type"] == "high"
    assert genus.merge_attributes()["output_tri_state"] == 0


def test_function_operands_shapes():
    inputs, outputs = genus.function_operands("ADD")
    assert inputs == ("I0", "I1", "Cin") and outputs == ("O0", "Cout")
    inputs, outputs = genus.function_operands("NOT")
    assert inputs == ("I0",) and outputs == ("O0",)
    inputs, outputs = genus.function_operands("MUX_SCL")
    assert "C0" in inputs


# ---------------------------------------------------------------------------
# Catalog structure
# ---------------------------------------------------------------------------


def test_standard_catalog_is_populated(catalog):
    assert len(catalog) >= 25
    names = set(catalog.names())
    assert {"counter", "ripple_carry_adder", "adder_subtractor", "alu",
            "register", "mux2", "comparator"} <= names


def test_catalog_lookup_by_type_and_function(catalog):
    counters = catalog.by_component_type("Counter")
    assert any(impl.name == "counter" for impl in counters)
    both = catalog.by_functions(["ADD", "SUB"])
    assert {impl.name for impl in both} == {"adder_subtractor", "alu"}
    storage = catalog.by_functions(["STORAGE"])
    assert any(impl.name == "register" for impl in storage)
    assert any(impl.name == "counter" for impl in storage)


def test_catalog_get_is_case_insensitive(catalog):
    assert catalog.get("COUNTER").name == "counter"
    with pytest.raises(CatalogError):
        catalog.get("does_not_exist")


def test_every_implementation_expands_with_defaults(catalog):
    for implementation in catalog.implementations():
        flat = implementation.expand()
        assert flat.inputs or flat.outputs
        flat.validate()


def test_resolve_parameters_rejects_unknown_override(catalog):
    counter = catalog.get("counter")
    with pytest.raises(CatalogError):
        counter.resolve_parameters({"bogus": 3})


def test_attributes_to_parameters_maps_size(catalog):
    counter = catalog.get("counter")
    overrides = counter.attributes_to_parameters({"size": 6, "input_type": "high"})
    assert overrides == {"size": 6}


def test_connection_info_format(catalog):
    counter = catalog.get("counter")
    info = counter.connection_info()
    assert "## function INC" in info
    assert "** DWUP 0" in info
    assert "** CLK 1 edge_trigger" in info
    binding = counter.binding_for("INC")
    assert binding.operands()["O0"] == "Q"
    with pytest.raises(CatalogError):
        counter.binding_for("MUL")


def test_duplicate_registration_rejected(catalog):
    fresh = ComponentCatalog()
    impl = ComponentImplementation(
        name="dup",
        component_type="Buffer",
        functions=("BUF",),
        iif_source="NAME: D;\nINORDER: A;\nOUTORDER: O;\n{ O = A; }",
        default_parameters={},
    )
    fresh.add(impl)
    with pytest.raises(CatalogError):
        fresh.add(impl)


def test_figure5_configurations_are_valid(catalog):
    counter = catalog.get("counter")
    labels = [label for label, _ in FIGURE5_CONFIGURATIONS]
    assert labels[0] == "ripple"
    assert len(labels) == 5
    for _, parameters in FIGURE5_CONFIGURATIONS:
        flat = counter.expand(parameters)
        assert len([s for s in flat.state_signals() if s.startswith("Q[")]) == 5


def test_counter_parameters_helper():
    params = counter_parameters(size=6, load=True, enable=False, up_or_down=3)
    assert params == {"size": 6, "type": 2, "load": 1, "enable": 0, "up_or_down": 3}


def test_function_binding_render():
    binding = FunctionBinding(
        function="ADD",
        operand_map=(("I0", "A"), ("O0", "O")),
        controls=(ControlSetting("S0", 1), ControlSetting("CLK", 1, "edge_trigger")),
    )
    text = binding.render()
    assert text.splitlines()[0] == "## function ADD"
    assert "I0 is A high" in text
    assert "** CLK 1 edge_trigger" in text
