"""Slow-generator helpers for the job scheduler / cancellation tests.

Lives outside ``conftest.py`` under a unique module name: both ``tests/``
and ``benchmarks/`` carry a ``conftest`` and a bare ``import conftest``
resolves to whichever was loaded first in a whole-repo pytest run.
"""

from __future__ import annotations

import time

from repro.api import ComponentService
from repro.components import standard_catalog
from repro.core.generation import EmbeddedGenerator
from repro.core.progress import checkpoint


def make_slow_generator(cell_library=None, delay=0.3, slices=6):
    """An :class:`EmbeddedGenerator` that simulates the paper's *external*
    generator tools: before the real flow it sleeps in slices, hitting a
    cooperative checkpoint between every slice.

    The sleep releases the GIL (exactly like waiting on an external MILO /
    LES process would), so concurrent jobs genuinely overlap on one core,
    and cancellation tests get a wide, responsive window.
    """

    class SlowToolGenerator(EmbeddedGenerator):
        def run_flow(self, flat, constraints, target, **kwargs):
            for index in range(slices):
                checkpoint("external_tool", 0.05 + 0.5 * index / slices)
                time.sleep(delay / slices)
            return super().run_flow(flat, constraints, target, **kwargs)

    return SlowToolGenerator(cell_library)


def make_slow_service(store_root, delay=0.3, slices=6, job_workers=None):
    """A fresh service whose generator sleeps like an external tool."""
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=store_root,
        job_workers=job_workers,
    )
    service.generator = make_slow_generator(
        service.cell_library, delay=delay, slices=slices
    )
    return service
