"""Tests for the ICDB server facade, generation manager and knowledge server."""

from __future__ import annotations

import pytest

from repro.components.counters import counter_parameters, UP_DOWN
from repro.constraints import Constraints
from repro.core import ICDB, IcdbError, TARGET_LAYOUT, TARGET_LOGIC, default_tool_manager
from repro.core.generation import EmbeddedGenerator, GenerationError
from repro.core.instances import InstanceError, InstanceManager
from repro.core.knowledge import KnowledgeError
from repro.db import IMPLEMENTATIONS, INSTANCES
from repro.netlist.structural import StructuralNetlist


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def test_function_query_implementations_and_components(icdb):
    implementations = icdb.function_query(["ADD", "SUB"])
    assert set(implementations) == {"adder_subtractor", "alu"}
    components = icdb.function_query(["ADD", "SUB"], want="component")
    assert set(components) == {"Adder_Subtractor", "ALU"}
    assert icdb.function_query(["STORAGE", "INC"]) == ["counter"]


def test_component_query_by_type_and_functions(icdb):
    result = icdb.component_query(component="Counter", functions=["INC"])
    assert "counter" in result["implementation"]
    assert result["component"] == ["Counter"]
    by_impl = icdb.component_query(implementation="alu")
    assert set(by_impl["function"]) == {"ADD", "SUB", "AND", "OR", "XOR", "NOT"}


def test_functions_of_instance_and_implementation(icdb):
    assert "STORAGE" in icdb.functions_of("register")
    instance = icdb.request_component(implementation="register", attributes={"size": 2})
    assert icdb.functions_of(instance.name) == list(instance.functions)


def test_implementations_of_type(icdb):
    assert "mux2" in icdb.implementations_of_type("Mux_scl")


# ---------------------------------------------------------------------------
# Component requests
# ---------------------------------------------------------------------------


def test_request_component_by_component_name_prefers_matching_name(icdb):
    instance = icdb.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 3}
    )
    assert instance.implementation == "counter"
    assert instance.parameters["size"] == 3
    assert instance.flat.outputs[:3] == ["Q[0]", "Q[1]", "Q[2]"]
    assert instance.netlist.cell_count() > 0
    assert instance.name in icdb.instances


def test_request_component_with_constraints_and_violations(icdb):
    ok = icdb.request_component(
        implementation="counter",
        parameters=counter_parameters(size=4, up_or_down=UP_DOWN),
        constraints=Constraints(clock_width=100.0),
    )
    assert ok.met_constraints()
    impossible = icdb.request_component(
        implementation="counter",
        parameters=counter_parameters(size=4, up_or_down=UP_DOWN),
        constraints=Constraints(clock_width=0.5),
    )
    assert not impossible.met_constraints()
    assert impossible.constraint_violations


def test_request_component_strategy_fastest(icdb):
    fast = icdb.request_component(
        implementation="ripple_carry_adder", attributes={"size": 4}, strategy="fastest"
    )
    slow = icdb.request_component(
        implementation="ripple_carry_adder", attributes={"size": 4}, strategy="cheapest"
    )
    assert fast.worst_delay() <= slow.worst_delay()
    assert fast.area >= slow.area


def test_request_component_from_iif(icdb):
    source = """
NAME: PARITY;
FUNCTIONS: XOR;
PARAMETER: size;
INORDER: I[size];
OUTORDER: P;
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        P (+)= I[i];
}
"""
    instance = icdb.request_component(iif=source, parameters={"size": 5}, instance_name="parity5")
    assert instance.name == "parity5"
    assert instance.component_type == "Custom"
    assert instance.netlist.cell_count() >= 4
    assert "flat_iif" in instance.files


def test_request_component_from_structure(icdb):
    adder = icdb.request_component(implementation="ripple_carry_adder", attributes={"size": 2})
    register = icdb.request_component(implementation="register", attributes={"size": 2})
    structure = StructuralNetlist("cluster1", inputs=["X[0]", "X[1]"], outputs=["Y[0]", "Y[1]"])
    structure.add("a1", adder.name, {"I0[0]": "X[0]", "I0[1]": "X[1]", "O[0]": "s0", "O[1]": "s1"})
    structure.add("r1", register.name, {"I[0]": "s0", "I[1]": "s1", "Q[0]": "Y[0]", "Q[1]": "Y[1]"})
    cluster = icdb.request_component(structure=structure, instance_name="cluster1_inst")
    assert cluster.component_type == "Cluster"
    assert cluster.netlist.cell_count() == adder.netlist.cell_count() + register.netlist.cell_count()
    assert cluster.area > 0


def test_request_component_unknown_target_rejected(icdb):
    with pytest.raises(IcdbError):
        icdb.request_component(implementation="register", target="weird")


def test_request_component_no_match_raises(icdb):
    with pytest.raises(IcdbError):
        icdb.request_component(functions=["MUL", "STORAGE"])


def test_request_layout_target_generates_cif(icdb):
    instance = icdb.request_component(
        implementation="register", attributes={"size": 2}, target=TARGET_LAYOUT
    )
    assert instance.layout is not None
    assert "cif" in instance.files


# ---------------------------------------------------------------------------
# Instance queries and layouts
# ---------------------------------------------------------------------------


def test_instance_query_contents(icdb):
    instance = icdb.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 4}
    )
    info = icdb.instance_query(instance.name)
    assert info["function"] == list(instance.functions)
    assert info["delay"].startswith("CW ")
    assert info["shape_function"].startswith("Alternative=1")
    assert "strip = 1" in info["area"]
    assert "entity" in info["VHDL_net_list"]
    assert "component" in info["VHDL_head"]
    assert "## function INC" in info["connect"]
    assert set(info["files"]) >= {"flat_iif", "vhdl", "delay", "shape"}
    assert icdb.connect_component(instance.name) == info["connect"]


def test_instance_query_unknown_instance(icdb):
    with pytest.raises(InstanceError):
        icdb.instance_query("nope")


def test_request_layout_by_alternative(icdb):
    instance = icdb.request_component(implementation="register", attributes={"size": 4})
    alternatives = len(instance.shape)
    layout = icdb.request_layout(instance.name, alternative=min(2, alternatives))
    assert instance.layout is layout
    assert layout.strips == instance.shape.alternative(min(2, alternatives)).strips
    row = icdb.database.table(INSTANCES).get(name=instance.name)
    assert row["target"] == TARGET_LAYOUT
    assert row["area"] == pytest.approx(layout.area)


# ---------------------------------------------------------------------------
# Designs and transactions
# ---------------------------------------------------------------------------


def test_design_transaction_lifecycle(icdb):
    icdb.start_a_design("demo")
    icdb.start_a_transaction()
    keep = icdb.request_component(implementation="register", attributes={"size": 2})
    drop = icdb.request_component(implementation="mux2", attributes={"size": 2})
    icdb.put_in_component_list(keep.name)
    removed = icdb.end_a_transaction()
    assert drop.name in removed
    assert keep.name not in removed
    assert icdb.component_list("demo") == [keep.name]
    assert drop.name not in icdb.instances
    removed_all = icdb.end_a_design("demo")
    assert keep.name in removed_all
    assert keep.name not in icdb.instances


def test_design_errors(icdb):
    with pytest.raises(IcdbError):
        icdb.start_a_transaction("never_started")
    icdb.start_a_design("dup")
    with pytest.raises(IcdbError):
        icdb.start_a_design("dup")
    with pytest.raises(IcdbError):
        icdb.end_a_transaction("never_started")
    icdb.current_design = ""
    with pytest.raises(IcdbError):
        icdb.put_in_component_list("whatever")


# ---------------------------------------------------------------------------
# Knowledge acquisition and tool management
# ---------------------------------------------------------------------------


def test_catalog_recorded_in_database(icdb):
    rows = icdb.database.table(IMPLEMENTATIONS).select()
    assert len(rows) == len(icdb.catalog)
    counter_row = icdb.database.table(IMPLEMENTATIONS).get(name="counter")
    assert counter_row["component_type"] == "Counter"


def test_insert_implementation_and_request_it(icdb):
    source = """
NAME: NAND_GATE;
FUNCTIONS: NAND;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = !(A[i] * B[i]);
}
"""
    implementation = icdb.knowledge.insert_implementation(
        source,
        component_type="Logic_unit",
        functions=["NAND"],
        default_parameters={"size": 4},
        description="bitwise NAND",
    )
    assert implementation.name == "nand_gate"
    assert "nand_gate" in icdb.catalog
    instance = icdb.request_component(implementation="nand_gate", attributes={"size": 2})
    assert instance.netlist.cell_count() == 2
    with pytest.raises(KnowledgeError):
        icdb.knowledge.insert_implementation(
            source, component_type="Logic_unit", functions=["NAND"],
            default_parameters={"size": 4},
        )


def test_insert_implementation_validation(icdb):
    source = "NAME: T;\nPARAMETER: n;\nINORDER: A;\nOUTORDER: O;\n{ O = A; }"
    with pytest.raises(KnowledgeError):
        icdb.knowledge.insert_implementation(
            source, component_type="Buffer", functions=["BUF"], default_parameters={}
        )
    with pytest.raises(KnowledgeError):
        icdb.knowledge.insert_implementation(
            source, component_type="NotAType", functions=["BUF"], default_parameters={"n": 1}
        )


def test_tool_manager_registration_rules():
    manager = default_tool_manager()
    assert manager.generator_for_format("iif") is not None
    assert manager.unused_tools() == []
    manager.register_tool("lint", "estimate", description="never used")
    assert "lint" in manager.unused_tools()
    with pytest.raises(GenerationError):
        manager.register_generator("bad", "iif", [(1, "missing_tool")])
    manager.register_generator("ok", "vhdl", [(1, "lint")])
    assert manager.unused_tools() == []


def test_knowledge_insert_tool_and_generator(icdb):
    icdb.knowledge.insert_tool("external_placer", "layout", description="external")
    generator = icdb.knowledge.insert_generator(
        "external_flow", "cif", [(2, "external_placer")], description="ext"
    )
    assert generator.steps == ((2, "external_placer"),)
    assert icdb.database.table("tools").get(name="external_placer") is not None
    assert icdb.database.table("generators").get(name="external_flow") is not None


def test_instance_manager_names_and_errors():
    manager = InstanceManager()
    name_a = manager.new_name("x")
    name_b = manager.new_name("x")
    assert name_a != name_b
    with pytest.raises(InstanceError):
        manager.get("missing")
    assert manager.remove("missing") is None


def test_icdb_summary_mentions_counts(icdb):
    summary = icdb.summary()
    assert "implementations" in summary
    assert str(len(icdb.catalog)) in summary
