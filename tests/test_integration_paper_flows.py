"""End-to-end integration tests mirroring the paper's usage scenarios.

These tie several subsystems together: CQL in, generated artifacts out, and
cross-checks between the estimators, the layout generator, the simulators
and the database records.
"""

from __future__ import annotations

import pytest

from repro.components.counters import FIGURE5_CONFIGURATIONS, counter_parameters, UP_DOWN
from repro.constraints import Constraints
from repro.cql import CqlExecutor
from repro.db import INSTANCES
from repro.sim import GateSimulator, bus_assignment, read_bus


def test_section3_running_example(shared_icdb):
    """The Section 3 scenario: query, request, instance query, layout."""
    executor = CqlExecutor(shared_icdb)
    names = executor.execute_text(
        "command: component_query; component: counter; function: (INC);"
        "attribute: (size:5); implementation: ?s[]"
    )["implementation"]
    assert "counter" in names

    created = executor.execute_text(
        "command: request_component; component_name: counter; attribute: (size:5);"
        "function: (INC); clock_width: 30; set_up_time: 30; generated_component: ?s"
    )
    instance_name = created["instance"]
    instance = shared_icdb.instance(instance_name)
    assert instance.parameters["size"] == 5

    info = shared_icdb.instance_query(instance_name)
    assert info["delay"].splitlines()[0].startswith("CW ")
    assert info["shape_function"].count("Alternative=") == len(instance.shape)

    layout = shared_icdb.request_layout(instance_name, alternative=1)
    assert layout.strips == instance.shape.alternative(1).strips
    # The database row reflects the layout.
    row = shared_icdb.database.table(INSTANCES).get(name=instance_name)
    assert row["strips"] == layout.strips


def test_generated_counter_instance_is_functionally_correct(shared_icdb):
    """The netlist ICDB returns actually counts (gate-level simulation)."""
    instance = shared_icdb.request_component(
        implementation="counter",
        parameters=counter_parameters(size=4, up_or_down=UP_DOWN, load=True, enable=True),
        instance_name=shared_icdb.instances.new_name("integ_counter"),
    )
    simulator = GateSimulator(instance.netlist)
    stimulus = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    values = []
    for _ in range(3):
        outputs = simulator.clock_cycle("CLK", stimulus)
        values.append(read_bus(outputs, "Q", 4))
    assert values == [1, 2, 3]
    stimulus["DWUP"] = 1
    outputs = simulator.clock_cycle("CLK", stimulus)
    assert read_bus(outputs, "Q", 4) == 2


def test_estimates_scale_with_component_size(shared_icdb):
    """Bigger attribute values give bigger, slower components."""
    small = shared_icdb.request_component(
        implementation="ripple_carry_adder", attributes={"size": 4},
        instance_name=shared_icdb.instances.new_name("adder4"),
    )
    large = shared_icdb.request_component(
        implementation="ripple_carry_adder", attributes={"size": 12},
        instance_name=shared_icdb.instances.new_name("adder12"),
    )
    assert large.area > small.area * 2
    assert large.delay_to("Cout") > small.delay_to("Cout")
    assert large.netlist.cell_count() > small.netlist.cell_count()


def test_figure5_instances_recorded_in_database(shared_icdb):
    rows = shared_icdb.area_time_tradeoff(
        "counter", FIGURE5_CONFIGURATIONS[:3], delay_output="Q[4]"
    )
    for row in rows:
        record = shared_icdb.database.table(INSTANCES).get(name=row["instance"])
        assert record is not None
        assert record["area"] == pytest.approx(row["area"])
        assert record["implementation"] == "counter"


def test_cluster_request_matches_sum_of_parts(shared_icdb):
    """A VHDL-netlist (cluster) request estimates the merged gate netlist."""
    from repro.netlist.structural import StructuralNetlist

    alu = shared_icdb.request_component(
        implementation="alu", attributes={"size": 4},
        instance_name=shared_icdb.instances.new_name("cluster_alu"),
    )
    register = shared_icdb.request_component(
        implementation="register", attributes={"size": 4},
        instance_name=shared_icdb.instances.new_name("cluster_reg"),
    )
    structure = StructuralNetlist("alu_reg_cluster", inputs=[], outputs=[])
    structure.add("u_alu", alu.name, {})
    structure.add("u_reg", register.name, {})
    cluster = shared_icdb.request_component(
        structure=structure,
        instance_name=shared_icdb.instances.new_name("alu_reg_cluster"),
    )
    total_cells = alu.netlist.cell_count() + register.netlist.cell_count()
    assert cluster.netlist.cell_count() == total_cells
    # A single merged layout is denser than two separate bounding boxes, but
    # the cluster can never be smaller than the bigger of its two parts.
    assert cluster.area > max(alu.area, register.area) * 0.8
    assert len(cluster.shape) >= 1
