"""The job-oriented async API: scheduler, streaming, sessions, resume.

Covers the v2 service surface end to end:

* local ``JobManager``: submit / status / wait / cancel semantics, FIFO
  dispatch order, bounded queue (``E_BUSY``), bounded retention, wait
  timeouts (``E_TIMEOUT``), byte-identical results between the job path
  and direct execution;
* progress streaming: monotonic event sequences server-side and pushed
  ``job_event`` frames client-side (loopback and TCP);
* session / connection decoupling: ``hello`` issues a resume token,
  ``attach`` rebinds a new connection (jobs and design context survive a
  killed connection), session limits answer ``E_BUSY`` with
  detached-session eviction;
* the server CLI's ``--workers`` / ``--max-sessions`` validation;
* the parallel synthesis-builder path producing identical results.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

import pytest

from jobs_testlib import make_slow_service

from repro.api import (
    CancelJob,
    ComponentRequest,
    ComponentService,
    FunctionQuery,
    JOB_TERMINAL_STATES,
    JobStatus,
    SubmitJob,
)
from repro.components import standard_catalog
from repro.core.icdb import IcdbError
from repro.net import RemoteClient, connect, serve
from repro.net.client import attach
from repro.synthesis import build_simple_computer


def _fresh_service(tmp_path, tag="svc", **kwargs):
    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag, **kwargs
    )


# ---------------------------------------------------------------------------
# Local scheduler semantics
# ---------------------------------------------------------------------------


def test_job_result_value_matches_direct_execution(tmp_path):
    service = _fresh_service(tmp_path)
    session = service.create_session()
    request = ComponentRequest(implementation="register", attributes={"size": 4})
    service.execute(request, session)  # warm the cache: both paths clone

    direct = service.execute(request, session)
    handle = session.submit(request)
    via_job = handle.result(timeout=60)

    def comparable(summary):
        return {k: v for k, v in summary.items() if k not in ("instance", "files")}

    assert json.dumps(comparable(direct.value), sort_keys=True) == json.dumps(
        comparable(via_job), sort_keys=True
    )
    assert handle.state == "done"
    assert handle.instance().name == via_job["instance"]


def test_jobs_dispatch_in_submit_order_per_session(tmp_path):
    service = _fresh_service(tmp_path, job_workers=1)
    session = service.create_session()
    handles = [
        session.submit(
            ComponentRequest(implementation="register", attributes={"size": 2})
        )
        for _ in range(4)
    ]
    for handle in handles:
        handle.wait(60)
    starts = [handle.status()["started_at"] for handle in handles]
    assert starts == sorted(starts), "single-worker jobs must start in FIFO order"


def test_event_history_is_monotonic_and_stateful(tmp_path):
    service = _fresh_service(tmp_path)
    session = service.create_session()
    handle = session.submit(
        ComponentRequest(
            implementation="counter", attributes={"size": 4}, use_cache=False
        )
    )
    handle.wait(60)
    events = handle.events()
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert events[0]["state"] == "queued"
    assert events[-1]["state"] == "done"
    stages = [event["stage"] for event in events]
    assert "synthesize" in stages and "size" in stages
    progresses = [event["progress"] for event in events]
    assert progresses == sorted(progresses), "progress must be monotonic"
    # events_since pagination
    tail = service.jobs.events(handle.job_id, since=seqs[2])
    assert [event["seq"] for event in tail] == seqs[3:]


def test_cancel_queued_job_and_terminal_cancel_is_noop(tmp_path):
    service = make_slow_service(tmp_path / "slow", delay=1.0, job_workers=1)
    session = service.create_session()
    blocker = session.submit(
        ComponentRequest(implementation="alu", attributes={"size": 4}, use_cache=False)
    )
    queued = session.submit(
        ComponentRequest(implementation="mux2", attributes={"size": 2})
    )
    cancelled = queued.cancel()
    assert cancelled["state"] == "cancelled"
    response = queued.response()
    assert not response.ok and response.error.code == "CANCELLED"
    # cancelling a terminal job leaves it untouched
    assert queued.cancel()["state"] == "cancelled"
    assert blocker.result(60)["instance"]  # the worker was never disturbed
    service.jobs.shutdown()


def test_full_queue_answers_busy(tmp_path):
    service = make_slow_service(
        tmp_path / "slow", delay=1.0, job_workers=1
    )
    service.jobs.max_queued = 2
    session = service.create_session()
    slow = ComponentRequest(
        implementation="alu", attributes={"size": 4}, use_cache=False
    )
    handles = [session.submit(slow)]
    while handles[0].status()["state"] == "queued":
        time.sleep(0.005)  # wait for the worker to take it off the queue
    handles.append(session.submit(slow))
    handles.append(session.submit(slow))
    response = session.execute(SubmitJob(request=slow))
    assert not response.ok and response.error.code == "BUSY"
    for handle in handles:
        handle.cancel()
    service.jobs.shutdown()


def test_run_many_overflow_runs_inline_and_is_counted(tmp_path):
    service = make_slow_service(tmp_path / "slow", delay=0.1, job_workers=1)
    service.jobs.max_queued = 1
    session = service.create_session()
    requests = [
        ComponentRequest(
            implementation="mux2",
            attributes={"size": 2},
            instance_name=f"inline_{index}",
            use_cache=False,
        )
        for index in range(4)
    ]
    responses = service.jobs.run_many(requests, session)
    assert all(response.ok for response in responses)
    # With one worker and one queue slot, at least one of the four had
    # to degrade to inline execution -- and the degradation is counted.
    assert service.jobs.stats()["inline_overflows"] >= 1
    service.jobs.shutdown()


def test_wait_timeout_answers_timeout_and_job_survives(tmp_path):
    service = make_slow_service(tmp_path / "slow", delay=0.8)
    session = service.create_session()
    handle = session.submit(
        ComponentRequest(implementation="alu", attributes={"size": 4}, use_cache=False)
    )
    response = session.execute(
        JobStatus(job_id=handle.job_id, wait=True, timeout_ms=30)
    )
    assert not response.ok and response.error.code == "TIMEOUT"
    assert handle.result(timeout=60)["instance"]  # unharmed by the timeout
    service.jobs.shutdown()


def test_unknown_job_is_not_found(tmp_path):
    service = _fresh_service(tmp_path)
    session = service.create_session()
    response = session.execute(JobStatus(job_id="job-999"))
    assert not response.ok and response.error.code == "NOT_FOUND"


def test_jobs_are_session_scoped(tmp_path):
    """Another session's job id answers NOT_FOUND -- never its descriptor,
    and never a cancellation of someone else's work."""
    service = make_slow_service(tmp_path / "slow", delay=0.8)
    owner = service.create_session()
    intruder = service.create_session()
    handle = owner.submit(
        ComponentRequest(implementation="alu", attributes={"size": 4}, use_cache=False)
    )
    for request in (
        JobStatus(job_id=handle.job_id),
        CancelJob(job_id=handle.job_id),
    ):
        response = intruder.execute(request)
        assert not response.ok and response.error.code == "NOT_FOUND"
    # the owner is untouched by the intrusion attempts
    assert handle.result(timeout=60)["instance"]
    service.jobs.shutdown()


def test_retention_is_bounded_but_keeps_recent_jobs(tmp_path):
    service = _fresh_service(tmp_path)
    service.jobs.max_retained = 5
    session = service.create_session()
    request = ComponentRequest(implementation="register", attributes={"size": 2})
    handles = [session.submit(request) for _ in range(12)]
    deadline = time.time() + 60
    while True:
        stats = service.jobs.stats()
        if stats["queued"] == 0 and stats["running"] == 0:
            break
        assert time.time() < deadline, f"jobs never drained: {stats}"
        time.sleep(0.01)
    assert service.jobs.stats()["retained"] <= 5
    # the newest job outlives the eviction of the older ones
    assert handles[-1].status()["state"] == "done"


# ---------------------------------------------------------------------------
# Remote jobs: push streaming, attach / resume, session limits
# ---------------------------------------------------------------------------


def test_loopback_jobs_push_events_and_match_blocking_path(tmp_path):
    client = RemoteClient.loopback(_fresh_service(tmp_path, "loop"))
    blocking = client.request_component(
        implementation="register", attributes={"size": 4}
    )
    handle = client.submit_component(
        implementation="register", attributes={"size": 4}
    )
    remote_instance = handle.instance(timeout=60)
    assert handle.done() and handle.state == "done"
    # pushed events arrived through the loopback codec
    pushed = handle.events()
    assert pushed and pushed[-1].state == "done"
    assert [e.seq for e in pushed] == sorted(e.seq for e in pushed)
    # authoritative server history agrees
    remote_events = handle.events(remote=True)
    assert [e.seq for e in remote_events][: len(pushed)] == [e.seq for e in pushed]
    # same renders as the blocking path
    assert remote_instance.render_delay() == blocking.render_delay()
    client.close()


def test_session_token_attach_resumes_jobs_over_tcp(tmp_path):
    service = make_slow_service(tmp_path / "slow", delay=0.6)
    server = serve(service=service, port=0)
    try:
        client = connect(server.host, server.port, client="doomed")
        assert client.session_token
        client.start_a_design("resilient")
        handle = client.submit_component(
            implementation="counter", attributes={"size": 5}, use_cache=False
        )
        token = client.session_token
        job_id = handle.job_id
        client.transport.close()  # killed mid-job: no bye frame

        resumed = attach(server.host, server.port, token, client="phoenix")
        assert resumed.session_id == client.session_id
        revived = resumed.job_handle(job_id)
        summary = revived.result(timeout=60)
        assert summary["instance"].startswith("counter_")
        # the session's design context survived with the jobs
        assert resumed.meta("session_token") == token
        resumed.put_in_component_list(summary["instance"], design="resilient")
        assert resumed.component_list("resilient") == [summary["instance"]]
        resumed.close()
    finally:
        server.stop()
        service.jobs.shutdown()


def test_attach_with_bad_token_is_not_found(tmp_path):
    server = serve(service=_fresh_service(tmp_path, "bad"), port=0)
    try:
        with pytest.raises(IcdbError) as excinfo:
            attach(server.host, server.port, "deadbeef")
        assert excinfo.value.code == "NOT_FOUND"
    finally:
        server.stop()


def test_session_limit_answers_busy_then_evicts_detached(tmp_path):
    server = serve(service=_fresh_service(tmp_path, "cap"), port=0, max_sessions=1)
    try:
        first = connect(server.host, server.port, client="one")
        with pytest.raises(IcdbError) as excinfo:
            connect(server.host, server.port, client="two")
        assert excinfo.value.code == "BUSY"
        first.close()
        deadline = time.time() + 5.0
        third = None
        while third is None:
            try:
                third = connect(server.host, server.port, client="three")
            except IcdbError:  # the detach races the close; retry briefly
                if time.time() > deadline:
                    raise
                time.sleep(0.02)
        assert third.execute(FunctionQuery(functions=("ADD",))).ok
        third.close()
    finally:
        server.stop()


def test_attached_connection_receives_pushed_events(tmp_path):
    service = make_slow_service(tmp_path / "slow", delay=0.5)
    server = serve(service=service, port=0)
    try:
        client = connect(server.host, server.port)
        token = client.session_token
        watcher = attach(server.host, server.port, token, client="watcher")
        handle = client.submit_component(
            implementation="mux2", attributes={"size": 3}, use_cache=False
        )
        # the watcher polls over its own connection; pushes ride along
        watcher_handle = watcher.job_handle(handle.job_id)
        watcher_handle.wait(60)
        assert watcher_handle.state == "done"
        assert watcher_handle.events(remote=True)
        watcher.close()
        client.close()
    finally:
        server.stop()
        service.jobs.shutdown()


# ---------------------------------------------------------------------------
# CLI validation and parallel builders
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "args",
    [
        ["--workers", "0"],
        ["--workers", "nope"],
        ["--max-sessions", "-1"],
        ["--max-sessions", "many"],
    ],
)
def test_cli_rejects_invalid_worker_and_session_flags(args):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.net.server", "--port", "0", *args],
        capture_output=True,
        text=True,
        timeout=60,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )
    assert proc.returncode == 2
    assert "expected" in proc.stderr


def test_parallel_simple_computer_matches_sequential(tmp_path):
    sequential = build_simple_computer(
        _fresh_service(tmp_path, "seq").create_session(), width=4
    )
    parallel = build_simple_computer(
        _fresh_service(tmp_path, "par").create_session(), width=4, parallel=True
    )
    assert set(sequential.datapath_parts) == set(parallel.datapath_parts)
    for label, part in sequential.datapath_parts.items():
        twin = parallel.datapath_parts[label]
        assert part.name == twin.name
        assert part.area == twin.area
        assert part.netlist.cell_count() == twin.netlist.cell_count()
    assert sequential.total_component_area() == parallel.total_component_area()
