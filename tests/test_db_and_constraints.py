"""Tests for the relational engine, the ICDB schema, the design-data store
and the constraint parsers."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.constraints import (
    ConstraintError,
    Constraints,
    PortPosition,
    parse_delay_constraints,
    parse_port_positions,
    render_port_positions,
    STRATEGY_CHEAPEST,
    STRATEGY_FASTEST,
)
from repro.db import (
    Column,
    Database,
    DatabaseError,
    DesignDataStore,
    IMPLEMENTATIONS,
    INSTANCES,
    StoreError,
    Table,
    new_database,
)


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


def _people_table():
    return Table(
        "people",
        [
            Column("name", "str", required=True),
            Column("age", "int", default=0),
            Column("tags", "json", default=[]),
        ],
        key="name",
    )


def test_table_insert_select_update_delete():
    table = _people_table()
    table.insert(name="ada", age=36)
    table.insert(name="grace", age=45, tags=["navy"])
    assert len(table) == 2
    assert table.get(name="ada")["age"] == 36
    assert table.count(lambda row: row["age"] > 40) == 1
    assert table.update({"name": "ada"}, age=37) == 1
    assert table.get(name="ada")["age"] == 37
    assert table.delete({"name": "grace"}) == 1
    assert table.get(name="grace") is None


def test_table_type_coercion_and_errors():
    table = _people_table()
    table.insert(name="t", age="12")
    assert table.get(name="t")["age"] == 12
    with pytest.raises(DatabaseError):
        table.insert(age=3)  # missing required key
    with pytest.raises(DatabaseError):
        table.insert(name="t")  # duplicate key
    with pytest.raises(DatabaseError):
        table.insert(name="x", bogus=1)
    with pytest.raises(DatabaseError):
        table.update(None, bogus=2)
    with pytest.raises(DatabaseError):
        Column("c", "weird")


def test_table_update_is_all_or_nothing():
    """A failed coercion mid-update must not leave earlier changes applied.

    Regression: update() used to coerce change-by-change while already
    mutating matched rows, so ``age=valid, tags=invalid`` could bump the
    age and then raise -- a partial write the journal could never replay
    consistently.  All changes are validated and coerced up front now.
    """
    table = _people_table()
    table.insert(name="ada", age=36)
    table.insert(name="grace", age=45)
    before = [dict(row) for row in table.rows]
    with pytest.raises(DatabaseError):
        table.update(None, age=50, bogus=1)  # second change names no column
    assert table.rows == before  # nothing changed, not even age
    with pytest.raises(DatabaseError):
        table.update({"name": "ada"}, age="not-an-int")
    assert table.rows == before


def test_table_select_ordering_and_callable_predicates():
    table = _people_table()
    for name, age in (("c", 3), ("a", 1), ("b", 2)):
        table.insert(name=name, age=age)
    ordered = table.select(order_by="age")
    assert [row["name"] for row in ordered] == ["a", "b", "c"]
    assert len(table.select(lambda row: row["age"] % 2 == 1)) == 2


def test_database_tables_and_persistence(tmp_path):
    database = Database("testdb")
    table = database.create_table("t", [Column("k", "str", required=True), Column("v", "int")], key="k")
    table.insert(k="a", v=1)
    with pytest.raises(DatabaseError):
        database.create_table("t", [Column("k")])
    with pytest.raises(DatabaseError):
        database.table("missing")
    path = database.save(tmp_path / "db.json")
    loaded = Database.load(path)
    assert loaded.table("t").get(k="a")["v"] == 1
    assert loaded.name == "testdb"


def test_icdb_schema_created():
    database = new_database()
    assert IMPLEMENTATIONS in database.table_names()
    assert INSTANCES in database.table_names()
    # Creating the schema twice must not fail (idempotent).
    from repro.db import create_schema

    create_schema(database)


# ---------------------------------------------------------------------------
# Design-data store
# ---------------------------------------------------------------------------


def test_store_write_read_and_listing(tmp_path):
    store = DesignDataStore(tmp_path / "root")
    path = store.write("counter_1", "iif", "NAME: X;\n")
    assert path.exists()
    assert store.read("counter_1", "iif") == "NAME: X;\n"
    store.write("counter_1", "delay", "CW 10.0\n")
    artifacts = store.artifacts_of("counter_1")
    assert set(artifacts) == {"iif", "delay"}
    assert store.instances() == ["counter_1"]
    assert store.path_of("counter_1", "cif") is None
    removed = store.remove_instance("counter_1")
    assert removed == 2
    assert store.instances() == []


def test_store_rejects_unknown_kind(tmp_path):
    store = DesignDataStore(tmp_path)
    with pytest.raises(StoreError):
        store.write("x", "unknown_kind", "text")
    with pytest.raises(StoreError):
        store.read("x", "iif")


def test_store_sanitizes_instance_names(tmp_path):
    store = DesignDataStore(tmp_path)
    path = store.write("weird/name with spaces", "iif", "x")
    assert path.exists()
    assert "/" not in path.parent.name


def test_store_never_escapes_its_root(tmp_path):
    """Instance names arrive from remote clients; dot-only names must not
    resolve to parent directories."""
    root = tmp_path / "store_root"
    store = DesignDataStore(root)
    for hostile in ("..", ".", "...", "../..", "a/../.."):
        written = store.write(hostile, "iif", "x")
        assert root.resolve() in written.resolve().parents, hostile
        assert str(store.path_for(hostile, "vhdl").resolve()).startswith(
            str(root.resolve())
        )
        for path in store.paths_for(hostile, ("vhdl", "delay")).values():
            assert str(Path(path).resolve()).startswith(str(root.resolve()))


def test_store_uses_temporary_directory_by_default():
    store = DesignDataStore()
    path = store.write("a", "iif", "x")
    assert path.exists()


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


def test_parse_delay_constraints_rdelay_oload():
    text = "rdelay Q[4] 10\nrdelay Q[3] 10\noload Q[4] 10\n\noload Q[3] 12"
    constraints = parse_delay_constraints(text)
    assert constraints.comb_delay == {"Q[4]": 10.0, "Q[3]": 10.0}
    assert constraints.output_loads == {"Q[4]": 10.0, "Q[3]": 12.0}
    with pytest.raises(ConstraintError):
        parse_delay_constraints("rdelay Q[0]")
    with pytest.raises(ConstraintError):
        parse_delay_constraints("bogus Q[0] 10")


def test_parse_port_positions_paper_example():
    positions = parse_port_positions("CLK left s1.0\nD[0] top 10\nQ[0] bottom 10")
    assert positions[0] == PortPosition("CLK", "left", 1.0)
    assert positions[1].side == "top" and positions[1].order == 10.0
    rendered = render_port_positions(positions)
    assert "CLK left 1" in rendered
    with pytest.raises(ConstraintError):
        parse_port_positions("CLK somewhere 1")
    with pytest.raises(ConstraintError):
        parse_port_positions("CLK left abc")


def test_constraints_strategy_resolution():
    fastest = Constraints(strategy=STRATEGY_FASTEST)
    cheapest = Constraints(strategy=STRATEGY_CHEAPEST)
    assert fastest.effective_clock_width() == 0.0
    assert cheapest.effective_clock_width() == 1000.0
    assert fastest.comb_delay_for("O") == 0.0
    explicit = Constraints(clock_width=25.0, strategy=STRATEGY_CHEAPEST)
    assert explicit.effective_clock_width() == 25.0
    with pytest.raises(ConstraintError):
        Constraints(strategy="weird")


def test_constraints_lookup_and_updates():
    constraints = Constraints(
        comb_delay={"O[1]": 12.0},
        default_comb_delay=20.0,
        output_loads={"O[1]": 5.0},
        default_output_load=2.0,
    )
    assert constraints.comb_delay_for("O[1]") == 12.0
    assert constraints.comb_delay_for("O[0]") == 20.0
    assert constraints.load_for("O[1]") == 5.0
    assert constraints.load_for("O[9]") == 2.0
    assert constraints.all_output_loads(["O[1]", "O[9]"]) == {"O[1]": 5.0, "O[9]": 2.0}
    assert constraints.has_delay_constraints()
    updated = constraints.with_updates(clock_width=30.0)
    assert updated.clock_width == 30.0
    assert constraints.clock_width is None
    assert not Constraints().has_delay_constraints()
