"""Property / fuzz tests for the wire contract.

Randomized (seeded, dependency-free) round trips for every request and
response type: ``to_dict() -> JSON -> from_dict()`` must be a true
inverse, ``request_from_dict`` must dispatch every kind, and unknown /
malformed payloads must surface as structured
:class:`~repro.core.icdb.IcdbError` codes -- never as raw tracebacks
escaping the service or the wire dispatcher.
"""

from __future__ import annotations

import json
import random
import string

import pytest

from repro.api import (
    AttributePredicate,
    BatchRequest,
    Bound,
    CancelJob,
    CheckEquivalence,
    ComponentQuery,
    FleetGenerate,
    WarmCache,
    ComponentRequest,
    ComponentService,
    DESIGN_OPS,
    DesignOp,
    ERROR_CODES,
    FunctionPredicate,
    FunctionQuery,
    GetMetrics,
    IcdbErrorInfo,
    InstanceQuery,
    JOB_CONTROL_KINDS,
    JOB_STATES,
    JobEvent,
    JobStatus,
    LayoutRequest,
    METRICS,
    NamePredicate,
    Objective,
    Ping,
    PlanPoint,
    PlanQuery,
    QuerySpec,
    REQUEST_TYPES,
    Response,
    Simulate,
    SubmitJob,
    TypePredicate,
    minimize,
    pareto,
    request_from_dict,
)
from repro.components import standard_catalog
from repro.constraints import Constraints, PortPosition
from repro.core.icdb import IcdbError
from repro.net.server import FrameDispatcher
from repro.netlist.structural import StructuralNetlist

SEED = 0xD_AC_19_90
ROUNDS = 60


def _name(rng: random.Random, prefix: str = "") -> str:
    return prefix + "".join(rng.choices(string.ascii_lowercase + "_", k=rng.randint(1, 10)))


def _names(rng: random.Random, upper: int = 4):
    return tuple(_name(rng) for _ in range(rng.randint(0, upper)))


def _maybe(rng: random.Random, producer, p: float = 0.5):
    return producer() if rng.random() < p else None


def _constraints(rng: random.Random) -> Constraints:
    return Constraints(
        clock_width=_maybe(rng, lambda: round(rng.uniform(1, 200), 3)),
        comb_delay={_name(rng): round(rng.uniform(0, 50), 3)
                    for _ in range(rng.randint(0, 3))},
        default_comb_delay=_maybe(rng, lambda: round(rng.uniform(0, 50), 3)),
        setup_time=_maybe(rng, lambda: round(rng.uniform(0, 50), 3)),
        output_loads={_name(rng): round(rng.uniform(0, 20), 3)
                      for _ in range(rng.randint(0, 3))},
        default_output_load=round(rng.uniform(0, 5), 3),
        strategy=rng.choice([None, "fastest", "cheapest"]),
        strips=_maybe(rng, lambda: rng.randint(1, 12)),
        aspect_ratio=_maybe(rng, lambda: round(rng.uniform(0.2, 5.0), 3)),
        port_positions=tuple(
            PortPosition(
                port=_name(rng).upper(),
                side=rng.choice(["left", "right", "top", "bottom"]),
                order=round(rng.uniform(0, 10), 2),
            )
            for _ in range(rng.randint(0, 3))
        ),
    )


def _structure(rng: random.Random) -> StructuralNetlist:
    netlist = StructuralNetlist(
        name=_name(rng, "net_"),
        inputs=list(dict.fromkeys(_names(rng))),
        outputs=list(dict.fromkeys(_names(rng))),
    )
    for index in range(rng.randint(0, 3)):
        netlist.add(
            f"u{index}",
            _name(rng, "comp_"),
            {_name(rng).upper(): _name(rng) for _ in range(rng.randint(0, 3))},
        )
    return netlist


def _component_query(rng: random.Random) -> ComponentQuery:
    return ComponentQuery(
        component=_maybe(rng, lambda: _name(rng)),
        implementation=_maybe(rng, lambda: _name(rng)),
        functions=_names(rng),
        attributes=_maybe(
            rng, lambda: {_name(rng): rng.randint(0, 64) for _ in range(rng.randint(1, 3))}
        ),
    )


def _function_query(rng: random.Random) -> FunctionQuery:
    return FunctionQuery(
        functions=_names(rng), want=rng.choice(["implementation", "component"])
    )


def _instance_query(rng: random.Random) -> InstanceQuery:
    return InstanceQuery(name=_name(rng), fields=_names(rng))


def _component_request(rng: random.Random) -> ComponentRequest:
    return ComponentRequest(
        component_name=_maybe(rng, lambda: _name(rng)),
        implementation=_maybe(rng, lambda: _name(rng)),
        iif=_maybe(rng, lambda: f"NAME: {_name(rng).upper()};", 0.3),
        structure=_maybe(rng, lambda: _structure(rng), 0.3),
        functions=_names(rng),
        attributes=_maybe(
            rng, lambda: {_name(rng): rng.randint(0, 32) for _ in range(rng.randint(1, 3))}
        ),
        constraints=_maybe(rng, lambda: _constraints(rng)),
        strategy=rng.choice([None, "fastest", "cheapest"]),
        target=rng.choice(["logic", "layout"]),
        instance_name=_maybe(rng, lambda: _name(rng)),
        parameters=_maybe(
            rng, lambda: {_name(rng): rng.randint(0, 16) for _ in range(rng.randint(1, 4))}
        ),
        use_cache=rng.random() < 0.5,
        detail=rng.choice(["full", "summary"]),
    )


def _layout_request(rng: random.Random) -> LayoutRequest:
    return LayoutRequest(
        name=_name(rng),
        alternative=_maybe(rng, lambda: rng.randint(1, 8)),
        strips=_maybe(rng, lambda: rng.randint(1, 8)),
        port_positions=tuple(
            PortPosition(
                port=_name(rng).upper(),
                side=rng.choice(["left", "right", "top", "bottom"]),
                order=float(rng.randint(0, 9)),
            )
            for _ in range(rng.randint(0, 2))
        ),
    )


def _design_op(rng: random.Random) -> DesignOp:
    return DesignOp(
        op=rng.choice(DESIGN_OPS), design=_name(rng), instance=_name(rng)
    )


def _simulate(rng: random.Random) -> Simulate:
    names = tuple(dict.fromkeys(_names(rng, 4))) or ("A",)
    return Simulate(
        name=_name(rng),
        vectors=tuple(
            {name: rng.randint(0, 1) for name in names}
            for _ in range(rng.randint(0, 4))
        ),
        engine=rng.choice(["gates", "flat"]),
        clock=_maybe(rng, lambda: _name(rng).upper(), 0.3),
    )


def _get_metrics(rng: random.Random) -> GetMetrics:
    prefixes = tuple(
        rng.choice(["cache.", "gencache.", "jobs", "requests.", "net.", _name(rng)])
        for _ in range(rng.randint(0, 3))
    )
    return GetMetrics(
        prefixes=prefixes,
        include_histograms=rng.random() < 0.5,
    )


def _check_equivalence(rng: random.Random) -> CheckEquivalence:
    return CheckEquivalence(
        name=_name(rng),
        reference=_maybe(rng, lambda: _name(rng)),
        mode=rng.choice(["auto", "combinational", "sequential"]),
        clock=_maybe(rng, lambda: _name(rng).upper(), 0.3),
        max_exhaustive=rng.randint(0, 12),
        samples=rng.randint(1, 64),
        cycles=rng.randint(1, 16),
        lanes=rng.randint(1, 32),
        seed=rng.randint(0, 2**31),
    )


def _ping(rng: random.Random) -> Ping:
    return Ping(echo=_maybe(rng, lambda: _name(rng)) or "")


GENERATORS = {
    "component_query": _component_query,
    "function_query": _function_query,
    "instance_query": _instance_query,
    "request_component": _component_request,
    "request_layout": _layout_request,
    "simulate": _simulate,
    "check_equivalence": _check_equivalence,
    "design_op": _design_op,
    "get_metrics": _get_metrics,
    "ping": _ping,
}

#: Kinds a batch (and a submitted job) may wrap: everything but batches
#: themselves and the job-control requests.
_WRAPPABLE_KINDS = tuple(GENERATORS)


def _batch(rng: random.Random) -> BatchRequest:
    members = tuple(
        GENERATORS[rng.choice(_WRAPPABLE_KINDS)](rng)
        for _ in range(rng.randint(0, 4))
    )
    return BatchRequest(requests=members, repeat=rng.randint(1, 4))


GENERATORS["batch"] = _batch


def _submit_job(rng: random.Random) -> SubmitJob:
    inner_kind = rng.choice(_WRAPPABLE_KINDS + ("batch",))
    return SubmitJob(
        request=GENERATORS[inner_kind](rng),
        label=_maybe(rng, lambda: _name(rng, "job_")) or "",
    )


def _job_status(rng: random.Random) -> JobStatus:
    # wait=True only ever pairs with a short timeout so the live-service
    # fuzz below can execute any generated request without hanging.
    wait = rng.random() < 0.3
    return JobStatus(
        job_id=_name(rng, "job-"),
        wait=wait,
        timeout_ms=round(rng.uniform(1, 50), 2) if wait else _maybe(
            rng, lambda: round(rng.uniform(1, 1000), 2)
        ),
        include_events=rng.random() < 0.5,
        events_since=rng.randint(0, 20),
    )


def _cancel_job(rng: random.Random) -> CancelJob:
    return CancelJob(job_id=_name(rng, "job-"))


def _objective(rng: random.Random) -> Objective:
    kind = rng.choice(["minimize", "weighted", "pareto"])
    if kind == "minimize":
        return minimize(rng.choice(METRICS))
    metrics = rng.sample(METRICS, rng.randint(2, len(METRICS)))
    if kind == "pareto":
        return pareto(*metrics)
    return Objective(
        kind="weighted",
        metrics=tuple(metrics),
        weights=tuple(round(rng.uniform(0.1, 3.0), 3) for _ in metrics),
    )


def _predicates(rng: random.Random):
    makers = [
        lambda: FunctionPredicate(functions=_names(rng)),
        lambda: TypePredicate(component=_name(rng)),
        lambda: NamePredicate(implementations=_names(rng)),
        lambda: AttributePredicate(
            attributes={_name(rng): rng.randint(0, 16) for _ in range(rng.randint(1, 3))}
        ),
    ]
    return tuple(rng.choice(makers)() for _ in range(rng.randint(0, 3)))


def _plan_point(rng: random.Random) -> PlanPoint:
    return PlanPoint(
        label=_name(rng, "pt_"),
        implementation=_maybe(rng, lambda: _name(rng)),
        parameters={_name(rng): rng.randint(0, 16) for _ in range(rng.randint(0, 3))},
        attributes={_name(rng): rng.randint(0, 16) for _ in range(rng.randint(0, 2))},
    )


def _plan_query(rng: random.Random) -> PlanQuery:
    # Points and sweep axes are mutually exclusive by construction.
    if rng.random() < 0.5:
        sweep = tuple(
            (_name(rng), tuple(rng.randint(1, 16) for _ in range(rng.randint(1, 4))))
            for _ in range(rng.randint(0, 2))
        )
        points = ()
    else:
        sweep = ()
        points = tuple(_plan_point(rng) for _ in range(rng.randint(0, 3)))
    spec = QuerySpec(
        select=_predicates(rng),
        where=tuple(
            Bound(metric=rng.choice(METRICS), limit=round(rng.uniform(1, 1e6), 3))
            for _ in range(rng.randint(0, 2))
        ),
        objective=_objective(rng),
        sweep=sweep,
        points=points,
        attributes=_maybe(
            rng, lambda: {_name(rng): rng.randint(0, 16) for _ in range(rng.randint(1, 2))}
        ),
        parameters=_maybe(
            rng, lambda: {_name(rng): rng.randint(0, 16) for _ in range(rng.randint(1, 2))}
        ),
        constraints=_maybe(rng, lambda: _constraints(rng), 0.4),
        target=rng.choice(["logic", "layout"]),
        delay_output=_maybe(rng, lambda: _name(rng).upper(), 0.3),
        limit=rng.randint(0, 8),
        use_cache=rng.random() < 0.5,
        require_equivalent_to=_maybe(rng, lambda: _name(rng), 0.3),
    )
    return PlanQuery(query=spec)


def _warm_entry(rng: random.Random) -> dict:
    entry: dict = {}
    if rng.random() < 0.6:
        entry["implementation"] = _name(rng)
    else:
        entry["component"] = _name(rng)
        if rng.random() < 0.5:
            entry["functions"] = list(_names(rng, 2))
    if rng.random() < 0.5:
        entry["parameters"] = {_name(rng): rng.randint(1, 16)}
    if rng.random() < 0.3:
        entry["attributes"] = {_name(rng): rng.randint(1, 16)}
    if rng.random() < 0.4:
        entry["constraints"] = json.loads(json.dumps(_constraints(rng).to_dict()))
    if rng.random() < 0.3:
        entry["name"] = _name(rng)
    return entry


def _warm_cache(rng: random.Random) -> WarmCache:
    return WarmCache(
        entries=tuple(_warm_entry(rng) for _ in range(rng.randint(0, 3))),
        fanout=rng.random() < 0.5,
    )


def _fleet_generate(rng: random.Random) -> FleetGenerate:
    return FleetGenerate(
        implementation=_name(rng),
        parameters=_maybe(rng, lambda: {_name(rng): rng.randint(1, 16)}),
        constraints=_maybe(rng, lambda: _constraints(rng), 0.4),
        name=_maybe(rng, lambda: _name(rng), 0.4),
    )


GENERATORS["submit_job"] = _submit_job
GENERATORS["job_status"] = _job_status
GENERATORS["cancel_job"] = _cancel_job
GENERATORS["warm_cache"] = _warm_cache
GENERATORS["fleet_generate"] = _fleet_generate
# Registered after _WRAPPABLE_KINDS is frozen: plans cannot ride in
# batches (they fan out over the job workers a batch would starve).
GENERATORS["plan_query"] = _plan_query


def test_generators_cover_every_registered_kind():
    assert set(GENERATORS) == set(REQUEST_TYPES)


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_randomized_requests_survive_json_round_trip(kind):
    rng = random.Random(SEED ^ hash(kind))
    for _ in range(ROUNDS):
        request = GENERATORS[kind](rng)
        wire = json.loads(json.dumps(request.to_dict()))
        rebuilt = request_from_dict(wire)
        assert type(rebuilt) is type(request)
        assert rebuilt == request
        # from_dict is a true inverse: re-serialization is stable too.
        assert rebuilt.to_dict() == request.to_dict()


def test_randomized_responses_survive_json_round_trip():
    rng = random.Random(SEED)
    for _ in range(ROUNDS):
        response = Response(
            ok=rng.random() < 0.7,
            value=rng.choice(
                [None, rng.randint(0, 99), _name(rng), [1, 2, 3], {"a": 1}]
            ),
            error=_maybe(
                rng,
                # Every structured code -- including the job-era CANCELLED,
                # TIMEOUT and BUSY -- must survive the wire round trip.
                lambda: IcdbErrorInfo(
                    code=rng.choice(ERROR_CODES),
                    message=_name(rng),
                    exception_type=_name(rng),
                ),
            ),
            elapsed_ms=round(rng.uniform(0, 500), 4),
            cached=rng.random() < 0.5,
            session_id=_name(rng, "session-"),
            request_kind=rng.choice(list(REQUEST_TYPES)),
        )
        rebuilt = Response.from_dict(json.loads(json.dumps(response.to_dict())))
        assert rebuilt == response


def test_randomized_job_events_survive_json_round_trip():
    rng = random.Random(SEED ^ 0xE7E)
    for _ in range(ROUNDS):
        event = JobEvent(
            job_id=_name(rng, "job-"),
            seq=rng.randint(1, 500),
            state=rng.choice(JOB_STATES),
            stage=rng.choice(["", "synthesize", "size", "estimate", "layout"]),
            progress=round(rng.uniform(0.0, 1.0), 4),
            message=_name(rng),
            timestamp=round(rng.uniform(1e9, 2e9), 3),
        )
        rebuilt = JobEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event


def test_new_error_codes_round_trip_and_are_registered():
    for code in ("CANCELLED", "TIMEOUT", "BUSY"):
        assert code in ERROR_CODES
        info = IcdbErrorInfo(code=code, message="m", exception_type="IcdbError")
        assert IcdbErrorInfo.from_dict(json.loads(json.dumps(info.to_dict()))) == info


def test_job_control_is_rejected_inside_batches_and_jobs():
    with pytest.raises(IcdbError) as excinfo:
        BatchRequest(requests=(JobStatus(job_id="job-1"),))
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(IcdbError):
        SubmitJob(request=CancelJob(job_id="job-1"))
    with pytest.raises(IcdbError):
        SubmitJob(request=None)
    with pytest.raises(IcdbError):
        request_from_dict({"kind": "submit_job", "label": "no inner request"})


def test_unknown_fields_are_ignored_not_fatal():
    rng = random.Random(SEED)
    for kind, generator in GENERATORS.items():
        request = generator(rng)
        wire = request.to_dict()
        wire["flux_capacitor"] = {"charge": 88}
        assert request_from_dict(wire) == request


@pytest.fixture(scope="module")
def fuzz_service(tmp_path_factory):
    return ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path_factory.mktemp("fuzz_store"),
    )


def test_unknown_kind_and_op_produce_structured_errors(fuzz_service):
    with pytest.raises(IcdbError) as excinfo:
        request_from_dict({"kind": "teleport"})
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(IcdbError):
        request_from_dict([1, 2, 3])
    with pytest.raises(IcdbError):
        DesignOp(op="explode_design")
    with pytest.raises(IcdbError):
        FunctionQuery(functions=("ADD",), want="sandwich").functions and \
            fuzz_service.execute(
                FunctionQuery(functions=("ADD",), want="sandwich")
            ).unwrap()
    response = fuzz_service.execute(
        ComponentRequest(implementation="alu", attributes={"size": 2}, detail="everything")
    )
    assert not response.ok
    assert response.error.code == "BAD_REQUEST"
    assert "detail" in response.error.message


def test_simulation_requests_produce_structured_errors(fuzz_service):
    # Bad engine / mode values are rejected at construction (and hence at
    # wire-parse) time, before any service work happens.
    with pytest.raises(IcdbError) as excinfo:
        Simulate(name="x", engine="spice")
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(IcdbError) as excinfo:
        CheckEquivalence(name="x", mode="formal")
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(IcdbError):
        request_from_dict({"kind": "simulate", "name": "x", "vectors": "zap"})
    with pytest.raises(IcdbError):
        request_from_dict(
            {"kind": "check_equivalence", "name": "x", "samples": "many"}
        )
    # Unknown instances answer NOT_FOUND envelopes.
    response = fuzz_service.execute(Simulate(name="ghost"))
    assert not response.ok and response.error.code == "NOT_FOUND"
    response = fuzz_service.execute(CheckEquivalence(name="ghost"))
    assert not response.ok and response.error.code == "NOT_FOUND"
    # Simulator failures on a real instance answer INVALID; impossible
    # verification setups (a non-input clock) answer BAD_REQUEST.
    generated = fuzz_service.execute(
        ComponentRequest(
            implementation="mux2", attributes={"size": 2}, detail="summary"
        )
    ).unwrap()
    name = generated["instance"]
    response = fuzz_service.execute(
        Simulate(name=name, vectors=({"NO_SUCH_PIN": 1},))
    )
    assert not response.ok and response.error.code == "INVALID"
    response = fuzz_service.execute(
        CheckEquivalence(name=name, mode="sequential", clock="NO_SUCH_PIN")
    )
    assert not response.ok and response.error.code == "BAD_REQUEST"


def test_random_request_dicts_never_crash_the_dispatcher(fuzz_service):
    """Feed the wire dispatcher random request payloads: every answer must
    be a response or error frame, never an exception."""
    rng = random.Random(SEED + 1)
    dispatcher = FrameDispatcher(fuzz_service, client_label="fuzz")
    from repro.api import PROTOCOL_VERSION

    hello = dispatcher.dispatch({"type": "hello", "protocol": PROTOCOL_VERSION})
    assert hello["type"] == "welcome" and hello["session_token"]

    def random_value(depth=0):
        choices = [
            lambda: None,
            lambda: rng.randint(-5, 99),
            lambda: _name(rng),
            lambda: rng.random() < 0.5,
        ]
        if depth < 2:
            choices.extend(
                [
                    lambda: [random_value(depth + 1) for _ in range(rng.randint(0, 3))],
                    lambda: {
                        _name(rng): random_value(depth + 1)
                        for _ in range(rng.randint(0, 3))
                    },
                ]
            )
        return rng.choice(choices)()

    for _ in range(150):
        kind = rng.choice(list(REQUEST_TYPES) + ["bogus", None, 42])
        payload = {
            "kind": kind,
            **{_name(rng): random_value() for _ in range(rng.randint(0, 4))},
        }
        reply = dispatcher.dispatch({"type": "request", "request": payload})
        assert reply["type"] in ("response", "error")
        if reply["type"] == "response" and not reply["response"]["ok"]:
            assert reply["response"]["error"]["code"]


def test_executing_random_valid_requests_never_raises(fuzz_service):
    """Randomized *well-formed* requests against a live service: every
    outcome is an envelope, and failures carry structured codes."""
    rng = random.Random(SEED + 2)
    session = fuzz_service.create_session()
    for _ in range(80):
        kind = rng.choice(["component_query", "function_query", "instance_query",
                           "request_layout", "design_op",
                           "job_status", "cancel_job"])
        request = GENERATORS[kind](rng)
        response = fuzz_service.execute(request, session)
        assert response.ok or response.error is not None
        if not response.ok:
            assert response.error.code
            assert response.error.message
