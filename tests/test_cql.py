"""Tests for the CQL parser, executor, ICDB() call interface and interactive
session."""

from __future__ import annotations

import io

import pytest

from repro.cql import (
    CqlExecutionError,
    CqlExecutor,
    CqlSyntaxError,
    InteractiveSession,
    OutParam,
    VariableSlot,
    format_result,
    make_icdb_call,
    parse_command,
    split_terms,
)
from repro.cql.interactive import main as interactive_main


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def test_split_terms_and_parse_basic_command():
    pairs = split_terms("command: component_query; component: counter; function: (INC)")
    assert pairs[0] == ("command", "component_query")
    command = parse_command(
        "command: component_query; component: counter; function: (INC); implementation: ?s[]"
    )
    assert command.command == "component_query"
    assert command.get("component") == "counter"
    assert command.get("function") == ["INC"]
    slot = command.get("implementation")
    assert isinstance(slot, VariableSlot)
    assert slot.direction == "out" and slot.is_array


def test_parse_attribute_lists_and_aliases():
    command = parse_command(
        "command: request_component; component_name: counter;"
        "attribute: (size:5, input_type:high); ICDB components: ?s[];"
        "set_up_time: 30; generated_component: ?s"
    )
    assert command.get("attribute") == {"size": "5", "input_type": "high"}
    assert command.get("seq_delay") == "30"
    # keyword aliases map onto canonical names
    assert command.has("implementation")
    assert command.has("instance")


def test_parse_input_and_output_slots_order():
    command = parse_command(
        "command: instance_query; instance: %s; delay: ?s; shape_function: ?s"
    )
    slots = command.slots()
    assert [term.keyword for term in slots] == ["instance", "delay", "shape_function"]
    assert slots[0].is_input_slot and slots[1].is_output_slot
    assert command.input_slots()[0].keyword == "instance"
    assert len(command.output_slots()) == 2


def test_parse_errors():
    with pytest.raises(CqlSyntaxError):
        parse_command("component: counter")  # no command term
    with pytest.raises(CqlSyntaxError):
        parse_command("")
    with pytest.raises(CqlSyntaxError):
        parse_command("command request_component")


def test_variable_slot_render_and_types():
    slot = VariableSlot("out", "d", True)
    assert slot.render() == "?d[]"
    assert slot.python_type is int
    assert VariableSlot("in", "r").render() == "%r"


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def test_executor_component_and_function_queries(icdb):
    executor = CqlExecutor(icdb)
    result = executor.execute_text(
        "command: component_query; component: counter; function: (INC); implementation: ?s[]"
    )
    assert "counter" in result["implementation"]
    result = executor.execute_text(
        "command: function_query; function: (ADD,SUB); implementation: ?s[]; component: ?s[]"
    )
    assert set(result["implementation"]) == {"adder_subtractor", "alu"}
    assert "Adder_Subtractor" in result["component"]
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: function_query; implementation: ?s[]")


def test_executor_request_and_instance_query(icdb):
    executor = CqlExecutor(icdb)
    result = executor.execute_text(
        "command: request_component; component_name: counter; function: (INC);"
        "attribute: (size:4); clock_width: 40; set_up_time: 40; instance: ?s"
    )
    name = result["instance"]
    assert name in icdb.instances
    info = executor.execute_text(
        "command: instance_query; instance: %s; delay: ?s; area: ?s; function: ?s[]",
        [name],
    )
    assert info["delay"].startswith("CW")
    assert "strip = 1" in info["area"]
    assert "INC" in info["function"]
    connect = executor.execute_text(
        "command: connect_component; instance: %s; connect: ?s", [name]
    )
    assert "## function" in connect["connect"]


def test_executor_request_with_delay_constraint_text(icdb):
    executor = CqlExecutor(icdb)
    constraint_text = "rdelay O[3] 40\noload O[3] 10"
    result = executor.execute_text(
        "command: request_component; implementation: ripple_carry_adder;"
        "attribute: (size:4); comb_delay: %s; instance: ?s",
        [constraint_text],
    )
    instance = icdb.instance(result["instance"])
    assert instance.constraints.comb_delay == {"O[3]": 40.0}
    assert instance.constraints.output_loads == {"O[3]": 10.0}


def test_executor_layout_request_on_existing_instance(icdb):
    executor = CqlExecutor(icdb)
    created = executor.execute_text(
        "command: request_component; implementation: register; size: 2; instance: ?s"
    )
    result = executor.execute_text(
        "command: request_component; instance: %s; alternative: 1;"
        "port_position: %s; CIF_layout: ?s",
        [created["instance"], "CLK left s1.0"],
    )
    assert result["cif_layout"].startswith("(CIF file for")
    assert icdb.instance(created["instance"]).layout is not None


def test_executor_list_management_commands(icdb):
    executor = CqlExecutor(icdb)
    executor.execute_text("command: start_a_design; design: proj")
    executor.execute_text("command: start_a_transaction; design: proj")
    created = executor.execute_text(
        "command: request_component; implementation: mux2; size: 2; instance: ?s"
    )
    executor.execute_text(
        "command: put_in_component_list; design: proj; instance: %s", [created["instance"]]
    )
    removed = executor.execute_text("command: end_a_transaction; design: proj")
    assert created["instance"] not in removed["removed"]
    removed = executor.execute_text("command: end_a_design; design: proj")
    assert created["instance"] in removed["removed"]


def test_executor_errors(icdb):
    executor = CqlExecutor(icdb)
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: bogus_command; x: 1")
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: instance_query; delay: ?s")
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: instance_query; instance: %s; delay: ?s")  # missing input


# ---------------------------------------------------------------------------
# ICDB() call convention
# ---------------------------------------------------------------------------


def test_icdb_call_with_outparams_and_return_values(icdb):
    call = make_icdb_call(icdb)
    names = call(
        "command: component_query; component: counter; function: (INC);"
        "ICDB components: ?s[]"
    )
    assert "counter" in names
    holder = OutParam()
    returned = call(
        "command: request_component; component_name: counter; attribute: (size:3);"
        "function: (INC); generated_component: ?s",
        holder,
    )
    assert holder.value == returned
    delay, shape = call(
        "command: instance_query; generated_component: %s; delay: ?s; shape_function: ?s",
        returned,
    )
    assert delay.startswith("CW")
    assert shape.startswith("Alternative=1")


def test_icdb_call_input_binding_in_paper_style(icdb):
    call = make_icdb_call(icdb)
    instance = call(
        "command: request_component; component_name: %s; size: %d;"
        "strategy: fastest; component_instance: ?s",
        "Adder_Subtractor",
        4,
    )
    assert instance in icdb.instances
    assert icdb.instance(instance).implementation == "adder_subtractor"


def test_icdb_call_missing_input_raises(icdb):
    call = make_icdb_call(icdb)
    with pytest.raises(CqlExecutionError):
        call("command: instance_query; instance: %s; delay: ?s")


def test_icdb_call_default_server_constructs():
    call = make_icdb_call()
    result = call("command: function_query; function: (MUL); implementation: ?s[]")
    assert "array_multiplier" in result


# ---------------------------------------------------------------------------
# Interactive session
# ---------------------------------------------------------------------------


def test_interactive_session_runs_commands(icdb):
    session = InteractiveSession(icdb)
    text = session.run_command(
        "command: function_query; function: (ADD,SUB); implementation: ?s[]"
    )
    assert "adder_subtractor" in text
    error_text = session.run_command("command: nonsense")
    assert error_text.startswith("error:")
    outputs = session.run_script([
        "command: component_query; component: Register; implementation: ?s[]",
    ])
    assert len(outputs) == 1 and "register" in outputs[0]
    assert len(session.history) == 3


def test_format_result_handles_multiline_and_lists():
    text = format_result({"delay": "CW 1\nWD X 2", "names": ["a", "b"], "n": 3})
    assert "delay:" in text and "  CW 1" in text
    assert "names: a, b" in text
    assert "n: 3" in text


def test_interactive_main_reads_blank_line_separated_commands():
    stdin = io.StringIO(
        "command: function_query; function: (MUL);\nimplementation: ?s[]\n\n"
    )
    stdout = io.StringIO()
    assert interactive_main([], stdin=stdin, stdout=stdout) == 0
    assert "array_multiplier" in stdout.getvalue()


# ---------------------------------------------------------------------------
# Simulation / verification commands
# ---------------------------------------------------------------------------


def test_executor_simulate_command(icdb):
    executor = CqlExecutor(icdb)
    generated = executor.execute_text(
        "command: request_component; implementation: ripple_carry_adder;"
        "attribute: (size:2); instance: ?s"
    )
    name = generated["instance"]
    # 1+2 and 3+3+1: one lane per vector, outputs in vector order.
    vectors = [
        {"I0[0]": 1, "I0[1]": 0, "I1[0]": 0, "I1[1]": 1, "Cin": 0},
        {"I0[0]": 1, "I0[1]": 1, "I1[0]": 1, "I1[1]": 1, "Cin": 1},
    ]
    result = executor.execute_text(
        "command: simulate; instance: %s; vectors: %s; vectors: ?s[]",
        [name, vectors],
    )
    assert result["vectors"] == [
        {"O[0]": 1, "O[1]": 1, "Cout": 0},
        {"O[0]": 1, "O[1]": 1, "Cout": 1},
    ]
    # A single vector dict is accepted without list wrapping.
    single = executor.execute_text(
        "command: simulate; instance: %s; vectors: %s; engine: flat; vectors: ?s[]",
        [name, vectors[0]],
    )
    assert single["vectors"] == [{"O[0]": 1, "O[1]": 1, "Cout": 0}]
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: simulate; vectors: %s", [vectors])
    with pytest.raises(CqlExecutionError):
        executor.execute_text(
            "command: simulate; instance: %s; vectors: %s", [name, "not-vectors"]
        )


def test_executor_verify_command_and_alias(icdb):
    executor = CqlExecutor(icdb)
    adder = executor.execute_text(
        "command: request_component; implementation: ripple_carry_adder;"
        "attribute: (size:2); instance: ?s"
    )["instance"]
    counter = executor.execute_text(
        "command: request_component; component_name: counter; function: (INC);"
        "attribute: (size:2); instance: ?s"
    )["instance"]
    result = executor.execute_text(
        "command: verify; instance: %s; equivalent: ?s; vectors_checked: ?s; mode: ?s",
        [adder],
    )
    assert result["equivalent"] is True
    assert result["mode"] == "combinational"
    assert result["vectors_checked"] == 32  # exhaustive over 5 inputs
    # The clocked instance auto-dispatches to the sequential lock-step check,
    # and 'check_equivalence' is the same command under its wire name.
    sequential = executor.execute_text(
        "command: check_equivalence; instance: %s; equivalent: ?s; mode: ?s",
        [counter],
    )
    assert sequential["equivalent"] is True
    assert sequential["mode"] == "sequential"
    # Default outputs when no slots are given.
    defaults = executor.execute_text("command: verify; instance: %s", [adder])
    assert defaults == {"equivalent": True, "vectors_checked": 32}
    with pytest.raises(CqlExecutionError):
        executor.execute_text("command: verify; mode: auto")


# ---------------------------------------------------------------------------
# Metrics command
# ---------------------------------------------------------------------------


def test_executor_metrics_command(icdb):
    executor = CqlExecutor(icdb)
    executor.execute_text(
        "command: request_component; implementation: ripple_carry_adder;"
        "attribute: (size:2); instance: ?s"
    )
    result = executor.execute_text("command: metrics; metrics: ?s")
    snapshot = result["metrics"]
    assert snapshot["version"] == 1
    assert snapshot["counters"]["cache.result.lookups"] >= 1
    # Named counter slots pull individual values out of the snapshot.
    picked = executor.execute_text(
        "command: metrics; requests.total: ?d; cache.result.lookups: ?d"
    )
    assert picked["requests.total"] == snapshot["counters"]["requests.total"] + 1
    assert picked["cache.result.lookups"] >= 1
    # A prefix term filters the snapshot down to matching names.
    filtered = executor.execute_text("command: metrics; prefix: cache.; metrics: ?s")
    assert filtered["metrics"]["counters"]
    assert all(
        name.startswith("cache.") for name in filtered["metrics"]["counters"]
    )
