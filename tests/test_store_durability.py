"""Durable store unit tests: journal, snapshots, recovery, CLI.

The crash-injection theme: a write-ahead journal must recover to a
byte-identical database from *any* prefix of itself.  The parametrized
torn-tail tests cut the journal at every record boundary (and one byte
to either side) and assert recovery lands exactly on the longest whole
prefix -- twice, because recovery must be idempotent.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.db.engine import Column, Database
from repro.store import (
    DurableStore,
    JournalCorruptError,
    JournalError,
    JournalWriter,
    SnapshotError,
    decode_record,
    encode_record,
    journal_dir,
    latest_snapshot,
    list_segments,
    list_snapshots,
    load_snapshot,
    recover_database,
    scan_segment,
    snapshot_dir,
    write_snapshot,
)
from repro.store.__main__ import main as store_main
from repro.store.snapshot import snapshot_path


def payload_of(database: Database) -> str:
    """Canonical byte-comparable form of a database."""
    return json.dumps(database.to_payload(), sort_keys=True)


def make_store(tmp_path, **kwargs) -> DurableStore:
    kwargs.setdefault("snapshot_interval", None)
    kwargs.setdefault("fsync", "never")
    return DurableStore(tmp_path / "data", **kwargs)


def seed_rows(database: Database, count: int = 5) -> None:
    if not database.has_table("things"):
        database.create_table(
            "things",
            [Column("id", "int"), Column("label", "str"), Column("n", "int")],
            key="id",
        )
    table = database.table("things")
    start = len(table.rows)
    for i in range(start, start + count):
        table.insert(id=i, label=f"thing-{i}", n=i * 10)


# --------------------------------------------------------------------- records


def test_record_roundtrip():
    event = {"op": "insert", "table": "t", "row": {"id": 1}, "seq": 7}
    line = encode_record(event)
    assert line.endswith(b"\n")
    assert decode_record(line[:-1]) == event


def test_record_rejects_bit_flip():
    line = encode_record({"op": "insert", "table": "t", "row": {}, "seq": 1})[:-1]
    flipped = bytearray(line)
    flipped[-3] ^= 0x01
    with pytest.raises(JournalError, match="CRC mismatch"):
        decode_record(bytes(flipped))


def test_record_requires_seq():
    payload = json.dumps({"op": "insert"}, separators=(",", ":")).encode()
    import zlib

    line = b"%08x %s" % (zlib.crc32(payload), payload)
    with pytest.raises(JournalError, match="seq"):
        decode_record(line)


# --------------------------------------------------------------------- journal


def test_journal_writer_appends_and_scans(tmp_path):
    writer = JournalWriter(tmp_path, fsync="never")
    for i in range(4):
        seq = writer.append({"op": "insert", "table": "t", "row": {"id": i}})
        assert seq == i + 1
    writer.close()
    (segment,) = list_segments(tmp_path)
    scan = scan_segment(segment)
    assert not scan.torn
    assert [r["seq"] for r in scan.records] == [1, 2, 3, 4]
    assert scan.valid_bytes == scan.total_bytes


def test_journal_rotation_across_segments(tmp_path):
    writer = JournalWriter(tmp_path, fsync="never", segment_max_bytes=120)
    for i in range(10):
        writer.append({"op": "insert", "table": "t", "row": {"id": i}})
    writer.close()
    segments = list_segments(tmp_path)
    assert len(segments) > 1
    assert writer.rotations == len(segments) - 1
    seqs = [r["seq"] for s in segments for r in scan_segment(s).records]
    assert seqs == list(range(1, 11))


def test_journal_writer_resumes_tail_segment(tmp_path):
    writer = JournalWriter(tmp_path, fsync="never")
    writer.append({"op": "a"})
    writer.close()
    resumed = JournalWriter(tmp_path, next_seq=2, fsync="never")
    resumed.append({"op": "b"})
    resumed.close()
    (segment,) = list_segments(tmp_path)
    assert [r["seq"] for r in scan_segment(segment).records] == [1, 2]


def test_journal_writer_rejects_bad_config(tmp_path):
    with pytest.raises(JournalError):
        JournalWriter(tmp_path, fsync="sometimes")
    with pytest.raises(JournalError):
        JournalWriter(tmp_path, next_seq=0)


# ------------------------------------------------------------------- snapshots


def test_snapshot_roundtrip_and_corruption(tmp_path):
    database = Database("icdb")
    seed_rows(database)
    path = write_snapshot(tmp_path, database.to_payload(), 5)
    seq, payload = load_snapshot(path)
    assert seq == 5
    assert json.dumps(payload, sort_keys=True) == payload_of(database)

    # Flip a byte: the checksum must catch it.
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x01
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError):
        load_snapshot(path)
    # latest_snapshot() skips it rather than failing recovery outright.
    latest = latest_snapshot(tmp_path)
    assert latest.payload is None
    assert len(latest.skipped) == 1


def test_latest_snapshot_falls_back_to_older_valid(tmp_path):
    database = Database("icdb")
    seed_rows(database, 2)
    write_snapshot(tmp_path, database.to_payload(), 3)
    seed_rows(database, 2)
    newer = write_snapshot(tmp_path, database.to_payload(), 6)
    newer.write_text("{ not json")
    latest = latest_snapshot(tmp_path)
    assert latest.seq == 3
    assert latest.skipped == [newer]


# ---------------------------------------------------------- durable store core


def test_store_recovers_byte_identical(tmp_path):
    store = make_store(tmp_path)
    database = store.open()
    seed_rows(database, 8)
    database.table("things").update({"id": 3}, label="renamed")
    database.table("things").delete({"id": 5})
    golden = payload_of(database)
    store.close(snapshot=False)

    recovered, report = recover_database(tmp_path / "data")
    assert payload_of(recovered) == golden
    assert report.events_replayed > 0
    assert report.last_seq == report.events_replayed  # no snapshot taken


def test_store_snapshot_then_tail_replay(tmp_path):
    store = make_store(tmp_path)
    database = store.open()
    seed_rows(database, 4)
    store.snapshot()
    seed_rows(database, 3)  # journal tail past the snapshot
    golden = payload_of(database)
    snap_seq = store.stats()["snapshot"]["seq"]
    store.close(snapshot=False)

    recovered, report = recover_database(tmp_path / "data")
    assert payload_of(recovered) == golden
    assert report.snapshot_seq == snap_seq
    assert report.events_replayed == 3  # only the tail, not the whole history


def test_store_compaction_drops_covered_segments(tmp_path):
    store = make_store(tmp_path, segment_max_bytes=150)
    database = store.open()
    seed_rows(database, 12)
    assert len(list_segments(journal_dir(tmp_path / "data"))) > 2
    golden = payload_of(database)
    store.snapshot()  # compacts by default
    segments = list_segments(journal_dir(tmp_path / "data"))
    assert len(segments) == 1  # only the open tail survives
    assert len(list_snapshots(snapshot_dir(tmp_path / "data"))) == 1
    store.close(snapshot=False)

    recovered, _ = recover_database(tmp_path / "data")
    assert payload_of(recovered) == golden


def test_store_open_is_idempotent_and_reopenable(tmp_path):
    store = make_store(tmp_path)
    database = store.open()
    assert store.open() is database
    seed_rows(database, 2)
    golden = payload_of(database)
    store.close()

    again = make_store(tmp_path)
    assert payload_of(again.open()) == golden
    again.close()


def test_store_metrics_stats_shape(tmp_path):
    store = make_store(tmp_path)
    database = store.open()
    seed_rows(database, 3)
    stats = store.stats()
    assert stats["journal"]["appends"] > 0
    assert stats["last_seq"] == stats["journal"]["appends"]
    assert stats["recovery"]["count"] == 1
    store.close(snapshot=False)


def test_store_bind_metrics_flattens_counters(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    store = make_store(tmp_path)
    database = store.open()
    store.bind_metrics(registry)
    seed_rows(database, 3)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["store.journal.appends"] > 0
    assert "store.last_seq" in snapshot["counters"]
    assert snapshot["histograms"]["store.journal.append_ms"]["count"] > 0
    store.close(snapshot=False)


# ------------------------------------------------------------- crash injection


def _journal_with_history(tmp_path):
    """A closed single-segment store with a mixed mutation history.

    Returns ``(data_dir, records, goldens)`` where ``goldens[k]`` is the
    canonical payload after replaying the first ``k`` records.
    """
    data_dir = tmp_path / "data"
    store = DurableStore(data_dir, snapshot_interval=None, fsync="never")
    database = store.open()
    seed_rows(database, 4)
    database.table("things").update({"id": 1}, n=999)
    database.table("things").delete({"id": 2})
    store.close(snapshot=False)

    (segment,) = list_segments(journal_dir(data_dir))
    records = scan_segment(segment).records
    goldens = []
    replay = Database("icdb")
    from repro.store.events import apply_event

    goldens.append(payload_of(replay))
    for event in records:
        apply_event(replay, event)
        goldens.append(payload_of(replay))
    return data_dir, records, goldens


def _record_offsets(segment) -> list:
    """Byte offset of the end of each record in the segment."""
    data = segment.read_bytes()
    offsets, pos = [], 0
    while True:
        newline = data.find(b"\n", pos)
        if newline == -1:
            break
        pos = newline + 1
        offsets.append(pos)
    return offsets


# Every record boundary, one byte short (torn mid-record) and one byte
# past (newline of a half-framed next record is impossible, but a single
# stray byte is) -- all must recover to the longest whole prefix.
@pytest.mark.parametrize("delta", [-1, 0, 1])
@pytest.mark.parametrize("boundary", range(1, 7))
def test_torn_tail_truncates_to_whole_prefix(tmp_path, boundary, delta):
    data_dir, records, goldens = _journal_with_history(tmp_path)
    (segment,) = list_segments(journal_dir(data_dir))
    offsets = _record_offsets(segment)
    assert len(offsets) >= 7  # schema DDL + 4 inserts + update + delete
    cut = offsets[boundary - 1] + delta
    if delta == 1:
        # A stray byte *past* a boundary is the start of a torn record.
        original = segment.read_bytes()
        segment.write_bytes(original[:cut])
        expect_records = boundary
    else:
        segment.write_bytes(segment.read_bytes()[:cut])
        expect_records = boundary if delta == 0 else boundary - 1

    recovered, report = recover_database(data_dir)
    assert payload_of(recovered) == goldens[expect_records]
    assert report.last_seq == expect_records
    if delta != 0:
        assert report.truncation_reason is not None

    # Recovery is pure: run it again, same answer (idempotent).
    recovered2, report2 = recover_database(data_dir)
    assert payload_of(recovered2) == payload_of(recovered)
    assert report2.last_seq == report.last_seq

    # open() truncates the torn bytes on disk, re-creates any schema
    # tables the truncation cut off (journaling the DDL again), then
    # appends cleanly.
    store = DurableStore(data_dir, snapshot_interval=None, fsync="never")
    database = store.open()
    from repro.db.schema import create_schema
    from repro.store.events import apply_event

    expected = Database("icdb")
    for event in records[:expect_records]:
        apply_event(expected, event)
    create_schema(expected)
    assert payload_of(database) == payload_of(expected)
    scan = scan_segment(list_segments(journal_dir(data_dir))[0])
    assert not scan.torn
    store.close(snapshot=False)


def test_corruption_before_tail_refuses_to_guess(tmp_path):
    """A bad record in a non-final segment is damage, not a torn tail."""
    data_dir = tmp_path / "data"
    store = DurableStore(
        data_dir, snapshot_interval=None, fsync="never", segment_max_bytes=150
    )
    seed_rows(store.open(), 12)
    store.close(snapshot=False)
    segments = list_segments(journal_dir(data_dir))
    assert len(segments) >= 3
    first = bytearray(segments[0].read_bytes())
    first[len(first) // 2] ^= 0x01
    segments[0].write_bytes(bytes(first))
    with pytest.raises(JournalCorruptError, match="before the journal tail"):
        recover_database(data_dir)


def test_missing_middle_segment_refuses_to_guess(tmp_path):
    data_dir = tmp_path / "data"
    store = DurableStore(
        data_dir, snapshot_interval=None, fsync="never", segment_max_bytes=150
    )
    seed_rows(store.open(), 12)
    store.close(snapshot=False)
    segments = list_segments(journal_dir(data_dir))
    assert len(segments) >= 3
    segments[1].unlink()
    with pytest.raises(JournalCorruptError, match="seq"):
        recover_database(data_dir)


def test_mid_snapshot_crash_falls_back(tmp_path):
    """A torn snapshot (crash during write) must not poison recovery."""
    data_dir = tmp_path / "data"
    store = DurableStore(data_dir, snapshot_interval=None, fsync="never")
    database = store.open()
    seed_rows(database, 6)
    golden = payload_of(database)
    store.snapshot()
    store.close(snapshot=False)

    # Simulate a crash mid-snapshot-write *after* more events: a partial
    # newer snapshot file appears alongside the journal tail.
    store2 = DurableStore(data_dir, snapshot_interval=None, fsync="never")
    database2 = store2.open()
    seed_rows(database2, 2)
    golden2 = payload_of(database2)
    last_seq = store2.last_seq
    store2.close(snapshot=False)
    torn = snapshot_path(snapshot_dir(data_dir), last_seq)
    torn.write_text('{"version": 1, "seq": %d, "crc"' % last_seq)  # cut off

    recovered, report = recover_database(data_dir)
    assert payload_of(recovered) == golden2
    assert report.snapshots_skipped == 1
    assert report.snapshot_seq < last_seq  # fell back to the older snapshot

    # And golden from the first boot is a strict prefix: sanity.
    assert golden != golden2


def test_concurrent_writers_keep_journal_equal_state(tmp_path):
    """16 threads hammer one table; journal replay equals final state."""
    store = make_store(tmp_path)
    database = store.open()
    database.create_table(
        "hits", [Column("id", "int"), Column("who", "str")], key="id"
    )
    table = database.table("hits")
    barrier = threading.Barrier(16)

    def worker(worker_id: int) -> None:
        barrier.wait()
        for i in range(25):
            table.insert(id=worker_id * 1000 + i, who=f"w{worker_id}")

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(table.rows) == 16 * 25
    golden = payload_of(database)
    store.close(snapshot=False)

    recovered, report = recover_database(tmp_path / "data")
    assert payload_of(recovered) == golden
    assert report.events_replayed == report.last_seq


# ------------------------------------------------------- engine regressions


def test_database_save_is_atomic(tmp_path, monkeypatch):
    """Interrupted save must leave the previous file intact (satellite 1)."""
    database = Database("icdb")
    seed_rows(database, 3)
    target = tmp_path / "db.json"
    database.save(target)
    before = target.read_text()

    seed_rows(database, 3)
    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash between write and rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        database.save(target)
    monkeypatch.setattr(os, "replace", real_replace)
    assert target.read_text() == before  # old contents untouched

    database.save(target)
    assert Database.load(target).table("things").rows == database.table(
        "things"
    ).rows


# ------------------------------------------------------------------------ CLI


def _cli(capsys, *argv) -> tuple:
    code = store_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_inspect_verify_clean(tmp_path, capsys):
    data_dir, _, _ = _journal_with_history(tmp_path)
    code, out = _cli(capsys, "inspect", "--data-dir", str(data_dir))
    assert code == 0
    assert "segments: 1" in out
    assert "table things" in out
    code, out = _cli(capsys, "verify", "--data-dir", str(data_dir))
    assert code == 0
    assert "clean" in out


def test_cli_verify_flags_torn_tail(tmp_path, capsys):
    data_dir, _, _ = _journal_with_history(tmp_path)
    (segment,) = list_segments(journal_dir(data_dir))
    segment.write_bytes(segment.read_bytes()[:-3])
    code, out = _cli(capsys, "verify", "--data-dir", str(data_dir))
    assert code == 1
    assert "PROBLEM" in out and "tail" in out


def test_cli_compact_and_restore(tmp_path, capsys):
    data_dir, _, goldens = _journal_with_history(tmp_path)
    code, out = _cli(capsys, "compact", "--data-dir", str(data_dir))
    assert code == 0
    assert "snapshot written" in out
    # The compacted store still recovers to the same state.
    recovered, report = recover_database(data_dir)
    assert payload_of(recovered) == goldens[-1]
    assert report.events_replayed == 0  # everything is in the snapshot now

    output = tmp_path / "restored.json"
    code, _ = _cli(capsys, "restore", "--data-dir", str(data_dir),
                   "--output", str(output))
    assert code == 0
    assert payload_of(Database.load(output)) == goldens[-1]


def test_cli_restore_stdout(tmp_path, capsys):
    data_dir, _, goldens = _journal_with_history(tmp_path)
    code = store_main(["restore", "--data-dir", str(data_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert json.dumps(json.loads(out), sort_keys=True) == goldens[-1]
