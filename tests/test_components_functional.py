"""Functional correctness of the component library (flat-level simulation).

Every component family is checked against its arithmetic / logical
specification, either exhaustively over small widths or with
hypothesis-generated operands.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.components import standard_catalog
from repro.components.counters import counter_parameters, TYPE_RIPPLE, UP_DOWN, UP_ONLY, DOWN_ONLY
from repro.sim import FlatSimulator, bus_assignment, read_bus


@pytest.fixture(scope="module")
def cat():
    return standard_catalog()


def collapsed(impl, **params):
    flat = impl.expand(params or None)
    return flat, flat.collapsed_output_expressions()


# ---------------------------------------------------------------------------
# Arithmetic components
# ---------------------------------------------------------------------------


@given(a=st.integers(0, 15), b=st.integers(0, 15), cin=st.integers(0, 1))
@settings(max_examples=60, deadline=None)
def test_ripple_carry_adder_adds(a, b, cin):
    impl = standard_catalog().get("ripple_carry_adder")
    flat, outputs = collapsed(impl, size=4)
    env = {"Cin": cin, **bus_assignment("I0", 4, a), **bus_assignment("I1", 4, b)}
    value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
    carry = outputs["Cout"].evaluate(env)
    assert value == (a + b + cin) % 16
    assert carry == (a + b + cin) // 16


@given(a=st.integers(0, 15), b=st.integers(0, 15), mode=st.integers(0, 1))
@settings(max_examples=60, deadline=None)
def test_adder_subtractor(a, b, mode):
    impl = standard_catalog().get("adder_subtractor")
    flat, outputs = collapsed(impl, size=4)
    env = {"ADDSUB": mode, **bus_assignment("A", 4, a), **bus_assignment("B", 4, b)}
    value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
    expected = (a - b) % 16 if mode else (a + b) % 16
    assert value == expected


@pytest.mark.parametrize(
    "select,expected",
    [
        ((0, 0, 0), lambda a, b: (a + b) % 16),
        ((1, 0, 0), lambda a, b: (a - b) % 16),
        ((0, 0, 1), lambda a, b: a & b),
        ((1, 0, 1), lambda a, b: a | b),
        ((0, 1, 1), lambda a, b: a ^ b),
        ((1, 1, 1), lambda a, b: (~a) & 0xF),
    ],
)
def test_alu_operations(cat, select, expected):
    impl = cat.get("alu")
    flat, outputs = collapsed(impl, size=4)
    s0, s1, s2 = select
    for a, b in [(3, 5), (12, 7), (15, 15), (0, 9)]:
        env = {"S0": s0, "S1": s1, "S2": s2,
               **bus_assignment("A", 4, a), **bus_assignment("B", 4, b)}
        value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
        assert value == expected(a, b)


def test_incrementer(cat):
    impl = cat.get("incrementer")
    flat, outputs = collapsed(impl, size=4)
    for a in range(16):
        env = bus_assignment("I0", 4, a)
        value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
        assert value == (a + 1) % 16
        assert outputs["Cout"].evaluate(env) == (1 if a == 15 else 0)


def test_comparator_all_relations(cat):
    impl = cat.get("comparator")
    flat, outputs = collapsed(impl, size=3)
    for a, b in itertools.product(range(8), range(8)):
        env = {**bus_assignment("A", 3, a), **bus_assignment("B", 3, b)}
        assert outputs["OEQ"].evaluate(env) == int(a == b)
        assert outputs["ONEQ"].evaluate(env) == int(a != b)
        assert outputs["OGT"].evaluate(env) == int(a > b)
        assert outputs["OLT"].evaluate(env) == int(a < b)
        assert outputs["OGEQ"].evaluate(env) == int(a >= b)
        assert outputs["OLEQ"].evaluate(env) == int(a <= b)


@given(a=st.integers(0, 15), b=st.integers(0, 15))
@settings(max_examples=40, deadline=None)
def test_array_multiplier(a, b):
    impl = standard_catalog().get("array_multiplier")
    flat, outputs = collapsed(impl, size=4)
    env = {**bus_assignment("A", 4, a), **bus_assignment("B", 4, b)}
    value = sum(outputs[f"P[{i}]"].evaluate(env) << i for i in range(8))
    assert value == a * b


# ---------------------------------------------------------------------------
# Selection / routing components
# ---------------------------------------------------------------------------


def test_mux2_and_mux4(cat):
    flat, outputs = collapsed(cat.get("mux2"), size=4)
    env = {"SEL": 0, **bus_assignment("I0", 4, 5), **bus_assignment("I1", 4, 9)}
    assert sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4)) == 5
    env["SEL"] = 1
    assert sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4)) == 9

    flat4, outputs4 = collapsed(cat.get("mux4"), size=2)
    inputs = {**bus_assignment("I0", 2, 0), **bus_assignment("I1", 2, 1),
              **bus_assignment("I2", 2, 2), **bus_assignment("I3", 2, 3)}
    for select in range(4):
        env = {**inputs, "S0": select & 1, "S1": (select >> 1) & 1}
        assert sum(outputs4[f"O[{i}]"].evaluate(env) << i for i in range(2)) == select


def test_guard_select_mux(cat):
    flat, outputs = collapsed(cat.get("mux_scg2"), size=2)
    env = {"G0": 1, "G1": 0, **bus_assignment("I0", 2, 2), **bus_assignment("I1", 2, 1)}
    assert sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(2)) == 2
    env = {"G0": 0, "G1": 1, **bus_assignment("I0", 2, 2), **bus_assignment("I1", 2, 1)}
    assert sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(2)) == 1


def test_decoder_one_hot(cat):
    flat, outputs = collapsed(cat.get("decoder"), size=2)
    for code in range(4):
        env = {"EN": 1, **bus_assignment("I", 2, code)}
        onehot = [outputs[f"O[{w}]"].evaluate(env) for w in range(4)]
        assert onehot == [1 if w == code else 0 for w in range(4)]
    env = {"EN": 0, **bus_assignment("I", 2, 2)}
    assert all(outputs[f"O[{w}]"].evaluate(env) == 0 for w in range(4))


def test_priority_encoder(cat):
    flat, outputs = collapsed(cat.get("encoder"), size=2)
    for pattern in range(1, 16):
        env = bus_assignment("I", 4, pattern)
        expected = max(i for i in range(4) if (pattern >> i) & 1)
        code = sum(outputs[f"O[{k}]"].evaluate(env) << k for k in range(2))
        assert code == expected
        assert outputs["V"].evaluate(env) == 1
    assert outputs["V"].evaluate(bus_assignment("I", 4, 0)) == 0


def test_constant_shifter(cat):
    flat, outputs = collapsed(cat.get("shifter"), size=4, shift_distance=2)
    for a in range(16):
        env = bus_assignment("I", 4, a)
        value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
        assert value == (a << 2) & 0xF


def test_barrel_shifter_left_and_right(cat):
    flat, outputs = collapsed(cat.get("barrel_shifter"), size=4, awidth=2)
    for a, amount, direction in itertools.product(range(16), range(4), (0, 1)):
        env = {"DIR": direction, **bus_assignment("I", 4, a), **bus_assignment("SH", 2, amount)}
        value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
        expected = ((a >> amount) if direction else (a << amount)) & 0xF
        assert value == expected


def test_logic_unit_operations(cat):
    flat, outputs = collapsed(cat.get("logic_unit"), size=4)
    cases = {(0, 0): lambda a, b: a & b, (0, 1): lambda a, b: a | b,
             (1, 0): lambda a, b: a ^ b, (1, 1): lambda a, b: (~a) & 0xF}
    for (s1, s0), func in cases.items():
        for a, b in [(5, 3), (12, 10), (15, 0)]:
            env = {"S0": s0, "S1": s1, **bus_assignment("A", 4, a), **bus_assignment("B", 4, b)}
            value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
            assert value == func(a, b)


def test_concat_and_extract(cat):
    flat, outputs = collapsed(cat.get("concat"), high_size=2, low_size=2)
    env = {**bus_assignment("H", 2, 3), **bus_assignment("L", 2, 1)}
    value = sum(outputs[f"O[{i}]"].evaluate(env) << i for i in range(4))
    assert value == (3 << 2) | 1

    flat2, outputs2 = collapsed(cat.get("extract"), size=8, offset=3, width=3)
    env = bus_assignment("I", 8, 0b10110100)
    value = sum(outputs2[f"O[{i}]"].evaluate(env) << i for i in range(3))
    assert value == (0b10110100 >> 3) & 0b111


# ---------------------------------------------------------------------------
# Sequential components
# ---------------------------------------------------------------------------


def test_register_loads_and_holds(cat):
    flat = cat.get("register").expand({"size": 4})
    sim = FlatSimulator(flat)
    sim.clock_cycle("CLK", {"LOAD": 1, **bus_assignment("I", 4, 11)})
    assert sim.bus_value("Q", 4) == 11
    sim.clock_cycle("CLK", {"LOAD": 0, **bus_assignment("I", 4, 5)})
    assert sim.bus_value("Q", 4) == 11  # hold


def test_shift_register_modes(cat):
    flat = cat.get("shift_register").expand({"size": 4})
    sim = FlatSimulator(flat)
    # Parallel load 0b1001.
    sim.clock_cycle("CLK", {"S0": 1, "S1": 1, "SIN_L": 0, "SIN_R": 0,
                            **bus_assignment("I", 4, 0b1001)})
    assert sim.bus_value("Q", 4) == 0b1001
    # Shift left with 1 entering at bit 0.
    sim.clock_cycle("CLK", {"S0": 1, "S1": 0, "SIN_L": 1, "SIN_R": 0,
                            **bus_assignment("I", 4, 0)})
    assert sim.bus_value("Q", 4) == ((0b1001 << 1) | 1) & 0xF
    # Hold.
    sim.clock_cycle("CLK", {"S0": 0, "S1": 0, "SIN_L": 0, "SIN_R": 0,
                            **bus_assignment("I", 4, 0)})
    assert sim.bus_value("Q", 4) == ((0b1001 << 1) | 1) & 0xF


def test_register_file_write_then_read(cat):
    flat = cat.get("register_file").expand({"size": 4, "awidth": 2})
    sim = FlatSimulator(flat)
    for word, value in [(0, 7), (1, 12), (2, 3), (3, 9)]:
        sim.clock_cycle("CLK", {"WE": 1, **bus_assignment("WA", 2, word),
                                **bus_assignment("RA", 2, word),
                                **bus_assignment("WD", 4, value)})
    for word, value in [(0, 7), (1, 12), (2, 3), (3, 9)]:
        sim.apply({"WE": 0, **bus_assignment("RA", 2, word)})
        assert sim.bus_value("RD", 4) == value


def test_counter_up_down_and_async_load(cat):
    flat = cat.get("counter").expand(
        counter_parameters(size=4, load=True, enable=True, up_or_down=UP_DOWN)
    )
    sim = FlatSimulator(flat)
    base = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    for expected in (1, 2, 3):
        sim.clock_cycle("CLK", base)
        assert sim.bus_value("Q", 4) == expected
    down = dict(base, DWUP=1)
    for expected in (2, 1, 0, 15):
        sim.clock_cycle("CLK", down)
        assert sim.bus_value("Q", 4) == expected
    # Asynchronous parallel load (active-low LOAD).
    sim.apply({"LOAD": 0, **bus_assignment("D", 4, 13)})
    assert sim.bus_value("Q", 4) == 13


def test_counter_enable_gates_counting(cat):
    flat = cat.get("counter").expand(
        counter_parameters(size=4, enable=True, up_or_down=UP_ONLY)
    )
    sim = FlatSimulator(flat)
    stim = {"LOAD": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    sim.clock_cycle("CLK", dict(stim, ENA=1))
    sim.clock_cycle("CLK", dict(stim, ENA=1))
    assert sim.bus_value("Q", 4) == 2
    sim.clock_cycle("CLK", dict(stim, ENA=0))
    sim.clock_cycle("CLK", dict(stim, ENA=0))
    assert sim.bus_value("Q", 4) == 2  # disabled: no counting
    sim.clock_cycle("CLK", dict(stim, ENA=1))
    assert sim.bus_value("Q", 4) == 3


def test_down_only_counter(cat):
    flat = cat.get("counter").expand(counter_parameters(size=3, up_or_down=DOWN_ONLY))
    sim = FlatSimulator(flat)
    stim = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 3, 0)}
    values = []
    for _ in range(3):
        sim.clock_cycle("CLK", stim)
        values.append(sim.bus_value("Q", 3))
    assert values == [7, 6, 5]


def test_ripple_counter_counts(cat):
    flat = cat.get("counter").expand(counter_parameters(size=4, style=TYPE_RIPPLE))
    sim = FlatSimulator(flat)
    stim = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    values = [sim.bus_value("Q", 4)]
    for _ in range(6):
        sim.clock_cycle("CLK", stim)
        values.append(sim.bus_value("Q", 4))
    # The ripple counter advances on the falling edge of CLK, so the value
    # observed after each rising edge lags the cycle count by one.
    assert values == [0, 0, 1, 2, 3, 4, 5]


def test_counter_minmax_flags_terminal_count(cat):
    flat = cat.get("counter").expand(counter_parameters(size=2, up_or_down=UP_ONLY))
    sim = FlatSimulator(flat)
    stim = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 2, 0)}
    seen_minmax = []
    for _ in range(4):
        out = sim.clock_cycle("CLK", stim)
        seen_minmax.append(out["MINMAX"])
    # MINMAX pulses (with CLK high) when the counter reaches all ones.
    assert 1 in seen_minmax
