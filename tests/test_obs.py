"""Tests for :mod:`repro.obs`: metrics, structured logs, admin console --
and the silent-failure regressions this PR pins down:

* job lifecycle durations derive from monotonic clock pairs, so a
  wall-clock (NTP) step mid-job cannot produce negative queue/run times;
* dropped job-event pushes and shutdown errors are counted and logged
  instead of vanishing in bare ``except`` blocks;
* the ``JobStatus`` long-poll honours terminal-state-wins over a
  simultaneous timeout, pinned with a scripted clock.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time

import pytest

from repro.api import ComponentService, ComponentRequest, GetMetrics, InstanceQuery
from repro.api.messages import SubmitJob
from repro.api.service import JobRecord
from repro.components import standard_catalog
from repro.net.client import connect
from repro.net.server import FrameDispatcher, serve
from repro.obs import (
    Clock,
    ManualClock,
    MetricsExporter,
    MetricsRegistry,
    RequestLog,
    get_logger,
    validate_snapshot,
)
from repro.obs.admin import main as admin_main, render_dashboard


# ---------------------------------------------------------------------------
# Clock seam
# ---------------------------------------------------------------------------


def test_system_clock_axes():
    clock = Clock()
    assert abs(clock.time() - time.time()) < 5.0
    first = clock.monotonic()
    assert clock.monotonic() >= first


def test_manual_clock_is_scriptable():
    clock = ManualClock(wall=100.0, mono=5.0)
    assert clock.time() == 100.0
    assert clock.monotonic() == 5.0
    clock.advance(2.5)
    assert clock.time() == 102.5
    assert clock.monotonic() == 7.5
    # An NTP step moves wall time only -- never the monotonic axis.
    clock.step_wall(-50.0)
    assert clock.time() == 52.5
    assert clock.monotonic() == 7.5


def test_manual_clock_auto_tick():
    clock = ManualClock(mono=0.0, auto_tick=0.125)
    assert clock.monotonic() == 0.0
    assert clock.monotonic() == 0.125
    assert clock.monotonic() == 0.25


# ---------------------------------------------------------------------------
# Instruments and registry
# ---------------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("c") is counter  # get-or-create

    gauge = registry.gauge("g")
    gauge.set(7.5)
    assert gauge.value == 7.5
    registry.gauge("g2", lambda: 42)
    assert registry.gauge("g2").value == 42
    registry.gauge("g3", lambda: 1 / 0)
    assert registry.gauge("g3").value == 0  # a dying gauge reads as 0

    hist = registry.histogram("h", bounds=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["bounds"] == [1.0, 10.0]
    assert snap["counts"] == [1, 1, 1]
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(55.5)
    assert snap["min"] == 0.5 and snap["max"] == 50.0
    with pytest.raises(ValueError):
        registry.histogram("empty", bounds=())


def test_counter_increments_survive_a_thread_race():
    counter = MetricsRegistry().counter("raced")
    threads = [
        threading.Thread(target=lambda: [counter.inc() for _ in range(2000)])
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 16000


def test_registry_snapshot_collectors_prefixes_and_histogram_toggle():
    clock = ManualClock(wall=123.0)
    registry = MetricsRegistry(clock=clock)
    registry.counter("requests.total").inc(3)
    registry.gauge("live", lambda: 2)
    registry.histogram("lat", bounds=(1.0,)).observe(0.5)
    registry.register_collector("cache", lambda: {"hits": 4, "by_stage": {"a": 1}})
    registry.register_collector("broken", lambda: 1 / 0)

    snap = validate_snapshot(registry.snapshot())
    assert snap["time"] == 123.0
    assert snap["counters"]["requests.total"] == 3
    assert snap["counters"]["cache.hits"] == 4
    assert snap["counters"]["cache.by_stage.a"] == 1  # nested maps flatten
    assert not any(k.startswith("broken") for k in snap["counters"])
    assert snap["gauges"]["live"] == 2
    assert snap["histograms"]["lat"]["count"] == 1

    filtered = registry.snapshot(prefixes=("cache.",))
    assert set(filtered["counters"]) == {"cache.hits", "cache.by_stage.a"}
    assert filtered["gauges"] == {} and filtered["histograms"] == {}

    light = registry.snapshot(include_histograms=False)
    assert light["histograms"] == {}
    assert light["counters"]["requests.total"] == 3


def test_validate_snapshot_rejects_malformed_exports():
    good = MetricsRegistry().snapshot()
    validate_snapshot(good)
    with pytest.raises(ValueError):
        validate_snapshot([])
    with pytest.raises(ValueError):
        validate_snapshot({k: v for k, v in good.items() if k != "counters"})
    with pytest.raises(ValueError):
        validate_snapshot({**good, "version": 999})
    with pytest.raises(ValueError):
        validate_snapshot({**good, "counters": {"x": "NaN-ish"}})
    with pytest.raises(ValueError):
        validate_snapshot(
            {**good, "histograms": {"h": {"bounds": [1.0], "counts": [1]}}}
        )
    with pytest.raises(ValueError):
        validate_snapshot(
            {
                **good,
                "histograms": {
                    "h": {"bounds": [1.0], "counts": [1, 2], "count": 99}
                },
            }
        )


def test_metrics_exporter_writes_valid_atomic_snapshots(tmp_path):
    registry = MetricsRegistry()
    registry.counter("n").inc(9)
    path = tmp_path / "metrics.json"
    exporter = MetricsExporter(registry, path, interval=30.0)
    exporter.write_once()
    on_disk = json.loads(path.read_text())
    assert validate_snapshot(on_disk)["counters"]["n"] == 9
    assert not path.with_suffix(".json.tmp").exists()

    registry.counter("n").inc()
    exporter.start()
    with pytest.raises(RuntimeError):
        exporter.start()  # double-start is a bug, not a second thread
    exporter.stop(write_final=True)
    assert json.loads(path.read_text())["counters"]["n"] == 10
    with pytest.raises(ValueError):
        MetricsExporter(registry, path, interval=0.0)


# ---------------------------------------------------------------------------
# Structured logs
# ---------------------------------------------------------------------------


def test_structured_logger_emits_json_events(caplog):
    logger = get_logger("repro.test.obs")
    assert get_logger("repro.test.obs") is logger
    with caplog.at_level(logging.DEBUG, logger="repro.test.obs"):
        logger.debug("push_drop", peer="1.2.3.4", error="boom")
        logger.warning("slow", elapsed_ms=12.5, weird=object())
    records = [json.loads(r.message) for r in caplog.records]
    assert records[0]["event"] == "push_drop"
    assert records[0]["peer"] == "1.2.3.4"
    assert records[1]["event"] == "slow"
    assert "object" in records[1]["weird"]  # non-JSON values fall back to repr


def test_request_log_lines_and_slow_threshold():
    stream = io.StringIO()
    log = RequestLog(stream=stream, slow_ms=10.0, clock=ManualClock(wall=777.0))
    log.record(
        kind="simulate",
        session_id="s1",
        ok=True,
        elapsed_ms=3.25,
        cached=True,
        cache_hits_delta=1,
    )
    log.record(
        kind="request_component",
        session_id="s1",
        ok=False,
        elapsed_ms=50.0,
        error_code="GENERATION_FAILED",
        cache_misses_delta=1,
        extra_field={"nested": True},
    )
    lines = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert lines[0] == {
        "ts": 777.0,
        "event": "request",
        "kind": "simulate",
        "session": "s1",
        "ok": True,
        "error": None,
        "elapsed_ms": 3.25,
        "cached": True,
        "cache_hits_delta": 1,
        "cache_misses_delta": 0,
        "slow": False,
    }
    assert lines[1]["slow"] is True
    assert lines[1]["error"] == "GENERATION_FAILED"
    assert lines[1]["extra_field"] == {"nested": True}


def test_request_log_slow_only_and_path_mode(tmp_path):
    path = tmp_path / "req.log"
    log = RequestLog(path=str(path), slow_ms=10.0, slow_only=True)
    log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    log.record(kind="b", session_id="s", ok=True, elapsed_ms=99.0)
    log.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [line["kind"] for line in lines] == ["b"]
    # Append mode: a restarted server extends the log.
    log2 = RequestLog(path=str(path))
    log2.record(kind="c", session_id="s", ok=True, elapsed_ms=1.0)
    log2.close()
    assert len(path.read_text().splitlines()) == 2


def test_request_log_constructor_and_sink_failure_rules(tmp_path):
    with pytest.raises(ValueError):
        RequestLog()  # neither sink
    with pytest.raises(ValueError):
        RequestLog(stream=io.StringIO(), path=str(tmp_path / "x"))  # both
    with pytest.raises(ValueError):
        RequestLog(stream=io.StringIO(), slow_only=True)  # threshold missing
    with pytest.raises(ValueError):
        RequestLog(stream=io.StringIO(), flush_every=0)  # no batch size
    stream = io.StringIO()
    log = RequestLog(stream=stream)
    stream.close()
    # A dead sink must never fail the request path -- neither buffering
    # a record nor draining the batch into the closed stream.
    log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    log.flush()


def test_request_log_batches_lines_until_flush():
    stream = io.StringIO()
    log = RequestLog(stream=stream, slow_ms=100.0, flush_every=4)
    for _ in range(3):
        log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    assert stream.getvalue() == ""  # below the batch size: buffered
    log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    assert len(stream.getvalue().splitlines()) == 4  # boundary drains
    log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    assert len(stream.getvalue().splitlines()) == 4  # buffered again
    # A slow outlier never waits in the buffer (and carries the
    # buffered lines out with it, in order).
    log.record(kind="slowpoke", session_id="s", ok=True, elapsed_ms=250.0)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 6
    assert json.loads(lines[-1])["kind"] == "slowpoke"
    assert json.loads(lines[-1])["slow"] is True
    log.record(kind="a", session_id="s", ok=True, elapsed_ms=1.0)
    log.flush()  # explicit drain for readers
    assert len(stream.getvalue().splitlines()) == 7


# ---------------------------------------------------------------------------
# Service instrumentation and the GetMetrics request
# ---------------------------------------------------------------------------


@pytest.fixture()
def obs_service(tmp_path):
    stream = io.StringIO()
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "store",
        request_log=RequestLog(stream=stream, slow_ms=0.0),
    )
    return service, stream


def test_execute_counts_and_logs_every_request(obs_service):
    service, stream = obs_service
    session = service.create_session()
    ok = service.execute(
        ComponentRequest(
            implementation="register", attributes={"size": 4}, detail="summary"
        ),
        session,
    )
    assert ok.ok
    again = service.execute(
        ComponentRequest(
            implementation="register", attributes={"size": 4}, detail="summary"
        ),
        session,
    )
    assert again.cached
    bad = service.execute(InstanceQuery(name="no_such_instance"), session)
    assert not bad.ok

    snap = service.execute(GetMetrics(), session).value
    counters = snap["counters"]
    assert counters["requests.total"] == 3  # snapshot precedes its own count
    assert counters["requests.kind.request_component"] == 2
    assert counters["requests.cached"] == 1
    assert counters["requests.errors"] == 1
    assert counters["requests.error." + (bad.error.code or "")] == 1
    assert snap["histograms"]["request.latency_ms"]["count"] == 3

    lines = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert [line["kind"] for line in lines][:3] == [
        "request_component",
        "request_component",
        "instance_query",
    ]
    assert lines[0]["cache_misses_delta"] == 1 and lines[0]["ok"] is True
    assert lines[1]["cache_hits_delta"] == 1 and lines[1]["cached"] is True
    assert lines[2]["error"] == bad.error.code
    assert all(line["slow"] for line in lines)  # slow_ms=0 marks everything


def test_simulation_and_verify_counters(obs_service):
    service, _ = obs_service
    session = service.create_session()
    built = session.request_component(
        implementation="ripple_carry_adder", attributes={"size": 2}
    )
    name = built.name
    from repro.api.messages import CheckEquivalence, Simulate

    assert service.execute(
        Simulate(name=name, vectors=({"I0[0]": 1},)), session
    ).ok
    assert service.execute(CheckEquivalence(name=name), session).ok
    counters = service.metrics.snapshot()["counters"]
    assert counters["sim.requests"] == 1
    assert counters["sim.vectors"] == 1
    assert counters["verify.checks"] == 1


def test_get_metrics_rides_the_job_path(obs_service):
    service, _ = obs_service
    session = service.create_session()
    response = service.execute(SubmitJob(request=GetMetrics()), session)
    assert response.ok
    descriptor = service.jobs.status(
        str(response.value["job_id"]), wait=True, timeout_ms=30_000
    )
    assert descriptor["state"] == "done"
    assert descriptor["response"]["value"]["version"] == 1
    assert descriptor["queue_ms"] >= 0.0
    assert descriptor["run_ms"] >= 0.0
    service.jobs.shutdown()


# ---------------------------------------------------------------------------
# Bugfix 1: monotonic job durations survive wall-clock steps
# ---------------------------------------------------------------------------


def test_job_durations_come_from_monotonic_pairs_not_wall_time(tmp_path):
    clock = ManualClock(wall=1000.0, mono=50.0)
    service = ComponentService(store_root=tmp_path / "store", clock=clock)
    manager = service.jobs
    record = JobRecord("job-x", service.default_session, GetMetrics(), "", False, 8, clock=clock)
    assert record.submitted_at == 1000.0
    assert record.submitted_mono == 50.0

    clock.advance(2.0)  # 2 s in the queue
    clock.step_wall(-3600.0)  # NTP yanks the wall clock back an hour...
    record.started_at = clock.time()
    record.started_mono = clock.monotonic()
    clock.advance(1.0)  # 1 s running
    record.finished_at = clock.time()
    record.finished_mono = clock.monotonic()

    descriptor = manager._descriptor_locked(record)
    # Wall timestamps dutifully show the step (display truth)...
    assert descriptor["started_at"] < descriptor["submitted_at"]
    # ...but durations come from the monotonic pairs and stay exact.
    assert descriptor["queue_ms"] == pytest.approx(2000.0)
    assert descriptor["run_ms"] == pytest.approx(1000.0)
    service.jobs.shutdown()


def test_queued_cancel_reports_queue_time_only(tmp_path):
    clock = ManualClock()
    service = ComponentService(store_root=tmp_path / "store", clock=clock)
    record = JobRecord("job-q", service.default_session, GetMetrics(), "", False, 8, clock=clock)
    clock.advance(0.5)
    record.finished_at = clock.time()
    record.finished_mono = clock.monotonic()
    descriptor = service.jobs._descriptor_locked(record)
    assert descriptor["queue_ms"] == pytest.approx(500.0)
    assert "run_ms" not in descriptor
    service.jobs.shutdown()


def test_real_job_descriptor_carries_nonnegative_durations(tmp_path):
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "store"
    )
    session = service.create_session()
    handle = session.submit(
        ComponentRequest(
            implementation="register", attributes={"size": 4}, detail="summary"
        )
    )
    descriptor = handle.wait(30)
    assert descriptor["state"] == "done"
    assert descriptor["queue_ms"] >= 0.0
    assert descriptor["run_ms"] >= 0.0
    counters = service.metrics.snapshot()["counters"]
    assert counters["jobs.done"] >= 1
    histograms = service.metrics.snapshot()["histograms"]
    assert histograms["jobs.queue_ms"]["count"] >= 1
    assert histograms["jobs.run_ms"]["count"] >= 1
    service.jobs.shutdown()


# ---------------------------------------------------------------------------
# Bugfix 2: silent drops are counted and logged
# ---------------------------------------------------------------------------


def test_dropped_push_is_counted_and_logged(tmp_path, caplog):
    service = ComponentService(store_root=tmp_path / "store")

    def failing_push(payload):
        raise BrokenPipeError("peer went away")

    dispatcher = FrameDispatcher(service, push=failing_push)
    dispatcher.session = service.default_session
    with caplog.at_level(logging.DEBUG, logger="repro.net.server"):
        dispatcher._push_event({"job_id": "job-1", "seq": 3})  # must not raise
    assert service.metrics.counter("net.push_drops").value == 1
    events = [json.loads(r.message) for r in caplog.records]
    assert any(
        e["event"] == "push_drop" and e["job_id"] == "job-1" for e in events
    )
    service.jobs.shutdown()


def test_job_event_drop_is_counted_not_swallowed(tmp_path):
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "store"
    )
    session = service.create_session()
    service.jobs.subscribe(
        session.session_id, lambda event: (_ for _ in ()).throw(RuntimeError("dead"))
    )
    handle = session.submit(
        ComponentRequest(
            implementation="register", attributes={"size": 4}, detail="summary"
        )
    )
    assert handle.wait(30)["state"] == "done"
    # At least submit/start/end events each hit the dead subscriber.
    assert service.metrics.counter("jobs.event_drops").value >= 3
    service.jobs.shutdown()


def test_shutdown_errors_are_counted(tmp_path, caplog):
    server = serve(service=ComponentService(store_root=tmp_path / "store"), port=0)

    class DeadSocket:
        def shutdown(self, how):
            raise OSError("already gone")

        def close(self):
            raise OSError("already gone")

    with server._live_lock:
        server._live.add(DeadSocket())
    with caplog.at_level(logging.DEBUG, logger="repro.net.server"):
        server.stop()
    assert server.service.metrics.counter("net.shutdown_errors").value >= 2
    events = [json.loads(r.message) for r in caplog.records]
    assert any(e["event"] == "shutdown_error" for e in events)


# ---------------------------------------------------------------------------
# Bugfix 3: the JobStatus long-poll with a scripted clock
# ---------------------------------------------------------------------------


@pytest.fixture()
def gated_service(tmp_path):
    """A service whose InstanceQuery('block') blocks until released, on a
    scripted clock: the deterministic stage for wait/timeout tests."""
    clock = ManualClock(auto_tick=0.001)
    service = ComponentService(store_root=tmp_path / "store", clock=clock)
    gate = threading.Event()
    original = service._dispatch

    def gated_dispatch(request, session):
        if isinstance(request, InstanceQuery) and request.name == "block":
            assert gate.wait(30)
        return original(request, session)

    service._dispatch = gated_dispatch
    yield service, clock, gate
    gate.set()
    service.jobs.shutdown()


def _wait_for_state(manager, job_id, state, deadline_s=10.0):
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        if manager.status(job_id)["state"] == state:
            return
        time.sleep(0.002)
    raise AssertionError(f"job {job_id} never reached {state!r}")


def test_status_timeout_is_deterministic_on_the_scripted_clock(gated_service):
    service, clock, gate = gated_service
    session = service.create_session()
    descriptor = service.jobs.submit(InstanceQuery(name="block"), session)
    job_id = str(descriptor["job_id"])
    _wait_for_state(service.jobs, job_id, "running")
    # auto_tick moves the scripted monotonic clock past the deadline on
    # the very first re-check: E_TIMEOUT without any real sleeping.
    with pytest.raises(Exception) as excinfo:
        service.jobs.status(job_id, wait=True, timeout_ms=0.5)
    assert getattr(excinfo.value, "code", "") == "TIMEOUT"
    # The job survives its waiter's timeout.
    assert service.jobs.status(job_id)["state"] == "running"
    gate.set()
    final = service.jobs.status(job_id, wait=True, timeout_ms=30_000)
    assert final["state"] in ("done", "failed")


def test_terminal_state_wins_over_a_simultaneous_timeout(gated_service):
    """The lost-wakeup audit, pinned: the wait loop re-checks the job
    state under the lock *before* the deadline, so a job that is already
    terminal answers its descriptor even when the deadline has long
    passed -- never a spurious E_TIMEOUT."""
    service, clock, gate = gated_service
    session = service.create_session()
    gate.set()  # job runs straight through
    descriptor = service.jobs.submit(InstanceQuery(name="block"), session)
    job_id = str(descriptor["job_id"])
    _wait_for_state(service.jobs, job_id, "failed")  # no such instance
    clock.advance(3600.0)  # any later deadline is already hopelessly past
    final = service.jobs.status(job_id, wait=True, timeout_ms=1.0)
    assert final["state"] == "failed"


# ---------------------------------------------------------------------------
# Admin console
# ---------------------------------------------------------------------------


def test_render_dashboard_pure():
    snapshot = {
        "version": 1,
        "time": 1_700_000_000.0,
        "counters": {
            "requests.total": 1234,
            "requests.errors": 2,
            "net.sessions_created": 20,
            "cache.result.hits": 80,
            "cache.result.lookups": 100,
            "cache.result.entries": 12,
            "gencache.expand.hits": 5,
            "gencache.expand.lookups": 10,
            "gencache.expand.entries": 4,
            "jobs.running": 1,
            "jobs.queued": 2,
            "jobs.workers": 4,
            "jobs.submitted": 50,
            "net.push_drops": 1,
        },
        "gauges": {"net.sessions": 3, "net.sessions_attached": 2},
        "histograms": {
            "request.latency_ms": {
                "bounds": [1.0, 10.0, 100.0],
                "counts": [600, 500, 130, 4],
                "count": 1234,
                "sum": 5000.0,
                "min": 0.05,
                "max": 250.0,
            }
        },
    }
    text = render_dashboard(snapshot, address="example:7361", req_per_s=41.5)
    assert "example:7361" in text
    assert "total      1,234" in text
    assert "41.5" in text
    assert "errors 2" in text
    assert "hit 80.0%" in text  # result cache
    assert "gen expand" in text
    assert "push drops 1" in text
    # Quantiles: p50 falls in the second bucket, p95 in the third.
    assert "p50 <=    10.00 ms" in text
    assert "p95 <=   100.00 ms" in text
    # Warming-up frame: no rate yet.
    assert "req/s    --" in render_dashboard(snapshot)
    # No fleet attached, no jobs overflowed: the fleet section is absent
    # but the inline-overflow counter always renders (zero here).
    assert "fleet" not in render_dashboard(snapshot)
    assert "inline    0" in render_dashboard(snapshot)


def test_render_dashboard_fleet_section():
    snapshot = {
        "version": 1,
        "time": 1_700_000_000.0,
        "counters": {
            "requests.total": 10,
            "jobs.inline_overflows": 3,
            "fleet.workers_live": 4,
            "fleet.workers_connected": 5,
            "fleet.workers_dead": 1,
            "fleet.dispatched": 120,
            "fleet.completed": 118,
            "fleet.steals": 7,
            "fleet.requeues": 2,
            "fleet.fallbacks": 1,
            "fleet.installs": 236,
            "fleet.coalesced": 9,
            "fleet.warm_fanouts": 2,
        },
        "gauges": {},
        "histograms": {},
    }
    text = render_dashboard(snapshot, address="example:7361")
    assert "fleet      workers   4/5" in text
    assert "dead   1" in text
    assert "dispatched     120" in text
    assert "steals     7" in text
    assert "requeues    2" in text
    assert "installs     236" in text
    assert "warm fanouts    2" in text
    assert "inline    3" in text


def test_admin_console_once_and_json_over_tcp(tmp_path, capsys):
    server = serve(
        service=ComponentService(
            catalog=standard_catalog(fresh=True), store_root=tmp_path / "store"
        ),
        port=0,
    )
    try:
        client = connect(server.host, server.port, client="warmup")
        client.execute(
            ComponentRequest(
                implementation="register", attributes={"size": 4}, detail="summary"
            )
        )
        client.close()
        argv = ["--host", server.host, "--port", str(server.port)]
        assert admin_main(argv + ["--once", "--plain"]) == 0
        text = capsys.readouterr().out
        assert "ICDB admin console" in text
        assert "requests   total" in text

        assert admin_main(argv + ["--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        validate_snapshot(snapshot)
        assert snapshot["counters"]["requests.total"] >= 1
    finally:
        server.stop()


def test_admin_console_rejects_bad_interval():
    with pytest.raises(SystemExit):
        admin_main(["--interval", "0"])


def test_remote_metrics_prefix_filter_over_tcp(tmp_path):
    server = serve(service=ComponentService(store_root=tmp_path / "store"), port=0)
    try:
        client = connect(server.host, server.port)
        snap = client.metrics(prefixes=("jobs",), include_histograms=False)
        assert snap["histograms"] == {}
        assert snap["counters"]
        assert all(name.startswith("jobs") for name in snap["counters"])
        client.close()
    finally:
        server.stop()
