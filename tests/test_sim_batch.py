"""Tests for the bit-parallel batch engines and the verification layer.

The batch simulators of :mod:`repro.sim.batch` promise *lane-for-lane
identity* with the scalar reference engines; these tests hold them to it
on combinational sweeps, sequential lock-step traces, the tristate /
wired-or resolution semantics, and seeded random netlists -- and then
exercise the verification layer (:mod:`repro.sim.verify`) built on top,
including a catalog-wide equivalence sweep over every implementation.
"""

from __future__ import annotations

import random

import pytest

from repro.components.counters import (
    TYPE_RIPPLE,
    UP_DOWN,
    UP_ONLY,
    counter_parameters,
)
from repro.core.progress import OperationCancelled, observed
from repro.logic.milo import synthesize
from repro.netlist import GateNetlist
from repro.sim import (
    BatchFlatSimulator,
    BatchGateSimulator,
    FlatSimulator,
    GateSimulationError,
    GateSimulator,
    SimulationError,
    VerificationError,
    bus_assignment,
    check_combinational_equivalence,
    check_combinational_equivalence_batch,
    check_equivalence,
    check_sequential_equivalence_batch,
    pack_vectors,
    simulate_vectors,
    unpack_lane,
    unpack_lanes,
)


# ---------------------------------------------------------------------------
# Lane packing
# ---------------------------------------------------------------------------


def test_pack_unpack_round_trip():
    vectors = [
        {"A": 1, "B": 0, "C": 1},
        {"A": 0, "B": 1, "C": 1},
        {"A": 1, "B": 1, "C": 0},
    ]
    packed = pack_vectors(vectors)
    assert packed == {"A": 0b101, "B": 0b110, "C": 0b011}
    assert unpack_lanes(packed, len(vectors)) == vectors
    assert unpack_lane(packed, 1) == vectors[1]


def test_pack_vectors_fixed_names_default_missing_to_zero():
    packed = pack_vectors([{"A": 1}, {"B": 1}], names=["A", "B", "C"])
    assert packed == {"A": 0b01, "B": 0b10, "C": 0b00}


def test_batch_simulators_reject_zero_lanes(adder_flat, adder_netlist):
    with pytest.raises(SimulationError):
        BatchFlatSimulator(adder_flat, 0)
    with pytest.raises(GateSimulationError):
        BatchGateSimulator(adder_netlist, 0)


# ---------------------------------------------------------------------------
# Combinational lane identity against the scalar engines
# ---------------------------------------------------------------------------


def _all_input_vectors(inputs):
    count = len(inputs)
    return [
        {name: (row >> bit) & 1 for bit, name in enumerate(inputs)}
        for row in range(1 << count)
    ]


def test_batch_gate_simulator_matches_scalar_on_adder(adder_netlist):
    vectors = _all_input_vectors(adder_netlist.inputs)
    packed = pack_vectors(vectors, adder_netlist.inputs)
    batch_out = BatchGateSimulator(adder_netlist, len(vectors)).apply(packed)
    scalar = GateSimulator(adder_netlist)
    for lane, vector in enumerate(vectors):
        assert unpack_lane(batch_out, lane) == scalar.apply(vector)


def test_batch_flat_simulator_matches_scalar_on_adder(adder_flat):
    vectors = _all_input_vectors(adder_flat.inputs)
    packed = pack_vectors(vectors, adder_flat.inputs)
    batch_out = BatchFlatSimulator(adder_flat, len(vectors)).apply(packed)
    scalar = FlatSimulator(adder_flat)
    for lane, vector in enumerate(vectors):
        assert unpack_lane(batch_out, lane) == scalar.apply(vector)


def test_batch_gate_simulator_adds_correctly(adder_netlist):
    # A semantic spot check independent of the scalar engine: 64 random
    # additions, one lane each.
    rng = random.Random(2026)
    cases = [(rng.randrange(16), rng.randrange(16), rng.randrange(2)) for _ in range(64)]
    vectors = [
        {"Cin": cin, **bus_assignment("I0", 4, a), **bus_assignment("I1", 4, b)}
        for a, b, cin in cases
    ]
    packed = pack_vectors(vectors, adder_netlist.inputs)
    out = BatchGateSimulator(adder_netlist, len(vectors)).apply(packed)
    for lane, (a, b, cin) in enumerate(cases):
        values = unpack_lane(out, lane)
        total = sum(values[f"O[{i}]"] << i for i in range(4)) + (values["Cout"] << 4)
        assert total == a + b + cin


# ---------------------------------------------------------------------------
# Sequential lock-step lane identity
# ---------------------------------------------------------------------------


def _random_lane_streams(rng, inputs, lanes, cycles):
    """Per-cycle lane-packed stimulus plus its per-lane scalar view."""
    packed_cycles = []
    scalar_cycles = []
    for _ in range(cycles):
        stimulus = {name: rng.getrandbits(lanes) for name in inputs}
        packed_cycles.append(stimulus)
        scalar_cycles.append([unpack_lane(stimulus, lane) for lane in range(lanes)])
    return packed_cycles, scalar_cycles


def test_batch_counter_lock_step_matches_scalar_lanes(
    updown_counter_flat, updown_counter_netlist
):
    lanes, cycles = 8, 12
    rng = random.Random(1990)
    free = [name for name in updown_counter_flat.inputs if name != "CLK"]
    packed_cycles, scalar_cycles = _random_lane_streams(rng, free, lanes, cycles)

    batch_flat = BatchFlatSimulator(updown_counter_flat, lanes)
    batch_gate = BatchGateSimulator(updown_counter_netlist, lanes)
    scalar_flats = [FlatSimulator(updown_counter_flat) for _ in range(lanes)]
    scalar_gates = [GateSimulator(updown_counter_netlist) for _ in range(lanes)]

    for cycle in range(cycles):
        flat_out = batch_flat.clock_cycle("CLK", packed_cycles[cycle])
        gate_out = batch_gate.clock_cycle("CLK", packed_cycles[cycle])
        for lane in range(lanes):
            stimulus = scalar_cycles[cycle][lane]
            assert unpack_lane(flat_out, lane) == scalar_flats[lane].clock_cycle(
                "CLK", stimulus
            )
            assert unpack_lane(gate_out, lane) == scalar_gates[lane].clock_cycle(
                "CLK", stimulus
            )


# ---------------------------------------------------------------------------
# TRIBUF / WIREOR resolution semantics (satellite: pinned-down tristate)
# ---------------------------------------------------------------------------


@pytest.fixture()
def tribuf_netlist(cells):
    netlist = GateNetlist("tribufs", ["D", "EN"], ["Y"], cells)
    netlist.add_instance(cells.by_kind("TRIBUF"), {"I0": "D", "EN": "EN", "O": "Y"})
    return netlist


@pytest.fixture()
def wireor_netlist(cells):
    netlist = GateNetlist("wired", ["A", "B", "EA", "EB"], ["Y"], cells)
    netlist.add_instance(cells.by_kind("TRIBUF"), {"I0": "A", "EN": "EA", "O": "ta"})
    netlist.add_instance(cells.by_kind("TRIBUF"), {"I0": "B", "EN": "EB", "O": "tb"})
    netlist.add_instance(cells.by_kind("WIREOR"), {"I0": "ta", "I1": "tb", "O": "Y"})
    return netlist


def test_tribuf_bus_hold_semantics_scalar(tribuf_netlist):
    # Enabled: the data input drives the output.  Disabled: the output
    # *holds* its last driven value (bus-hold model) -- it does not float
    # or fall to 0.
    sim = GateSimulator(tribuf_netlist)
    assert sim.apply({"D": 1, "EN": 1})["Y"] == 1
    assert sim.apply({"D": 0, "EN": 0})["Y"] == 1  # held high
    assert sim.apply({"D": 0, "EN": 1})["Y"] == 0
    assert sim.apply({"D": 1, "EN": 0})["Y"] == 0  # held low


def test_wireor_resolves_as_or(wireor_netlist):
    sim = GateSimulator(wireor_netlist)
    # Both drivers enabled: wired-or resolution is OR of the drivers.
    assert sim.apply({"A": 1, "B": 0, "EA": 1, "EB": 1})["Y"] == 1
    assert sim.apply({"A": 0, "B": 0, "EA": 1, "EB": 1})["Y"] == 0
    assert sim.apply({"A": 0, "B": 1, "EA": 1, "EB": 1})["Y"] == 1
    # One driver disabled: its bus-hold value (last driven) joins the OR.
    assert sim.apply({"A": 0, "B": 1, "EA": 0, "EB": 1})["Y"] == 1


@pytest.mark.parametrize("fixture_name", ["tribuf_netlist", "wireor_netlist"])
def test_batch_matches_scalar_on_tristate_netlists(fixture_name, request):
    # Bus-hold makes TRIBUF stateful, so identity must hold across a whole
    # stimulus *sequence*, not just independent vectors.
    netlist = request.getfixturevalue(fixture_name)
    lanes, steps = 16, 24
    rng = random.Random(7)
    batch = BatchGateSimulator(netlist, lanes)
    scalars = [GateSimulator(netlist) for _ in range(lanes)]
    for _ in range(steps):
        stimulus = {name: rng.getrandbits(lanes) for name in netlist.inputs}
        batch_out = batch.apply(stimulus)
        for lane in range(lanes):
            scalar_out = scalars[lane].apply(unpack_lane(stimulus, lane))
            assert unpack_lane(batch_out, lane) == scalar_out


# ---------------------------------------------------------------------------
# Sequential cell semantics (satellite: untested _sequential_step paths)
# ---------------------------------------------------------------------------


@pytest.fixture()
def dffsr_netlist(cells):
    netlist = GateNetlist("sr", ["D", "CK", "S", "R"], ["Q"], cells)
    netlist.add_instance(
        cells.by_kind("DFF_SR"), {"D": "D", "CK": "CK", "S": "S", "R": "R", "Q": "Q"}
    )
    return netlist


def test_dff_sr_async_set_wins_over_reset(dffsr_netlist):
    sim = GateSimulator(dffsr_netlist)
    # Asynchronous set acts without a clock edge.
    assert sim.apply({"D": 0, "CK": 0, "S": 1, "R": 0})["Q"] == 1
    # Set dominates reset when both are asserted.
    assert sim.apply({"S": 1, "R": 1})["Q"] == 1
    # Reset alone clears.
    assert sim.apply({"S": 0, "R": 1})["Q"] == 0
    # While reset is held, a rising edge cannot load D=1.
    assert sim.clock_cycle("CK", {"D": 1, "S": 0, "R": 1})["Q"] == 0
    # Released, the next edge loads D normally.
    assert sim.clock_cycle("CK", {"D": 1, "S": 0, "R": 0})["Q"] == 1


def test_dff_n_triggers_on_falling_edge(cells):
    netlist = GateNetlist("fall", ["D", "CK"], ["Q"], cells)
    netlist.add_instance(cells.by_kind("DFF_N"), {"D": "D", "CK": "CK", "Q": "Q"})
    sim = GateSimulator(netlist)
    # Rising edge: no capture.
    sim.apply({"D": 1, "CK": 0})
    assert sim.apply({"CK": 1})["Q"] == 0
    # Falling edge: captures D.
    assert sim.apply({"CK": 0})["Q"] == 1
    # Changing D with the clock held does nothing; the next falling edge
    # captures the new D.
    assert sim.apply({"D": 0})["Q"] == 1
    sim.apply({"CK": 1})
    assert sim.apply({"CK": 0})["Q"] == 0


@pytest.mark.parametrize(
    "kind,transparent_level", [("LATCH_H", 1), ("LATCH_L", 0)]
)
def test_latch_transparency_and_hold(cells, kind, transparent_level):
    netlist = GateNetlist("latch", ["D", "G"], ["Q"], cells)
    netlist.add_instance(cells.by_kind(kind), {"D": "D", "G": "G", "Q": "Q"})
    sim = GateSimulator(netlist)
    opaque_level = 1 - transparent_level
    # Transparent: Q follows D.
    assert sim.apply({"D": 1, "G": transparent_level})["Q"] == 1
    assert sim.apply({"D": 0})["Q"] == 0
    assert sim.apply({"D": 1})["Q"] == 1
    # Opaque: Q holds the last transparent value.
    assert sim.apply({"G": opaque_level})["Q"] == 1
    assert sim.apply({"D": 0})["Q"] == 1
    # Transparent again: Q follows D again.
    assert sim.apply({"G": transparent_level})["Q"] == 0


@pytest.fixture()
def mixed_sequential_netlist(cells):
    """Every sequential cell kind in one netlist, sharing data and clocks."""
    netlist = GateNetlist(
        "mixed_seq",
        ["D", "CK", "S", "R", "G"],
        ["Q_DFF", "Q_DFFN", "Q_SR", "Q_NSR", "Q_LH", "Q_LL"],
        cells,
    )
    netlist.add_instance(cells.by_kind("DFF"), {"D": "D", "CK": "CK", "Q": "Q_DFF"})
    netlist.add_instance(cells.by_kind("DFF_N"), {"D": "D", "CK": "CK", "Q": "Q_DFFN"})
    netlist.add_instance(
        cells.by_kind("DFF_SR"), {"D": "D", "CK": "CK", "S": "S", "R": "R", "Q": "Q_SR"}
    )
    netlist.add_instance(
        cells.by_kind("DFF_N_SR"),
        {"D": "D", "CK": "CK", "S": "S", "R": "R", "Q": "Q_NSR"},
    )
    netlist.add_instance(cells.by_kind("LATCH_H"), {"D": "D", "G": "G", "Q": "Q_LH"})
    netlist.add_instance(cells.by_kind("LATCH_L"), {"D": "D", "G": "G", "Q": "Q_LL"})
    return netlist


def test_batch_matches_scalar_on_mixed_sequential_netlist(mixed_sequential_netlist):
    # Free-running apply() (no fixed clocking discipline) exercises rising
    # and falling edges, async set/reset priority and latch transparency in
    # arbitrary interleavings; batch lanes must track scalar replicas
    # exactly through all of it.
    netlist = mixed_sequential_netlist
    lanes, steps = 16, 30
    rng = random.Random(42)
    batch = BatchGateSimulator(netlist, lanes)
    scalars = [GateSimulator(netlist) for _ in range(lanes)]
    for _ in range(steps):
        stimulus = {name: rng.getrandbits(lanes) for name in netlist.inputs}
        batch_out = batch.apply(stimulus)
        for lane in range(lanes):
            scalar_out = scalars[lane].apply(unpack_lane(stimulus, lane))
            assert unpack_lane(batch_out, lane) == scalar_out


# ---------------------------------------------------------------------------
# Property test: random netlists, random stimulus
# ---------------------------------------------------------------------------


_RANDOM_KINDS = [
    "INV",
    "BUF",
    "AND2",
    "OR2",
    "NAND2",
    "NOR2",
    "XOR2",
    "XNOR2",
    "AOI21",
    "OAI21",
    "MUX2",
    "WIREOR",
]


def _random_netlist(cells, rng, inputs=5, gates=24):
    input_names = [f"I{i}" for i in range(inputs)]
    netlist = GateNetlist("fuzzed", input_names, [], cells)
    nets = list(input_names)
    last = input_names[-1]
    for index in range(gates):
        cell = cells.by_kind(rng.choice(_RANDOM_KINDS))
        out = f"w{index}"
        pins = {pin: rng.choice(nets) for pin in cell.inputs}
        pins[cell.outputs[0]] = out
        netlist.add_instance(cell, pins)
        nets.append(out)
        last = out
    # Expose a handful of internal nets (always including the last, so the
    # whole cone is observable).
    outputs = sorted(set(rng.sample(nets[inputs:], 3) + [last]))
    netlist.outputs = outputs
    return netlist


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_batch_matches_scalar_on_random_netlists(cells, seed):
    rng = random.Random(seed)
    netlist = _random_netlist(cells, rng)
    lanes = 64
    stimulus = {name: rng.getrandbits(lanes) for name in netlist.inputs}
    batch_out = BatchGateSimulator(netlist, lanes).apply(stimulus)
    for lane in range(lanes):
        scalar_out = GateSimulator(netlist).apply(unpack_lane(stimulus, lane))
        assert unpack_lane(batch_out, lane) == scalar_out, f"lane {lane} diverged"


# ---------------------------------------------------------------------------
# Verification layer
# ---------------------------------------------------------------------------


def test_batch_combinational_equivalence_passes(adder_flat, adder_netlist):
    result = check_combinational_equivalence_batch(adder_flat, adder_netlist)
    assert result.equivalent
    assert result.mode == "combinational"
    assert result.vectors_checked == 512  # exhaustive over 9 inputs


def test_batch_combinational_equivalence_matches_scalar_on_broken_netlist(
    adder_flat, cells
):
    netlist = synthesize(adder_flat, cells)
    victim = next(
        inst for inst in netlist.all_instances() if inst.cell.kind == "XOR2"
    )
    victim.pins["I0"] = victim.pins["I1"]
    scalar = check_combinational_equivalence(adder_flat, netlist, max_exhaustive=9)
    batch = check_combinational_equivalence_batch(adder_flat, netlist, max_exhaustive=9)
    assert not batch.equivalent
    # Earliest-vector counterexample extraction: the batch checker reports
    # exactly what the scalar checker reports, field for field.
    assert batch.equivalent == scalar.equivalent
    assert batch.vectors_checked == scalar.vectors_checked
    assert batch.counterexample == scalar.counterexample
    assert batch.mismatched_outputs == scalar.mismatched_outputs
    assert batch.mode == scalar.mode


def test_batch_sequential_equivalence_passes(
    updown_counter_flat, updown_counter_netlist
):
    result = check_sequential_equivalence_batch(
        updown_counter_flat, updown_counter_netlist, "CLK", cycles=8, lanes=16
    )
    assert result.equivalent
    assert result.mode == "sequential"
    assert result.vectors_checked == 8 * 16


def test_batch_sequential_equivalence_catches_sabotage(
    updown_counter_flat, updown_counter_netlist
):
    netlist = updown_counter_netlist.clone("sabotaged")
    victim = next(
        inst for inst in netlist.all_instances() if inst.cell.kind == "XOR2"
    )
    victim.pins["I0"] = victim.pins["I1"]
    result = check_sequential_equivalence_batch(
        updown_counter_flat, netlist, "CLK", cycles=16, lanes=16
    )
    assert not result.equivalent
    assert result.counterexample is not None
    assert result.mismatched_outputs
    assert 0 < result.vectors_checked <= 16 * 16


def test_check_equivalence_auto_mode_dispatch(
    adder_flat, adder_netlist, updown_counter_flat, updown_counter_netlist
):
    comb = check_equivalence(adder_flat, adder_netlist)
    assert comb.equivalent and comb.mode == "combinational"
    seq = check_equivalence(
        updown_counter_flat, updown_counter_netlist, cycles=8, lanes=16
    )
    assert seq.equivalent and seq.mode == "sequential"


def test_check_equivalence_rejects_bad_requests(
    adder_flat, adder_netlist, updown_counter_flat, updown_counter_netlist
):
    with pytest.raises(VerificationError, match="unknown equivalence mode"):
        check_equivalence(adder_flat, adder_netlist, mode="formal")
    with pytest.raises(VerificationError, match="port mismatch"):
        check_equivalence(updown_counter_flat, adder_netlist)
    with pytest.raises(VerificationError, match="needs a clock input"):
        check_equivalence(adder_flat, adder_netlist, mode="sequential")
    with pytest.raises(VerificationError, match="not an input"):
        check_equivalence(
            updown_counter_flat,
            updown_counter_netlist,
            mode="sequential",
            clock="NOT_A_PIN",
        )


def test_simulate_vectors_engines_agree(adder_flat, adder_netlist):
    rng = random.Random(11)
    vectors = [
        {name: rng.randint(0, 1) for name in adder_flat.inputs} for _ in range(40)
    ]
    gates = simulate_vectors(adder_flat, adder_netlist, vectors, engine="gates")
    flat = simulate_vectors(adder_flat, adder_netlist, vectors, engine="flat")
    assert gates == flat
    assert len(gates) == len(vectors)
    with pytest.raises(VerificationError, match="unknown simulation engine"):
        simulate_vectors(adder_flat, adder_netlist, vectors, engine="spice")


def test_simulate_vectors_clocked_trace_matches_scalar(
    updown_counter_flat, updown_counter_netlist
):
    stim = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    vectors = [dict(stim) for _ in range(5)]
    trace = simulate_vectors(
        updown_counter_flat, updown_counter_netlist, vectors, clock="CLK"
    )
    scalar = GateSimulator(updown_counter_netlist)
    expected = [scalar.clock_cycle("CLK", stim) for _ in range(5)]
    assert trace == expected
    with pytest.raises(VerificationError, match="not an input"):
        simulate_vectors(
            updown_counter_flat, updown_counter_netlist, vectors, clock="NOT_A_PIN"
        )


def test_equivalence_check_is_cancellable_between_blocks(adder_flat, adder_netlist):
    seen = []

    def observer(stage, fraction):
        seen.append((stage, fraction))
        if len(seen) > 1:
            raise OperationCancelled("stop")

    with observed(observer):
        with pytest.raises(OperationCancelled):
            check_combinational_equivalence_batch(
                adder_flat, adder_netlist, block_lanes=64
            )
    # The first block ran (checkpoint before each block), the second was
    # cancelled before simulating anything.
    assert [stage for stage, _ in seen] == ["equivalence", "equivalence"]


# ---------------------------------------------------------------------------
# Catalog-wide: batch verification over every implementation
# ---------------------------------------------------------------------------


CATALOG_PARAMS = {
    "counter": counter_parameters(size=2, load=True, enable=True, up_or_down=UP_DOWN),
    "up_counter": counter_parameters(size=2, up_or_down=UP_ONLY),
    "ripple_counter": counter_parameters(size=2, style=TYPE_RIPPLE),
    "register_file": {"size": 2, "awidth": 1},
    "shifter": {"size": 4, "shift_distance": 1},
    "barrel_shifter": {"size": 4, "awidth": 2},
    "clock_driver": {"fanout": 4},
    "delay_element": {"size": 1, "amount": 2},
    "concat": {"high_size": 2, "low_size": 2},
    "extract": {"size": 4, "offset": 1, "width": 2},
    "alu": {"size": 2},
    "array_multiplier": {"size": 2},
    "mux_scg2": {"size": 2},
    "logic_unit": {"size": 2},
    "tri_state": {"size": 2},
    "schmitt_trigger": {"size": 1},
}


def _catalog_case(catalog, cells, name):
    flat = catalog.get(name).expand(CATALOG_PARAMS.get(name, {"size": 3}))
    return flat, synthesize(flat, cells)


def _catalog_names(catalog):
    return sorted(impl.name for impl in catalog.implementations())


def test_every_catalog_component_verifies_batch(catalog, cells):
    # tri_state is the one deliberate exception: the flat IIF models the
    # enable as a pure data passthrough while the gate TRIBUF models
    # bus-hold, so flat-vs-gate equivalence legitimately fails -- but the
    # batch checker must still report *exactly* what the scalar checker
    # reports (see the companion test below).
    names = _catalog_names(catalog)
    assert len(names) >= 25  # the sweep really is catalog-wide
    failures = []
    for name in names:
        if name == "tri_state":
            continue
        flat, netlist = _catalog_case(catalog, cells, name)
        result = check_equivalence(flat, netlist, cycles=12, lanes=16)
        if not result.equivalent:
            failures.append((name, result.to_dict()))
        elif flat.sequential() and result.mode != "sequential":
            failures.append((name, f"clocked component checked as {result.mode}"))
    assert not failures, failures


def test_tri_state_batch_reports_exactly_the_scalar_verdict(catalog, cells):
    flat, netlist = _catalog_case(catalog, cells, "tri_state")
    scalar = check_combinational_equivalence(flat, netlist)
    batch = check_combinational_equivalence_batch(flat, netlist)
    assert scalar.equivalent == batch.equivalent
    assert scalar.vectors_checked == batch.vectors_checked
    assert scalar.counterexample == batch.counterexample
    assert scalar.mismatched_outputs == batch.mismatched_outputs
    # And the divergence itself is the documented one: with EN=0 the flat
    # side passes data through while the gate side holds the bus.
    assert not batch.equivalent
    assert batch.counterexample["EN"] == 0
