"""Tests for the IIF macro expander and the flat component form."""

from __future__ import annotations

import itertools

import pytest

from repro.components.arithmetic import ADDER_SUBTRACTOR_IIF, RIPPLE_CARRY_ADDER_IIF
from repro.components.counters import COUNTER_IIF, RIPPLE_COUNTER_IIF
from repro.iif import (
    CombAssign,
    Expander,
    FlatIifError,
    IifExpansionError,
    SeqAssign,
    bus_signals,
    expand_signal,
    flat_to_milo,
    parse_module,
)
from repro.logic import expr as E


@pytest.fixture(scope="module")
def expander():
    library = {
        "ADDER": parse_module(RIPPLE_CARRY_ADDER_IIF),
        "RIPPLE_COUNTER": parse_module(RIPPLE_COUNTER_IIF),
    }
    return Expander(library)


# ---------------------------------------------------------------------------
# Structural expansion
# ---------------------------------------------------------------------------


def test_adder_expansion_signal_counts(expander):
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    flat = expander.expand(module, {"size": 4})
    assert flat.inputs == [f"I0[{i}]" for i in range(4)] + [f"I1[{i}]" for i in range(4)] + ["Cin"]
    assert flat.outputs == [f"O[{i}]" for i in range(4)] + ["Cout"]
    # 4 sum bits + 4 carries + C[0] + Cout = 10 combinational equations
    assert len(flat.combinational()) == 10
    assert not flat.sequential()


def test_for_loop_unrolls_per_parameter(expander):
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    for size in (1, 2, 8):
        flat = expander.expand(module, {"size": size})
        assert len(flat.outputs) == size + 1
        assert len(flat.combinational()) == 2 * size + 2


def test_missing_parameter_raises(expander):
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    with pytest.raises(IifExpansionError):
        expander.expand(module, {})


def test_subfunction_call_by_name_binding(expander):
    module = parse_module(ADDER_SUBTRACTOR_IIF)
    flat = expander.expand(module, {"size": 4})
    targets = flat.driven_signals()
    # The adder sub-function writes the caller's O / Cout / C signals.
    assert "O[0]" in targets and "Cout" in targets and "C[4]" in targets
    assert "B1[3]" in targets


def test_unknown_subfunction_is_reported():
    module = parse_module(ADDER_SUBTRACTOR_IIF)
    with pytest.raises(IifExpansionError):
        Expander().expand(module, {"size": 4})


def test_counter_synchronous_expansion(expander):
    module = parse_module(COUNTER_IIF)
    flat = expander.expand(
        module, {"size": 4, "type": 2, "load": 1, "enable": 1, "up_or_down": 3}
    )
    seq_targets = flat.state_signals()
    assert "CLKO" in seq_targets  # the enable clock-gating latch
    assert {f"Q[{i}]" for i in range(4)} <= set(seq_targets)
    q0 = flat.assignment_for("Q[0]")
    assert isinstance(q0, SeqAssign)
    assert q0.edge == "r"
    assert len(q0.asyncs) == 2  # parallel load: set and reset terms
    assert {term.value for term in q0.asyncs} == {0, 1}


def test_counter_options_change_structure(expander):
    module = parse_module(COUNTER_IIF)
    plain = expander.expand(module, {"size": 4, "type": 2, "load": 0, "enable": 0, "up_or_down": 1})
    loaded = expander.expand(module, {"size": 4, "type": 2, "load": 1, "enable": 0, "up_or_down": 1})
    assert not plain.assignment_for("Q[0]").asyncs
    assert loaded.assignment_for("Q[0]").asyncs
    assert "CLKO" not in plain.state_signals()  # no enable latch without enable


def test_counter_ripple_uses_subfunction(expander):
    module = parse_module(COUNTER_IIF)
    flat = expander.expand(module, {"size": 3, "type": 1, "load": 0, "enable": 0, "up_or_down": 1})
    q1 = flat.assignment_for("Q[1]")
    assert isinstance(q1, SeqAssign)
    assert q1.edge == "f"
    # Bit 1 is clocked by bit 0 of the ripple chain: its (hygienically
    # renamed) clock net is a combinational alias of Q[0].
    clock_net = next(iter(q1.clock.variables()))
    assert flat.assignment_for(clock_net).expr == E.Var("Q[0]")


def test_aggregate_assignment_accumulates():
    source = """
NAME: WIDE_AND;
PARAMETER: size;
INORDER: I[size];
OUTORDER: O;
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O *= I[i];
}
"""
    flat = Expander().expand(parse_module(source), {"size": 4})
    assign = flat.assignment_for("O")
    assert isinstance(assign, CombAssign)
    for index in range(4):
        assert f"I[{index}]" in assign.expr.variables()
    # Semantics: AND of all four inputs.
    for bits in itertools.product((0, 1), repeat=4):
        env = {f"I[{i}]": bits[i] for i in range(4)}
        assert assign.expr.evaluate(env) == int(all(bits))


def test_mixed_aggregate_operators_rejected():
    source = """
NAME: BAD;
INORDER: A, B;
OUTORDER: O;
{
    O += A;
    O *= B;
}
"""
    with pytest.raises(IifExpansionError):
        Expander().expand(parse_module(source), {})


def test_double_assignment_rejected():
    source = """
NAME: BAD2;
INORDER: A, B;
OUTORDER: O;
{
    O = A;
    O = B;
}
"""
    with pytest.raises(IifExpansionError):
        Expander().expand(parse_module(source), {})


def test_cline_and_if_evaluate_at_expansion_time():
    source = """
NAME: CHOICES;
PARAMETER: n, m;
INORDER: A;
OUTORDER: O;
VARIABLE: cnm, i;
{
    #c_line cnm = 1;
    #for(i=1; i<=m; i++)
        #c_line cnm = cnm * (n - i + 1) / i;
    #if (cnm == 6)
        O = A;
    #else
        O = !A;
}
"""
    module = parse_module(source)
    flat = Expander().expand(module, {"n": 4, "m": 2})  # C(4,2) = 6
    assert flat.assignment_for("O").expr == E.Var("A")
    flat2 = Expander().expand(module, {"n": 4, "m": 1})  # C(4,1) = 4
    assert isinstance(flat2.assignment_for("O").expr, E.Not)


def test_interface_operators_become_special_nodes():
    source = """
NAME: IFACE;
INORDER: A, EN, B;
OUTORDER: T, W, D, S;
{
    T = A ~t EN;
    W = A ~w B;
    D = A ~d 15;
    S = ~s A;
}
"""
    flat = Expander().expand(parse_module(source), {})
    assert isinstance(flat.assignment_for("T").expr, E.Special)
    assert flat.assignment_for("D").expr.param == 15
    assert flat.assignment_for("W").expr.kind == "wireor"
    assert flat.assignment_for("S").expr.kind == "schmitt"


def test_async_without_clock_is_rejected():
    source = """
NAME: BADASYNC;
INORDER: A, R;
OUTORDER: Q;
{
    Q = A ~a(0/R);
}
"""
    with pytest.raises(IifExpansionError):
        Expander().expand(parse_module(source), {})


def test_undeclared_signal_reference_rejected():
    source = """
NAME: UNDECLARED;
INORDER: A;
OUTORDER: O;
{
    O = A * GHOST;
}
"""
    with pytest.raises(IifExpansionError):
        Expander().expand(parse_module(source), {})


# ---------------------------------------------------------------------------
# Flat component behaviour
# ---------------------------------------------------------------------------


def test_collapsed_outputs_match_adder_semantics(expander):
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    flat = expander.expand(module, {"size": 3})
    collapsed = flat.collapsed_output_expressions()
    for a, b, cin in itertools.product(range(8), range(8), (0, 1)):
        env = {"Cin": cin}
        for i in range(3):
            env[f"I0[{i}]"] = (a >> i) & 1
            env[f"I1[{i}]"] = (b >> i) & 1
        total = a + b + cin
        value = sum(collapsed[f"O[{i}]"].evaluate(env) << i for i in range(3))
        assert value == total % 8
        assert collapsed["Cout"].evaluate(env) == (total >> 3)


def test_validate_catches_undriven_output():
    from repro.iif.flat import FlatComponent

    component = FlatComponent(name="broken", inputs=["A"], outputs=["X"])
    with pytest.raises(FlatIifError):
        component.validate()


def test_expand_signal_and_bus_helpers(expander):
    assert expand_signal("D", 3) == ["D[0]", "D[1]", "D[2]"]
    assert expand_signal("CLK", 0) == ["CLK"]
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    flat = expander.expand(module, {"size": 4})
    assert bus_signals(flat, "O") == [f"O[{i}]" for i in range(4)]


def test_flat_to_milo_contains_all_equations(expander):
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    flat = expander.expand(module, {"size": 2})
    text = flat_to_milo(flat)
    assert text.startswith("NAME=ADDER;")
    assert "INORDER=" in text and "OUTORDER=" in text
    assert text.count("=") >= len(flat.assigns)


def test_clock_inputs_detected(expander):
    module = parse_module(COUNTER_IIF)
    flat = expander.expand(module, {"size": 3, "type": 2, "load": 0, "enable": 1, "up_or_down": 3})
    assert "CLK" in flat.clock_inputs()
