"""Tests for the cell library and the gate-netlist data structures."""

from __future__ import annotations

import pytest

from repro.netlist import (
    GateNetlist,
    NetlistError,
    combinational_order,
    driver_of,
    fanout_counts,
    gate_netlist_to_vhdl,
    layout_to_cif,
    logic_depth,
    parse_cif_boxes,
    structural_vhdl,
    transitive_fanin,
    transitive_fanout,
    vhdl_component_declaration,
    vhdl_entity,
)
from repro.netlist.structural import StructuralNetlist, flatten_to_gates
from repro.techlib import (
    Cell,
    CellLibraryError,
    MAX_SIZE,
    WIDTH_PER_TRANSISTOR_UM,
    default_library,
    standard_cells,
)


# ---------------------------------------------------------------------------
# Cell library
# ---------------------------------------------------------------------------


def test_library_contains_required_kinds(cells):
    for kind in ("INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2", "AOI21",
                 "OAI21", "MUX2", "BUF", "DFF", "DFF_SR", "DFF_N", "LATCH_H",
                 "LATCH_L", "TRIBUF", "SCHMITT", "DELAY", "WIREOR", "TIE0", "TIE1"):
        assert cells.has_kind(kind), kind


def test_cell_lookup_and_errors(cells):
    assert cells.cell("INV1").kind == "INV"
    assert "INV1" in cells
    with pytest.raises(CellLibraryError):
        cells.cell("NOPE")
    with pytest.raises(CellLibraryError):
        cells.by_kind("NOPE")


def test_delay_formula_matches_paper():
    cell = standard_cells().cell("NAND2")
    load, fanout = 12.0, 3
    expected = load * cell.load_delay + cell.intrinsic_delay + fanout * cell.fanout_delay
    assert cell.output_delay(load, fanout) == pytest.approx(expected)


def test_sizing_scales_delay_width_and_input_load():
    cell = standard_cells().cell("INV1")
    assert cell.load_delay_at_size(2.0) == pytest.approx(cell.load_delay / 2.0)
    assert cell.width_at_size(2.0) > cell.width_um
    assert cell.width_at_size(2.0) < 2.0 * cell.width_um  # sub-linear growth
    assert cell.input_load_at_size(2.0) > cell.input_load
    assert cell.width_um == pytest.approx(cell.transistors * WIDTH_PER_TRANSISTOR_UM)


def test_sequential_cells_have_timing_parameters(cells):
    dff = cells.by_kind("DFF")
    assert dff.is_sequential and dff.clock_pin == "CK"
    assert dff.setup_time > 0 and dff.clock_to_q > 0 and dff.min_pulse_width > 0


def test_default_library_is_fresh_copy():
    library = default_library()
    assert len(library) == len(standard_cells())
    assert library is not standard_cells()


def test_duplicate_cell_rejected():
    library = default_library()
    with pytest.raises(CellLibraryError):
        library.add(library.cell("INV1"))


# ---------------------------------------------------------------------------
# Gate netlists
# ---------------------------------------------------------------------------


def _small_netlist(cells):
    netlist = GateNetlist("demo", ["A", "B", "CK"], ["Y", "Q"], cells)
    netlist.add_instance(cells.by_kind("AND2"), {"I0": "A", "I1": "B", "O": "n1"}, name="u_and")
    netlist.add_instance(cells.by_kind("INV"), {"I0": "n1", "O": "Y"}, name="u_inv")
    netlist.add_instance(cells.by_kind("DFF"), {"D": "n1", "CK": "CK", "Q": "Q"}, name="u_ff")
    return netlist


def test_netlist_nets_and_fanout(cells):
    netlist = _small_netlist(cells)
    table = netlist.nets()
    assert table["A"].is_primary_input
    assert table["n1"].driver_instance == "u_and"
    assert table["n1"].fanout == 2
    assert fanout_counts(netlist)["n1"] == 2
    assert driver_of(netlist, "Y").name == "u_inv"
    assert driver_of(netlist, "A") is None


def test_netlist_validation_and_errors(cells):
    netlist = _small_netlist(cells)
    netlist.validate()
    with pytest.raises(NetlistError):
        netlist.add_instance(cells.by_kind("INV"), {"I0": "A"})  # missing output pin
    with pytest.raises(NetlistError):
        netlist.add_instance(cells.by_kind("INV"), {"I0": "A", "O": "x"}, name="u_inv")
    bad = GateNetlist("bad", ["A"], ["Y"], cells)
    with pytest.raises(NetlistError):
        bad.validate()  # output never driven
    multi = GateNetlist("multi", ["A"], ["Y"], cells)
    multi.add_instance(cells.by_kind("INV"), {"I0": "A", "O": "Y"})
    multi.add_instance(cells.by_kind("BUF"), {"I0": "A", "O": "Y"})
    with pytest.raises(NetlistError):
        multi.nets()  # two drivers on Y


def test_netlist_statistics_and_loads(cells):
    netlist = _small_netlist(cells)
    assert netlist.cell_count() == 3
    assert netlist.flip_flop_count() == 1
    histogram = netlist.cell_histogram()
    assert histogram["AND2"] == 1
    loads = netlist.net_load_units({"Y": 10.0})
    assert loads["Y"] == pytest.approx(10.0)
    assert loads["n1"] > 0
    assert netlist.transistor_units() > 0
    assert "demo" in netlist.summary()


def test_topological_order_and_depth(cells):
    netlist = _small_netlist(cells)
    order = [inst.name for inst in combinational_order(netlist)]
    assert order.index("u_and") < order.index("u_inv")
    assert logic_depth(netlist) == 2
    cone = transitive_fanin(netlist, ["Y"])
    assert {"Y", "n1", "A", "B"} <= cone
    out_cone = transitive_fanout(netlist, ["A"])
    assert "Y" in out_cone


def test_combinational_cycle_detected(cells):
    netlist = GateNetlist("loop", ["A"], ["Y"], cells)
    netlist.add_instance(cells.by_kind("AND2"), {"I0": "A", "I1": "Y", "O": "n1"})
    netlist.add_instance(cells.by_kind("INV"), {"I0": "n1", "O": "Y"})
    with pytest.raises(NetlistError):
        combinational_order(netlist)


# ---------------------------------------------------------------------------
# VHDL / CIF emission
# ---------------------------------------------------------------------------


def test_vhdl_emission_contains_entity_and_instances(cells):
    netlist = _small_netlist(cells)
    text = gate_netlist_to_vhdl(netlist)
    assert "entity demo is" in text
    assert "architecture structure of demo" in text
    assert "port map" in text
    assert text.count("component") >= 3


def test_vhdl_head_and_identifier_sanitizing():
    head = vhdl_component_declaration("counter_1", ["D[0]", "CLK"], ["Q[0]"])
    assert "component counter_1" in head
    assert "d_0 : in bit" in head
    assert "q_0 : out bit" in head
    entity = vhdl_entity("my design", ["A"], ["B"])
    assert "entity my_design is" in entity


def test_structural_vhdl_and_netlist(cells):
    structure = StructuralNetlist("cluster", inputs=["A", "B"], outputs=["Y"])
    structure.add("u1", "adder_x", {"I0": "A", "I1": "B", "O": "t"})
    structure.add("u2", "inv_x", {"I0": "t", "O": "Y"})
    assert structure.internal_nets() == ["t"]
    assert structure.components_used() == ["adder_x", "inv_x"]
    text = structure.to_vhdl()
    assert "u1 : adder_x" in text
    with pytest.raises(NetlistError):
        structure.add("u1", "dup", {})


def test_flatten_to_gates_merges_and_renames(cells, adder_netlist):
    structure = StructuralNetlist("pair", inputs=["X"], outputs=[])
    port_map = {name: f"a_{name}" for name in adder_netlist.inputs + adder_netlist.outputs}
    structure.add("a", adder_netlist.name, port_map)
    structure.add("b", adder_netlist.name, {})
    merged = flatten_to_gates(structure, lambda ref: adder_netlist)
    assert merged.cell_count() == 2 * adder_netlist.cell_count()
    nets = merged.nets()
    assert any(net.startswith("a_") for net in nets)
    assert any(net.startswith("b.") for net in nets)


def test_cif_round_trip(updown_counter_netlist):
    from repro.layout import generate_layout

    layout = generate_layout(updown_counter_netlist, strips=3)
    cif = layout_to_cif(layout)
    assert cif.startswith("(CIF file for")
    assert cif.rstrip().endswith("E")
    boxes = parse_cif_boxes(cif)
    assert len(boxes) >= updown_counter_netlist.cell_count()
    cell_boxes = [box for box in boxes if box[0] == "CPG"]
    assert len(cell_boxes) == updown_counter_netlist.cell_count()
    total_width = sum(box[1] for box in cell_boxes)
    assert total_width == pytest.approx(updown_counter_netlist.total_width_um(), rel=0.01)
