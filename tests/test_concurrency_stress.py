"""Concurrency stress: 16 threaded clients hammering one ICDB server.

Mixed cached / uncached ``request_component`` traffic plus design
transactions from every client, over real TCP connections.  Asserts the
properties the shared-state design guarantees:

* no cross-session instance-name collisions, and every successful
  response's instance is registered exactly once;
* result-cache hit accounting stays consistent under races
  (``hits + misses == lookups``, hits equal cached responses);
* ``Response`` timing metadata and the ``cached`` flag are trustworthy
  under concurrent execution (the satellite fix of this PR: the counters
  move atomically under the cache lock).
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.net import connect, serve

CLIENTS = 16
ROUNDS = 6


@pytest.fixture()
def stress_server(tmp_path):
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "stress"
    )
    server = serve(service=service, port=0)
    yield server
    server.stop()


def test_sixteen_clients_mixed_traffic(stress_server):
    service = stress_server.service
    results = [None] * CLIENTS
    errors = []

    def client_worker(index: int) -> None:
        try:
            client = connect(
                stress_server.host, stress_server.port, client=f"stress-{index}"
            )
            design = f"design_{index}"
            client.start_a_design(design)
            client.start_a_transaction()
            names = []
            records = []  # (cached flag, elapsed_ms) per successful response
            for round_no in range(ROUNDS):
                # Cached traffic: same signature from every client.
                shared = client.execute(
                    ComponentRequest(
                        implementation="register",
                        attributes={"size": 4},
                        detail="summary",
                    )
                )
                assert shared.ok
                names.append(shared.value["instance"])
                records.append((shared.cached, shared.elapsed_ms))
                # A second signature lane, pipelined.
                for response in client.execute_batch(
                    [
                        ComponentRequest(
                            implementation="mux2",
                            attributes={"size": 2 + (index % 3)},
                            detail="summary",
                        )
                    ],
                    repeat=2,
                ):
                    assert response.ok
                    names.append(response.value["instance"])
                    records.append((response.cached, response.elapsed_ms))
                # Uncached traffic on the first round only (it is slow).
                if round_no == 0 and index % 4 == 0:
                    fresh = client.execute(
                        ComponentRequest(
                            implementation="register",
                            attributes={"size": 4},
                            use_cache=False,
                            detail="summary",
                        )
                    )
                    assert fresh.ok and not fresh.cached
                    names.append(fresh.value["instance"])
                    records.append((fresh.cached, fresh.elapsed_ms))
            # Transactions: keep the first instance, drop the rest.
            client.put_in_component_list(names[0])
            removed = client.end_a_transaction()
            assert names[0] not in removed
            assert client.component_list() == [names[0]]
            client.close()
            results[index] = (names, records, removed)
        except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
            errors.append((index, exc))

    threads = [
        threading.Thread(target=client_worker, args=(i,)) for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not errors, f"client failures: {errors!r}"
    assert all(result is not None for result in results)

    all_names = [name for names, _, _ in results for name in names]
    all_records = [record for _, records, _ in results for record in records]

    # --- no cross-session instance-name collisions -------------------------
    duplicates = [name for name, count in Counter(all_names).items() if count > 1]
    assert not duplicates, f"instance names served twice: {duplicates}"

    # --- registry and database agree on the survivors ----------------------
    removed_total = {name for _, _, removed in results for name in removed}
    survivors = set(all_names) - removed_total
    assert survivors == set(service.instances.names())
    instances_table = service.database.table("instances")
    assert {row["name"] for row in instances_table.select()} == survivors

    # --- cache-hit accounting is consistent under races --------------------
    stats = service.cache.stats()
    assert stats["hits"] + stats["misses"] == stats["lookups"]
    assert stats["entries"] <= stats["stores"]
    assert stats["entries"] == stats["stores"] - stats["evictions"]
    cached_responses = sum(1 for cached, _ in all_records if cached)
    assert stats["hits"] == cached_responses
    # Per signature lane at least one generation ran uncached-by-miss; the
    # deliberate use_cache=False traffic never touched the cache.
    use_cache_false = CLIENTS // 4  # one per index % 4 == 0 client
    lookups_expected = len(all_records) - use_cache_false
    assert stats["lookups"] == lookups_expected

    # --- timing metadata survives concurrency ------------------------------
    assert all(elapsed >= 0.0 for _, elapsed in all_records)
    assert any(elapsed > 0.0 for _, elapsed in all_records)

    # --- the same invariants hold THROUGH the metrics export ----------------
    # GetMetrics over the wire must answer the authoritative in-process
    # numbers (the registry pulls the caches' own stats() surfaces at
    # snapshot time), not a parallel count that can drift.  All client
    # traffic is finished, so the export must match stats() exactly.
    observer = connect(stress_server.host, stress_server.port, client="observer")
    try:
        snap = observer.metrics()
    finally:
        observer.close()
    counters = snap["counters"]
    for key in ("hits", "misses", "lookups", "stores", "evictions", "entries"):
        assert counters[f"cache.result.{key}"] == stats[key], key
    assert (
        counters["cache.result.hits"] + counters["cache.result.misses"]
        == counters["cache.result.lookups"]
        == lookups_expected
    )
    assert (
        counters["cache.result.entries"]
        == counters["cache.result.stores"] - counters["cache.result.evictions"]
    )
    gen_stats = service.generation_stats()
    for stage, expected in gen_stats.items():
        for key in ("hits", "misses", "lookups"):
            assert counters[f"gencache.{stage}.{key}"] == expected[key], (stage, key)
        assert (
            counters[f"gencache.{stage}.hits"] + counters[f"gencache.{stage}.misses"]
            == counters[f"gencache.{stage}.lookups"]
        )
    # Every request that reached the service was counted and timed; with
    # all other clients closed (and the snapshot taken before the
    # GetMetrics request itself is counted) the two totals must agree.
    latency = snap["histograms"]["request.latency_ms"]
    assert latency["count"] == counters["requests.total"]
    assert sum(latency["counts"]) == latency["count"]
    assert counters["requests.cached"] == cached_responses
    assert counters.get("requests.errors", 0) == 0
    # The observer's own hello shows up in the session gauges.
    assert counters["net.sessions_created"] == CLIENTS + 1


def test_generation_cache_invariants_under_worker_pool(tmp_path):
    """Cold (use_cache=False) traffic racing through the job worker pool:
    the stage-level generation cache must keep its accounting invariants
    (hits + misses == lookups, entries == stores - evictions per stage),
    serve byte-identical artifacts to every session, and never leak an
    unregistered instance."""
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "genstress",
        job_workers=4,
    )
    sessions = [service.create_session(client=f"gen-{i}") for i in range(8)]
    handles = []
    for index, session in enumerate(sessions):
        for _ in range(3):
            handles.append(
                (
                    index % 3,  # three signature lanes shared across sessions
                    session.submit(
                        ComponentRequest(
                            implementation="alu",
                            attributes={"size": 3 + (index % 3)},
                            use_cache=False,
                            detail="full",
                        )
                    ),
                )
            )
    by_lane = {}
    for lane, handle in handles:
        summary = handle.result(timeout=120)
        assert summary["instance"] in service.instances
        by_lane.setdefault(lane, []).append(summary)
    service.jobs.shutdown()

    # Identical artifacts per signature lane, regardless of which thread
    # generated first and which ones replayed the memo.
    for lane, summaries in by_lane.items():
        reference = summaries[0]
        for other in summaries[1:]:
            for key in ("delay", "area", "shape_function", "cells", "clock_width"):
                assert other[key] == reference[key], (lane, key)

    stats = service.generation_stats()
    for stage, snapshot in stats.items():
        assert snapshot["hits"] + snapshot["misses"] == snapshot["lookups"], stage
        assert snapshot["entries"] == snapshot["stores"] - snapshot["evictions"], stage
    # Three signature lanes -> exactly three flow entries; every request
    # consulted the flow stage exactly once.
    assert stats["flows"]["entries"] == 3
    assert stats["flows"]["lookups"] == len(handles)
    # At worst each lane generated once per concurrent first-arrival, and
    # the remaining requests were memo hits.
    assert stats["flows"]["hits"] >= len(handles) - 3 * 4  # lanes x workers


def test_materialize_races_with_deletion(tmp_path):
    """Concurrent materialization and transaction deletes must not corrupt
    the pending-artifact registry or resurrect deleted instances."""
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "races"
    )
    session = service.create_session()
    template = session.request_component(implementation="register", attributes={"size": 2})

    def churn(index: int) -> None:
        for _ in range(10):
            instance = session.request_component(
                implementation="register", attributes={"size": 2}
            )
            if index % 2:
                service.materialize_artifacts(instance.name)
            service.delete_instance(instance.name)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert len(service.instances) == 1  # only the template survives
    assert not service._pending_artifacts or set(
        service._pending_artifacts
    ) <= {template.name}


# ---------------------------------------------------------------------------
# Jobs under adversity: disconnects and cancellations
# ---------------------------------------------------------------------------


def _assert_store_and_db_consistent(service, store_baseline=()):
    """Registry, database and file store agree; accounting invariants hold.

    ``store_baseline`` names store entries that predate the scenario (the
    knowledge server persists catalog descriptions at startup).
    """
    registered = set(service.instances.names())
    instances_table = service.database.table("instances")
    assert {row["name"] for row in instances_table.select()} == registered
    # Every artifact directory added by the scenario belongs to a
    # registered instance or to a lazily pending one -- never to a deleted
    # or cancelled job.
    pending = set(service._pending_artifacts)
    for name in set(service.store.instances()) - set(store_baseline):
        assert name in registered or name in pending, f"orphan artifacts: {name}"
    # DESIGN_FILES rows only reference registered instances.
    for row in service.database.table("design_files").select():
        assert row["instance"] in registered
    stats = service.cache.stats()
    assert stats["hits"] + stats["misses"] == stats["lookups"]
    assert stats["entries"] == stats["stores"] - stats["evictions"]


def test_disconnect_mid_job_leaves_no_orphans_and_results_survive(tmp_path):
    """A connection killed with a job in flight must neither corrupt the
    store nor lose the job: the session is resumable and the result is
    intact, with all accounting invariants holding."""
    from jobs_testlib import make_slow_service

    from repro.net.client import attach

    service = make_slow_service(tmp_path / "dmj", delay=0.5)
    store_baseline = set(service.store.instances())
    server = serve(service=service, port=0)
    try:
        client = connect(server.host, server.port, client="victim")
        token = client.session_token
        handle = client.submit_component(
            implementation="register", attributes={"size": 6}, use_cache=False
        )
        # Kill the socket while the job is queued or running -- no bye.
        client.transport.close()

        resumed = attach(server.host, server.port, token)
        summary = resumed.job_handle(handle.job_id).result(timeout=60)
        name = summary["instance"]
        assert name in service.instances
        _assert_store_and_db_consistent(service, store_baseline)
        resumed.close()
    finally:
        server.stop()
        service.jobs.shutdown()


def test_cancel_mid_generation_leaves_no_orphans(tmp_path):
    """Cancelling a running generation frees the worker and leaves nothing:
    no registered instance, no database rows, no files, no cache entry."""
    from jobs_testlib import make_slow_service

    service = make_slow_service(tmp_path / "cmg", delay=1.5, job_workers=1)
    session = service.create_session()
    before_cache = service.cache.stats()
    before_names = set(service.instances.names())
    store_baseline = set(service.store.instances())

    handle = session.submit(
        ComponentRequest(
            implementation="alu", attributes={"size": 6}, use_cache=False
        )
    )
    deadline = time.time() + 30
    while handle.status()["state"] == "queued":
        assert time.time() < deadline
        time.sleep(0.005)
    handle.cancel()
    final = handle.wait(60)
    assert final["state"] == "cancelled"
    response = handle.response()
    assert not response.ok and response.error.code == "CANCELLED"

    # No orphan state anywhere: the generation unwound before registration.
    assert set(service.instances.names()) == before_names
    assert service.database.table("instances").select() == []
    assert service.database.table("design_files").select() == []
    assert set(service.store.instances()) == store_baseline
    after_cache = service.cache.stats()
    assert after_cache["stores"] == before_cache["stores"]
    assert after_cache["entries"] == before_cache["entries"]
    _assert_store_and_db_consistent(service, store_baseline)

    # The worker slot is free: the next job completes promptly.
    follow_up = session.submit(
        ComponentRequest(implementation="mux2", attributes={"size": 2})
    )
    assert follow_up.result(timeout=60)["instance"]
    service.jobs.shutdown()
