"""Unit tests for the wire codec: frames, handshake, batch envelopes."""

from __future__ import annotations

import json
import socket
import struct

import pytest

from repro.api import (
    BatchRequest,
    ComponentRequest,
    FunctionQuery,
    Hello,
    InstanceQuery,
    PROTOCOL_VERSION,
    Welcome,
)
from repro.core.icdb import IcdbError
from repro.net import FrameStream, FrameTooLarge, ProtocolError, decode_frame, encode_frame


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


def test_frame_round_trip():
    payload = {"type": "request", "request": {"kind": "function_query"}}
    wire = encode_frame(payload)
    length = struct.unpack(">I", wire[:4])[0]
    assert length == len(wire) - 4
    assert decode_frame(wire[4:]) == payload


def test_encode_rejects_oversized_payload():
    with pytest.raises(FrameTooLarge):
        encode_frame({"blob": "x" * 100}, max_bytes=50)


def test_decode_rejects_bad_json_and_non_objects():
    with pytest.raises(ProtocolError):
        decode_frame(b"{not json!")
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\xfe")


def test_protocol_errors_carry_structured_codes():
    assert ProtocolError("x").code == "PROTOCOL"
    assert FrameTooLarge("x").code == "FRAME_TOO_LARGE"
    assert isinstance(ProtocolError("x"), IcdbError)


# ---------------------------------------------------------------------------
# FrameStream over a socket pair
# ---------------------------------------------------------------------------


@pytest.fixture()
def stream_pair():
    left_sock, right_sock = socket.socketpair()
    left, right = FrameStream(left_sock), FrameStream(right_sock)
    yield left, right
    left.close()
    right.close()


def test_stream_send_and_recv(stream_pair):
    left, right = stream_pair
    left.send({"type": "ping", "n": 1})
    left.send({"type": "ping", "n": 2})
    assert right.recv() == {"type": "ping", "n": 1}
    assert right.recv() == {"type": "ping", "n": 2}


def test_stream_clean_eof_returns_none(stream_pair):
    left, right = stream_pair
    left.close()
    assert right.recv() is None


def test_stream_truncated_header_raises(stream_pair):
    left, right = stream_pair
    left.socket.sendall(b"\x00\x00")  # half a header
    left.close()
    with pytest.raises(ProtocolError):
        right.recv()


def test_stream_truncated_payload_raises(stream_pair):
    left, right = stream_pair
    left.socket.sendall(struct.pack(">I", 100) + b"only ten b")
    left.close()
    with pytest.raises(ProtocolError):
        right.recv()


def test_stream_oversized_announcement_raises():
    left_sock, right_sock = socket.socketpair()
    left = FrameStream(left_sock)
    right = FrameStream(right_sock, max_bytes=64)
    try:
        left.socket.sendall(struct.pack(">I", 1 << 20))
        with pytest.raises(FrameTooLarge):
            right.recv()
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# Handshake frames
# ---------------------------------------------------------------------------


def test_hello_and_welcome_round_trip():
    hello = Hello(client="hls-tool")
    assert hello.protocol == PROTOCOL_VERSION
    assert Hello.from_dict(json.loads(json.dumps(hello.to_dict()))) == hello

    welcome = Welcome(session_id="session-9", server="repro-icdb")
    assert Welcome.from_dict(json.loads(json.dumps(welcome.to_dict()))) == welcome


def test_hello_rejects_non_integer_protocol():
    with pytest.raises(IcdbError):
        Hello.from_dict({"protocol": "banana"})


# ---------------------------------------------------------------------------
# Batch envelope
# ---------------------------------------------------------------------------


def test_batch_round_trip_and_flatten():
    batch = BatchRequest(
        requests=(
            FunctionQuery(functions=("ADD",)),
            InstanceQuery(name="alu_1"),
        ),
        repeat=3,
    )
    again = BatchRequest.from_dict(json.loads(json.dumps(batch.to_dict())))
    assert again == batch
    flattened = batch.flattened()
    assert len(flattened) == 6
    assert flattened[0] == flattened[2] == flattened[4]


def test_batch_rejects_nesting_and_bad_repeat():
    inner = BatchRequest(requests=(FunctionQuery(functions=("ADD",)),))
    with pytest.raises(IcdbError):
        BatchRequest(requests=(inner,))
    with pytest.raises(IcdbError):
        BatchRequest(requests=(), repeat=0)
    with pytest.raises(IcdbError):
        BatchRequest.from_dict({"requests": [], "repeat": "many"})
    with pytest.raises(IcdbError):
        BatchRequest.from_dict({"requests": "not-a-list"})


def test_batch_caps_total_request_count():
    """One small frame must not be able to queue unbounded lock-held work."""
    member = FunctionQuery(functions=("ADD",))
    with pytest.raises(IcdbError, match="limit"):
        BatchRequest(requests=(member,), repeat=BatchRequest.MAX_TOTAL_REQUESTS + 1)
    with pytest.raises(IcdbError, match="limit"):
        BatchRequest.from_dict(
            {"requests": [member.to_dict()] * 2,
             "repeat": BatchRequest.MAX_TOTAL_REQUESTS}
        )
    # At the cap it is fine.
    batch = BatchRequest(requests=(member,), repeat=BatchRequest.MAX_TOTAL_REQUESTS)
    assert len(batch.flattened()) == BatchRequest.MAX_TOTAL_REQUESTS


def test_component_request_detail_round_trips():
    request = ComponentRequest(
        implementation="alu", attributes={"size": 8}, detail="summary"
    )
    from repro.api import request_from_dict

    assert request_from_dict(json.loads(json.dumps(request.to_dict()))) == request
