"""Tests for the typed request / response wire format of :mod:`repro.api`."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CheckEquivalence,
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FleetGenerate,
    FunctionQuery,
    GetMetrics,
    IDEMPOTENT_KINDS,
    IcdbErrorInfo,
    InstanceQuery,
    LayoutRequest,
    MUTATING_KINDS,
    Ping,
    REQUEST_TYPES,
    Response,
    Simulate,
    WarmCache,
    error_from_exception,
    request_from_dict,
)
from repro.api.errors import (
    E_BAD_REQUEST,
    E_CONFLICT,
    E_GENERATION_FAILED,
    E_INTERNAL,
    E_INVALID,
    E_NOT_FOUND,
)
from repro.components.catalog import CatalogError
from repro.constraints import Constraints, PortPosition
from repro.core.generation import GenerationError
from repro.core.icdb import IcdbError
from repro.core.instances import InstanceError
from repro.netlist.structural import StructuralNetlist


def roundtrip(request):
    """to_dict -> JSON -> from_dict, through the registry entry point."""
    wire = json.dumps(request.to_dict())
    return request_from_dict(json.loads(wire))


SAMPLE_REQUESTS = [
    ComponentQuery(component="counter", functions=("INC",)),
    ComponentQuery(implementation="alu"),
    ComponentQuery(attributes={"size": 4}),
    FunctionQuery(functions=("ADD", "SUB"), want="component"),
    FunctionQuery(functions=("MUL",)),
    InstanceQuery(name="counter_1"),
    InstanceQuery(name="counter_1", fields=("connect", "delay")),
    ComponentRequest(component_name="counter", functions=("INC",), attributes={"size": 5}),
    ComponentRequest(implementation="register", parameters={"size": 4}, use_cache=False),
    ComponentRequest(iif="NAME: T;\n{ O = A; }", instance_name="t1", target="layout"),
    LayoutRequest(name="counter_1", alternative=2),
    LayoutRequest(
        name="counter_1",
        strips=3,
        port_positions=(PortPosition(port="CLK", side="left", order=1.0),),
    ),
    DesignOp(op="start_design", design="proj"),
    DesignOp(op="put_in_list", design="proj", instance="counter_1"),
    DesignOp(op="end_transaction"),
    Simulate(name="adder_1", vectors=({"I0[0]": 1, "Cin": 0}, {"I0[0]": 0})),
    Simulate(name="counter_1", vectors=({"ENA": 1},), engine="flat", clock="CLK"),
    CheckEquivalence(name="counter_1"),
    CheckEquivalence(
        name="counter_1",
        reference="golden",
        mode="sequential",
        clock="CLK",
        cycles=8,
        lanes=16,
        seed=7,
    ),
    GetMetrics(),
    GetMetrics(prefixes=("cache.", "jobs"), include_histograms=False),
    Ping(),
    Ping(echo="marco"),
    WarmCache(),
    WarmCache(
        entries=(
            {"implementation": "alu", "parameters": {"size": 8}},
            {"component": "counter", "attributes": {"size": 4}, "name": "c1"},
        ),
        fanout=False,
    ),
    FleetGenerate(implementation="alu", parameters={"size": 8}, name="alu_1"),
    FleetGenerate(
        implementation="register",
        constraints=Constraints(clock_width=40.0),
    ),
]


@pytest.mark.parametrize(
    "request_obj", SAMPLE_REQUESTS, ids=lambda r: f"{r.kind}-{id(r) % 1000}"
)
def test_every_request_survives_json_round_trip(request_obj):
    assert roundtrip(request_obj) == request_obj


def test_registry_covers_every_cql_operation():
    assert set(REQUEST_TYPES) == {
        "component_query",
        "function_query",
        "instance_query",
        "request_component",
        "plan_query",
        "request_layout",
        "design_op",
        "batch",
        "submit_job",
        "job_status",
        "cancel_job",
        "simulate",
        "check_equivalence",
        "get_metrics",
        "ping",
        "warm_cache",
        "fleet_generate",
    }


def test_every_kind_is_classified_for_retry_safety():
    """Every wire kind is exactly one of idempotent / mutating.

    This is the audit the reconnecting client's blind-retry rule rests
    on: a kind missing from both tuples would silently get the cautious
    treatment and mask the omission; a kind in both would be ambiguous.
    Adding a request type without classifying it fails here by name.
    """
    idempotent = set(IDEMPOTENT_KINDS)
    mutating = set(MUTATING_KINDS)
    assert not idempotent & mutating, (
        f"kinds classified both ways: {sorted(idempotent & mutating)}"
    )
    unclassified = set(REQUEST_TYPES) - idempotent - mutating
    assert not unclassified, f"unclassified request kinds: {sorted(unclassified)}"
    unknown = (idempotent | mutating) - set(REQUEST_TYPES)
    assert not unknown, f"classified but unregistered kinds: {sorted(unknown)}"


def test_request_from_dict_unknown_kind():
    with pytest.raises(IcdbError):
        request_from_dict({"kind": "reboot_server"})


def test_design_op_validates_operation():
    with pytest.raises(IcdbError):
        DesignOp(op="drop_all_tables")


def test_component_request_round_trips_constraints_and_structure():
    structure = StructuralNetlist("cluster", inputs=["X"], outputs=["Y"])
    structure.add("a1", "adder_1", {"I0": "X", "O0": "Y"})
    constraints = Constraints(
        clock_width=30.0,
        comb_delay={"O[3]": 40.0},
        output_loads={"O[3]": 10.0},
        strategy="fastest",
        port_positions=(PortPosition(port="CLK", side="left", order=1.0),),
    )
    request = ComponentRequest(structure=structure, constraints=constraints)
    rebuilt = roundtrip(request)
    assert rebuilt.constraints == constraints
    assert rebuilt.structure.name == "cluster"
    assert rebuilt.structure.refs[0].port_map == {"I0": "X", "O0": "Y"}
    assert rebuilt == request


def test_constraints_dict_round_trip_defaults():
    constraints = Constraints()
    assert Constraints.from_dict(constraints.to_dict()) == constraints


def test_response_round_trip_success_and_error():
    ok = Response(
        ok=True,
        value={"instance": "counter_1"},
        elapsed_ms=1.25,
        cached=True,
        session_id="session-1",
        request_kind="request_component",
    )
    assert Response.from_dict(json.loads(json.dumps(ok.to_dict()))) == ok

    failed = Response(
        ok=False,
        error=IcdbErrorInfo(code=E_NOT_FOUND, message="nope", exception_type="InstanceError"),
        request_kind="instance_query",
    )
    rebuilt = Response.from_dict(json.loads(json.dumps(failed.to_dict())))
    assert rebuilt == failed
    assert rebuilt.error.code == E_NOT_FOUND


def test_response_unwrap_returns_value_or_raises():
    assert Response(ok=True, value=42).unwrap() == 42
    original = InstanceError("gone")
    with pytest.raises(InstanceError):
        Response(ok=False, exception=original, error=error_from_exception(original)).unwrap()
    # Without the in-process exception (a deserialized remote envelope), the
    # structured error is re-raised as a coded IcdbError.
    remote = Response.from_dict(
        {"ok": False, "error": {"code": E_CONFLICT, "message": "design exists"}}
    )
    with pytest.raises(IcdbError) as excinfo:
        remote.unwrap()
    assert excinfo.value.code == E_CONFLICT


def test_error_mapping_codes():
    assert error_from_exception(IcdbError("x")).code == E_BAD_REQUEST
    assert error_from_exception(IcdbError("x", code=E_CONFLICT)).code == E_CONFLICT
    assert error_from_exception(InstanceError("missing")).code == E_NOT_FOUND
    assert error_from_exception(CatalogError("missing")).code == E_NOT_FOUND
    assert error_from_exception(GenerationError("boom")).code == E_GENERATION_FAILED
    assert error_from_exception(ValueError("bad")).code == E_BAD_REQUEST
    info = error_from_exception(RuntimeError("surprise"))
    assert info.code == E_INTERNAL
    assert info.exception_type == "RuntimeError"
    # Simulator failures are invalid operations on a real instance, not
    # malformed requests; VerificationError is a ValueError, so bad
    # verification setups map to E_BAD_REQUEST automatically.
    from repro.sim import GateSimulationError, SimulationError, VerificationError

    assert error_from_exception(SimulationError("no value")).code == E_INVALID
    assert error_from_exception(GateSimulationError("no net")).code == E_INVALID
    assert error_from_exception(VerificationError("bad mode")).code == E_BAD_REQUEST


def test_simulation_messages_validate_on_construction():
    with pytest.raises(IcdbError) as excinfo:
        Simulate(name="x", engine="spice")
    assert excinfo.value.code == E_BAD_REQUEST
    with pytest.raises(IcdbError) as excinfo:
        CheckEquivalence(name="x", mode="formal")
    assert excinfo.value.code == E_BAD_REQUEST
    # Vector values normalize to 0/1 ints on construction.
    request = Simulate(name="x", vectors=({"A": 3, "B": 0},))
    assert request.vectors == ({"A": 1, "B": 0},)
    with pytest.raises(IcdbError):
        Simulate.from_dict({"name": "x", "vectors": "oops"})
    with pytest.raises(IcdbError):
        CheckEquivalence.from_dict({"name": "x", "samples": "many"})
