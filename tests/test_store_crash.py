"""Crash recovery through the real server: SIGKILL, restart, compare.

Each test boots ``python -m repro.net.server --data-dir ...`` as a
subprocess, drives it over the wire, kills it without any shutdown
courtesy (SIGKILL, exactly what a power cut looks like to the process),
boots a second server on the same data directory and asserts the
recovered relational state is byte-identical to the golden ``db_dump``
captured before the kill.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.net.client import connect

_BANNER = re.compile(r"icdb server listening on ([\d.]+):(\d+)")
_RECOVERY = re.compile(
    r"icdb store recovered: snapshot seq (\d+), (\d+) events replayed, "
    r"last seq (\d+)"
)


class ServerProc:
    """One ``repro.net.server`` subprocess bound to a data directory."""

    def __init__(self, data_dir, *extra_args):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.net.server",
                "--port", "0",
                "--data-dir", str(data_dir),
                "--journal-fsync", "always",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.host = self.port = None
        self.recovery = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise AssertionError("server died during startup")
            match = _RECOVERY.search(line)
            if match:
                self.recovery = tuple(int(g) for g in match.groups())
            match = _BANNER.search(line)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                return
        raise AssertionError("no listening banner within 30s")

    def connect(self, tag="crash"):
        return connect(self.host, self.port, client=tag)

    def kill(self):
        """SIGKILL: no atexit, no finally blocks, no flush."""
        self.proc.kill()
        self.proc.wait(timeout=10)

    def terminate(self):
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=10)


@pytest.fixture()
def data_dir(tmp_path):
    return tmp_path / "store"


def canonical(dump) -> str:
    return json.dumps(dump, sort_keys=True)


def test_sigkill_then_restart_is_byte_identical(data_dir):
    first = ServerProc(data_dir, "--snapshot-interval", "0")
    assert first.recovery == (0, 0, 0)  # cold start: empty data dir
    client = first.connect()
    registered = client.request_component(
        implementation="register", attributes={"size": 4}
    )
    counter = client.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 3}
    )
    golden = canonical(client.meta("db_dump"))
    instance_names = {registered.name, counter.name}
    client.close()
    first.kill()

    second = ServerProc(data_dir, "--snapshot-interval", "0")
    snapshot_seq, replayed, last_seq = second.recovery
    assert replayed > 0 and last_seq == replayed and snapshot_seq == 0
    client2 = second.connect("crash-2")
    assert canonical(client2.meta("db_dump")) == golden

    # The recovered rows answer queries: instances are still visible
    # through the durable relational surface.
    rows = client2.meta("db_rows", table="instances")
    assert instance_names <= {row["name"] for row in rows}

    # Recovery is observable in the metrics the admin console shows.
    counters = client2.metrics()["counters"]
    assert counters["store.recovery.events_replayed"] == replayed
    assert counters["store.last_seq"] >= last_seq

    # And the server is fully alive: a fresh request gets a fresh name
    # (no collision with rows that outlived their in-memory instances).
    fresh = client2.request_component(
        implementation="register", attributes={"size": 8}
    )
    assert fresh.name not in instance_names
    client2.close()
    second.terminate()


def test_double_recovery_is_idempotent(data_dir):
    first = ServerProc(data_dir, "--snapshot-interval", "0")
    client = first.connect()
    client.request_component(implementation="register", attributes={"size": 2})
    golden = canonical(client.meta("db_dump"))
    client.close()
    first.kill()

    # Two successive recover-only boots (no new writes): same state, and
    # the second replays exactly what the first did.
    replays = []
    for tag in ("a", "b"):
        server = ServerProc(data_dir, "--snapshot-interval", "0")
        replays.append(server.recovery[1])
        client = server.connect(f"idem-{tag}")
        assert canonical(client.meta("db_dump")) == golden
        client.close()
        server.kill()
    assert replays[0] == replays[1]


def test_snapshot_bounds_replay_after_crash(data_dir):
    # An aggressive snapshot interval: the background snapshotter runs
    # between the writes, so the next boot replays only a short tail.
    first = ServerProc(data_dir, "--snapshot-interval", "0.2")
    client = first.connect()
    client.request_component(implementation="register", attributes={"size": 4})
    time.sleep(1.0)  # let at least one snapshot land
    client.request_component(implementation="register", attributes={"size": 5})
    golden = canonical(client.meta("db_dump"))
    total_seq = client.meta("store_stats")["last_seq"]
    client.close()
    first.kill()

    second = ServerProc(data_dir, "--snapshot-interval", "0")
    snapshot_seq, replayed, last_seq = second.recovery
    assert snapshot_seq > 0  # the background snapshot was picked up
    assert last_seq == total_seq
    assert replayed == last_seq - snapshot_seq  # tail only
    client2 = second.connect("snap")
    assert canonical(client2.meta("db_dump")) == golden
    client2.close()
    second.terminate()


def test_sixteen_concurrent_clients_survive_sigkill(data_dir):
    """16 client threads write through the wire; SIGKILL; recover; compare."""
    first = ServerProc(data_dir, "--snapshot-interval", "0")
    results = [None] * 16

    def hammer(slot: int) -> None:
        client = first.connect(f"w{slot}")
        try:
            instance = client.request_component(
                implementation="register",
                attributes={"size": 2 + slot % 6},
            )
            results[slot] = instance.name
        finally:
            client.close()

    threads = [
        threading.Thread(target=hammer, args=(slot,)) for slot in range(16)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    names = [name for name in results if name]
    assert len(names) == 16 and len(set(names)) == 16

    observer = first.connect("observer")
    golden = canonical(observer.meta("db_dump"))
    golden_rows = {
        row["name"] for row in observer.meta("db_rows", table="instances")
    }
    assert set(names) <= golden_rows
    observer.close()
    first.kill()

    second = ServerProc(data_dir, "--snapshot-interval", "0")
    client2 = second.connect("after")
    assert canonical(client2.meta("db_dump")) == golden
    recovered_rows = {
        row["name"] for row in client2.meta("db_rows", table="instances")
    }
    assert recovered_rows == golden_rows
    client2.close()
    second.terminate()
