"""Tests for :mod:`repro.fleet`: bundles, dispatch, warming, survival.

Most tests attach the dispatcher to workers served *in-thread* (a fleet
worker is just a stateless :class:`ComponentService` behind the normal
TCP server), so the scheduling and caching behaviour is exercised over
real sockets without subprocess spawn cost.  One test spawns real
``python -m repro.fleet.worker`` processes to cover the banner handshake
and process reaping; the SIGKILL-mid-generation story lives in
``test_fleet_chaos.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ComponentRequest, ComponentService, FleetGenerate, WarmCache
from repro.components import standard_catalog
from repro.constraints import Constraints
from repro.fleet import FleetDispatcher, compute_bundle, install_bundle
from repro.net.server import serve


def _service(tmp_path, tag="store", **kwargs):
    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag, **kwargs
    )


def _worker_server():
    """An in-thread stateless worker (what repro.fleet.worker serves)."""
    return serve(service=ComponentService(catalog=standard_catalog(fresh=True)))


@pytest.fixture()
def fleet_rig(tmp_path):
    """A service + dispatcher attached to two in-thread workers."""
    service = _service(tmp_path)
    workers = [_worker_server(), _worker_server()]
    fleet = FleetDispatcher(service, heartbeat_interval=30.0)
    for worker in workers:
        fleet.connect_worker(worker.host, worker.port)
    service.attach_fleet(fleet)
    yield service, fleet, workers
    fleet.close()
    for worker in workers:
        worker.stop()
    service.jobs.shutdown()


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------


def test_bundle_roundtrip_is_byte_identical(tmp_path):
    """A bundle computed elsewhere replays locally as a warm, identical hit."""
    producer = ComponentService(catalog=standard_catalog(fresh=True))
    consumer = _service(tmp_path, "consumer")
    reference = _service(tmp_path, "reference")

    implementation = producer.catalog.get("alu")
    constraints = Constraints(clock_width=200.0)
    bundle = compute_bundle(
        producer.generator, implementation, {"size": 6}, constraints, name="alu_x"
    )
    assert bundle["implementation"] == "alu"
    assert bundle["entries"] >= 2  # synth + flows at minimum
    assert isinstance(bundle["blob"], str)

    installed = install_bundle(consumer.generator, bundle)
    assert installed >= 2

    warm = consumer.create_session().request_component(
        implementation="alu",
        parameters={"size": 6},
        constraints=constraints,
        instance_name="alu_x",
    )
    cold = reference.create_session().request_component(
        implementation="alu",
        parameters={"size": 6},
        constraints=constraints,
        instance_name="alu_x",
    )
    # The warmed consumer never ran a flow of its own.
    flows = consumer.generation_stats()["flows"]
    assert flows["misses"] == 0 and flows["hits"] >= 1
    assert warm.summary() == cold.summary()
    assert warm.vhdl_netlist() == cold.vhdl_netlist()
    assert warm.render_delay() == cold.render_delay()


def test_install_bundle_is_first_writer_wins(tmp_path):
    producer = ComponentService(catalog=standard_catalog(fresh=True))
    consumer = _service(tmp_path, "consumer")
    implementation = producer.catalog.get("mux4")
    bundle = compute_bundle(producer.generator, implementation, {"size": 4}, None)
    assert install_bundle(consumer.generator, bundle) >= 1
    # The same entries again: every key is already present, nothing stored.
    assert install_bundle(consumer.generator, bundle) == 0


def test_fleet_generate_request_answers_installable_bundle(tmp_path):
    """The wire kind a dispatcher sends a worker is a plain request."""
    worker = ComponentService(catalog=standard_catalog(fresh=True))
    response = worker.execute(
        FleetGenerate(implementation="alu", parameters={"size": 5}, name="alu_w")
    )
    assert response.ok
    consumer = _service(tmp_path, "consumer")
    assert install_bundle(consumer.generator, response.value) >= 2
    instance = consumer.create_session().request_component(
        implementation="alu", parameters={"size": 5}, instance_name="alu_w"
    )
    assert instance.name == "alu_w"
    assert consumer.generation_stats()["flows"]["misses"] == 0


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def test_prewarm_without_workers_falls_back(tmp_path):
    service = _service(tmp_path)
    fleet = FleetDispatcher(service)
    service.attach_fleet(fleet)
    try:
        session = service.create_session()
        instance = session.request_component(
            implementation="alu", parameters={"size": 4}, instance_name="local"
        )
        assert instance.name == "local"
        stats = fleet.stats()
        assert stats["workers_live"] == 0
        assert stats["fallbacks"] >= 1
        assert stats["dispatched"] == 0
    finally:
        fleet.close()
        service.jobs.shutdown()


def test_request_component_dispatches_and_replays_warm(fleet_rig, tmp_path):
    service, fleet, _ = fleet_rig
    session = service.create_session()
    instance = session.request_component(
        implementation="alu", parameters={"size": 7}, instance_name="fleet_a"
    )
    stats = fleet.stats()
    assert stats["dispatched"] >= 1
    assert stats["completed"] >= 1
    assert stats["installs"] >= 1
    assert stats["fallbacks"] == 0
    # The server replayed the generation as a warm hit: zero flow misses.
    flows = service.generation_stats()["flows"]
    assert flows["misses"] == 0 and flows["hits"] >= 1
    # Byte-identity against a plain single-process service.
    reference = _service(tmp_path, "ref").create_session().request_component(
        implementation="alu", parameters={"size": 7}, instance_name="fleet_a"
    )
    assert instance.summary() == reference.summary()
    assert instance.vhdl_netlist() == reference.vhdl_netlist()
    # Registered exactly once, on the server.
    assert session.instances.names() == ["fleet_a"]


def test_prewarm_skips_already_warm_flows(fleet_rig):
    service, fleet, _ = fleet_rig
    session = service.create_session()
    session.request_component(
        implementation="mux2", parameters={"size": 2}, instance_name="m1"
    )
    dispatched = fleet.stats()["dispatched"]
    # Identical signature under a new name: the memo is warm, the
    # dispatcher must not ship it again.
    session.request_component(
        implementation="mux2",
        parameters={"size": 2},
        instance_name="m2",
        use_cache=False,
    )
    assert fleet.stats()["dispatched"] == dispatched


def test_concurrent_identical_prewarms_coalesce(fleet_rig):
    service, fleet, _ = fleet_rig
    implementation = service.catalog.get("alu")
    constraints = Constraints(clock_width=200.0)
    results = []

    def warm():
        results.append(
            fleet.prewarm(implementation, {"size": 64}, constraints, name="big")
        )

    first = threading.Thread(target=warm)
    second = threading.Thread(target=warm)
    first.start()
    time.sleep(0.05)  # let the owner win the race and go inflight
    second.start()
    first.join(60)
    second.join(60)
    assert results == [True, True]
    stats = fleet.stats()
    assert stats["coalesced"] == 1
    # One elaboration shipped, not two.
    assert stats["dispatched"] == 1


def test_worker_death_requeues_to_survivor(tmp_path):
    service = _service(tmp_path)
    # Long heartbeat: death must be discovered by the failed dispatch
    # itself, which is the requeue path under test.
    fleet = FleetDispatcher(service, heartbeat_interval=30.0)
    try:
        spawned = fleet.spawn_workers(2)
        assert len(fleet.live_workers()) == 2
        # Kill the first worker's process; ties in the least-loaded pick
        # break by attach order, so the next dispatch aims at the corpse.
        spawned[0].process.kill()
        spawned[0].process.wait()
        implementation = service.catalog.get("alu")
        warmed = fleet.prewarm(
            implementation, {"size": 9}, Constraints(clock_width=200.0), name="x"
        )
        assert warmed is True
        stats = fleet.stats()
        assert stats["workers_dead"] == 1
        assert stats["workers_live"] == 1
        assert stats["requeues"] >= 1
        assert stats["completed"] >= 1
    finally:
        fleet.close()
        service.jobs.shutdown()


def test_close_fails_pending_work_and_reaps(tmp_path):
    service = _service(tmp_path)
    fleet = FleetDispatcher(service)
    spawned = fleet.spawn_workers(1)
    fleet.close()
    assert spawned[0].process.poll() is not None  # reaped
    # Closed dispatcher degrades to local generation, never raises.
    assert (
        fleet.prewarm(
            service.catalog.get("mux2"), {"size": 2}, Constraints(), name="m"
        )
        is False
    )
    service.jobs.shutdown()


# ---------------------------------------------------------------------------
# Warming
# ---------------------------------------------------------------------------


def test_warm_cache_in_process(tmp_path):
    """warm_cache with no fleet warms the local stage memos."""
    service = _service(tmp_path)
    response = service.execute(
        WarmCache(
            entries=(
                {"implementation": "alu", "parameters": {"size": 6}},
                {"component": "counter", "attributes": {"size": 4}},
            )
        )
    )
    assert response.ok
    assert response.value["errors"] == []
    assert response.value["warmed"] >= 2
    assert response.value["workers_warmed"] == 0
    before = service.generation_stats()["flows"]
    service.create_session().request_component(
        implementation="alu", parameters={"size": 6}, instance_name="warm_1"
    )
    after = service.generation_stats()["flows"]
    assert after["misses"] == before["misses"]  # pure warm replay
    service.jobs.shutdown()


def test_warm_cache_reports_bad_entries(tmp_path):
    service = _service(tmp_path)
    response = service.execute(
        WarmCache(
            entries=(
                {"implementation": "no_such_thing"},
                {"parameters": {"size": 2}},  # neither implementation nor component
            )
        )
    )
    assert response.ok
    assert response.value["warmed"] == 0
    assert len(response.value["errors"]) == 2
    service.jobs.shutdown()


def test_warm_cache_fans_out_to_every_worker(fleet_rig):
    service, fleet, workers = fleet_rig
    response = service.execute(
        WarmCache(entries=({"implementation": "alu", "parameters": {"size": 6}},))
    )
    assert response.ok
    assert response.value["warmed"] == 1
    assert response.value["workers_warmed"] == 2
    assert fleet.stats()["warm_fanouts"] == 1
    # Each worker really warmed its own memo: its flow stage holds an entry.
    for worker in workers:
        stats = worker.service.generation_stats()["flows"]
        assert stats["entries"] >= 1


def test_plan_fanout_prewarms_through_fleet(fleet_rig):
    service, fleet, _ = fleet_rig
    requests = [
        ComponentRequest(
            implementation="alu",
            parameters={"size": size},
            instance_name=f"sweep_{size}",
        )
        for size in (11, 12, 13)
    ]
    warmed = fleet.prewarm_requests(requests)
    assert warmed == 3
    stats = fleet.stats()
    assert stats["dispatched"] >= 3
    assert stats["installs"] >= 3
    # The replay is now pure warm hits, one per point.
    session = service.create_session()
    before = service.generation_stats()["flows"]["misses"]
    for request in requests:
        assert session.execute(request).ok
    assert service.generation_stats()["flows"]["misses"] == before
