"""End-to-end transport tests: a real ICDBServer on an ephemeral port.

Covers the paper's counter / datapath flows driven through
:class:`~repro.net.client.RemoteClient` (asserting byte-identical results
against an in-process :class:`~repro.api.service.Session`), plus the
unhappy paths of the wire: malformed frames, oversized frames,
mid-request disconnects, handshake violations and graceful shutdown.
"""

from __future__ import annotations

import re
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro.api import (
    ComponentRequest,
    ComponentService,
    FunctionQuery,
    InstanceQuery,
    PROTOCOL_VERSION,
)
from repro.components import standard_catalog
from repro.constraints import Constraints
from repro.core.icdb import IcdbError
from repro.cql import InteractiveSession
from repro.net import (
    FrameStream,
    ICDBServer,
    RemoteClient,
    SocketTransport,
    connect,
    serve,
)
from repro.synthesis import allocate, build_datapath, expression_dfg, schedule_asap


def _fresh_service(tmp_path, tag: str) -> ComponentService:
    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / tag
    )


@pytest.fixture()
def server(tmp_path):
    server = serve(service=_fresh_service(tmp_path, "server"), port=0)
    yield server
    server.stop()


@pytest.fixture()
def client(server):
    client = connect(server.host, server.port, client="e2e")
    yield client
    client.close()


# ---------------------------------------------------------------------------
# The paper's counter flow, byte-identical remote vs local
# ---------------------------------------------------------------------------


COUNTER_KWARGS = dict(
    component_name="counter",
    functions=["INC"],
    attributes={"size": 5},
    constraints=Constraints(clock_width=30.0, setup_time=30.0),
)


def test_counter_flow_matches_in_process_session(tmp_path, server, client):
    remote = client.request_component(**COUNTER_KWARGS)
    local_session = _fresh_service(tmp_path, "local").create_session()
    local = local_session.request_component(**COUNTER_KWARGS)

    # Fresh service on both sides -> identical deterministic instance names,
    # so every rendered report must match byte for byte.
    assert remote.name == local.name
    assert remote.render_delay() == local.render_delay()
    assert remote.render_shape() == local.render_shape()
    assert remote.render_area_records() == local.render_area_records()
    assert remote.vhdl_netlist() == local.vhdl_netlist()
    assert remote.vhdl_head() == local.vhdl_head()
    assert remote.clock_width == local.clock_width
    assert remote.area == local.area
    assert remote.cells == local.netlist.cell_count()
    assert [tuple(r) for r in [(a.strips, a.width, a.height) for a in remote.shape]] == [
        (a.strips, a.width, a.height) for a in local.shape
    ]
    assert remote.worst_delay() == local.worst_delay()

    # The full instance query agrees field by field (paths differ by root).
    remote_info = client.instance_query(remote.name)
    local_info = local_session.instance_query(local.name)
    remote_info.pop("files")
    local_info.pop("files")
    assert remote_info == local_info

    # Layout generation returns the same CIF text.
    remote_layout = client.request_layout(remote.name, alternative=1)
    local_layout = local_session.request_layout(local.name, alternative=1)
    from repro.netlist.cif import layout_to_cif

    assert remote_layout["cif_layout"] == layout_to_cif(local_layout)
    assert remote_layout["area"] == pytest.approx(local_layout.area)


def test_datapath_flow_matches_in_process_session(tmp_path, server, client):
    """The Figure 1 synthesis flow (allocate + build datapath) bound to a
    network server produces the identical microarchitecture."""

    def flow(icdb):
        dfg = expression_dfg()
        delays = {"ADD": 40.0, "SUB": 40.0, "MUL": 40.0, "GT": 30.0}
        schedule = schedule_asap(dfg, 60.0, delays)
        allocation = allocate(icdb, schedule, width=4)
        return build_datapath(icdb, schedule, allocation, width=4)

    remote_dp = flow(client)
    local_dp = flow(_fresh_service(tmp_path, "local").create_session())

    assert remote_dp.structure.to_vhdl() == local_dp.structure.to_vhdl()
    assert [u.name for u in remote_dp.functional_units] == [
        u.name for u in local_dp.functional_units
    ]
    assert [r.name for r in remote_dp.registers] == [
        r.name for r in local_dp.registers
    ]
    assert remote_dp.control.name == local_dp.control.name
    assert remote_dp.total_area() == pytest.approx(local_dp.total_area())


def test_design_transactions_over_the_wire(client):
    client.start_a_design("proj")
    client.start_a_transaction()
    keeper = client.request_component(implementation="register", attributes={"size": 2})
    doomed = client.request_component(implementation="register", attributes={"size": 3})
    client.put_in_component_list(keeper.name)
    removed = client.end_a_transaction()
    assert doomed.name in removed
    assert client.component_list() == [keeper.name]
    assert keeper.name in client.instances
    assert doomed.name not in client.instances
    removed = client.end_a_design()
    assert keeper.name in removed
    assert client.current_design == ""


def test_batch_over_tcp_mixed_results(client):
    responses = client.execute_batch(
        [
            ComponentRequest(implementation="register", attributes={"size": 2},
                             detail="summary"),
            InstanceQuery(name="no_such_instance"),
            FunctionQuery(functions=("ADD", "SUB")),
        ],
        repeat=2,
    )
    assert len(responses) == 6
    assert responses[0].ok and not responses[0].cached
    assert responses[3].ok and responses[3].cached  # second lap hits the cache
    assert not responses[1].ok and responses[1].error.code == "NOT_FOUND"
    assert responses[2].ok and "alu" in responses[2].value
    # Timing metadata survives the wire for every member response.
    assert all(r.elapsed_ms >= 0.0 for r in responses)


def test_remote_summary_detail_is_projected(client):
    instance = client.request_component(
        implementation="register", attributes={"size": 2}, detail="summary"
    )
    assert instance.cells > 0
    with pytest.raises(IcdbError, match="detail='summary'"):
        instance.render_delay()
    with pytest.raises(IcdbError):
        instance.shape


def test_cql_interactive_session_over_the_wire(client):
    interactive = InteractiveSession(server=client)
    out = interactive.run_command(
        "command: request_component; component_name: counter;"
        " function: (INC); size: 4; instance: ?s"
    )
    assert "instance: counter_" in out
    out = interactive.run_command(
        "command: function_query; function: (ADD); implementation: ?s[]"
    )
    assert "alu" in out


def test_meta_surface_and_ping(client):
    assert client.ping() < 1000.0
    name = client.instances.new_name("widget")
    assert name.startswith("widget_")
    assert len(client.instances) == 0  # naming does not register anything
    instance = client.request_component(implementation="register", attributes={"size": 2})
    assert instance.name in client.instances
    assert instance.name in client.instances.names()
    assert "generated instances" in client.summary()
    stats = client.meta("cache_stats")
    assert set(stats) >= {"entries", "hits", "misses", "lookups"}
    with pytest.raises(IcdbError):
        client.meta("no_such_op")


def test_lazy_artifacts_materialize_through_instance_query(server, client):
    first = client.request_component(implementation="register", attributes={"size": 2})
    clone = client.request_component(implementation="register", attributes={"size": 2})
    assert clone.cached
    from pathlib import Path

    assert not Path(clone.files["vhdl"]).exists()
    info = client.instance_query(clone.name, fields=("files",))
    assert Path(info["files"]["vhdl"]).exists()
    assert f"entity {clone.name} is" in Path(info["files"]["vhdl"]).read_text()


# ---------------------------------------------------------------------------
# Unhappy paths: malformed frames, oversized frames, disconnects
# ---------------------------------------------------------------------------


def _raw_stream(server) -> FrameStream:
    return FrameStream(socket.create_connection((server.host, server.port)))


def test_malformed_frame_answers_error_and_closes(server):
    stream = _raw_stream(server)
    stream.socket.sendall(struct.pack(">I", 10) + b"not json!!")
    reply = stream.recv()
    assert reply["type"] == "error"
    assert reply["error"]["code"] == "PROTOCOL"
    assert stream.recv() is None  # server closed the connection
    stream.close()
    # The server survives and serves fresh connections.
    probe = connect(server.host, server.port)
    assert probe.ping() >= 0.0
    probe.close()


def test_oversized_frame_answers_error_and_closes(tmp_path):
    server = serve(
        service=_fresh_service(tmp_path, "small"), port=0, max_frame_bytes=1024
    )
    try:
        stream = _raw_stream(server)
        stream.socket.sendall(struct.pack(">I", 1 << 30))
        reply = stream.recv()
        assert reply["type"] == "error"
        assert reply["error"]["code"] == "FRAME_TOO_LARGE"
        assert stream.recv() is None
        stream.close()
        probe = connect(server.host, server.port)
        assert probe.ping() >= 0.0
        probe.close()
    finally:
        server.stop()


def test_oversized_reply_answers_error_and_survives(tmp_path):
    """A response that cannot fit the frame limit must come back as a
    FRAME_TOO_LARGE error frame, not kill the handler thread."""
    server = serve(
        service=_fresh_service(tmp_path, "tightreply"), port=0, max_frame_bytes=700
    )
    try:
        client = connect(server.host, server.port)  # hello/welcome fit fine
        with pytest.raises(IcdbError) as excinfo:
            client.request_component(implementation="register", attributes={"size": 4})
        assert excinfo.value.code == "FRAME_TOO_LARGE"
        # The connection survives and small answers still work.
        assert client.ping() >= 0.0
        summary = client.request_component(
            implementation="register", attributes={"size": 4}, detail="summary"
        )
        assert summary.name.startswith("register_")
        client.close()
    finally:
        server.stop()


def test_mid_request_disconnect_leaves_server_alive(server):
    stream = _raw_stream(server)
    stream.socket.sendall(struct.pack(">I", 500) + b"partial payload")
    stream.close()  # vanish mid-frame
    time.sleep(0.05)
    probe = connect(server.host, server.port)
    probe.request_component(implementation="register", attributes={"size": 2})
    probe.close()


def test_first_frame_must_be_hello(server):
    stream = _raw_stream(server)
    stream.send({"type": "ping"})
    reply = stream.recv()
    assert reply["type"] == "error" and reply["error"]["code"] == "PROTOCOL"
    assert stream.recv() is None
    stream.close()


def test_unsupported_protocol_version_is_rejected(server):
    stream = _raw_stream(server)
    stream.send({"type": "hello", "protocol": PROTOCOL_VERSION + 1})
    reply = stream.recv()
    assert reply["type"] == "error"
    assert "protocol" in reply["error"]["message"]
    assert stream.recv() is None
    stream.close()


def test_unknown_frame_type_keeps_connection_open(server):
    stream = _raw_stream(server)
    stream.send({"type": "hello", "protocol": PROTOCOL_VERSION})
    assert stream.recv()["type"] == "welcome"
    stream.send({"type": "frobnicate"})
    reply = stream.recv()
    assert reply["type"] == "error" and reply["error"]["code"] == "PROTOCOL"
    stream.send({"type": "ping"})
    assert stream.recv()["type"] == "pong"
    stream.close()


def test_unknown_request_kind_answers_structured_error(client):
    reply = client.transport.send_payload(
        {"type": "request", "request": {"kind": "launch_rocket"}}
    )
    assert reply["type"] == "response"
    response = reply["response"]
    assert response["ok"] is False
    assert response["error"]["code"] == "BAD_REQUEST"
    assert "launch_rocket" in response["error"]["message"]


def test_duplicate_hello_is_an_error_but_survivable(client):
    reply = client.transport.send_payload(
        {"type": "hello", "protocol": PROTOCOL_VERSION}
    )
    assert reply["type"] == "error" and "duplicate" in reply["error"]["message"]
    assert client.ping() >= 0.0


def test_timed_out_transport_is_poisoned_not_desynced(server):
    """A recv timeout leaves the server's late reply in flight; the
    transport must refuse further use instead of misreading that reply as
    the answer to the next request."""
    client = RemoteClient(SocketTransport(server.host, server.port, timeout=0.005))
    with pytest.raises(IcdbError) as excinfo:
        # A cold 16-bit ALU generation (fresh server, nothing memoized)
        # takes far longer than the 5 ms timeout.
        client.execute(
            ComponentRequest(
                implementation="alu", attributes={"size": 16}, use_cache=False
            )
        )
    assert excinfo.value.code == "UNAVAILABLE"
    with pytest.raises(IcdbError) as excinfo:
        client.execute(FunctionQuery(functions=("ADD",)))
    assert excinfo.value.code == "UNAVAILABLE"
    client.transport.close()


def test_graceful_stop_disconnects_clients(tmp_path):
    server = serve(service=_fresh_service(tmp_path, "stopping"), port=0)
    client = connect(server.host, server.port)
    server.stop()
    with pytest.raises(IcdbError):
        client.execute(FunctionQuery(functions=("ADD",)))
    client.transport.close()


def test_loopback_transport_matches_tcp(tmp_path, server, client):
    loopback = RemoteClient.loopback(_fresh_service(tmp_path, "loop"))
    remote = client.request_component(implementation="register", attributes={"size": 4})
    local = loopback.request_component(implementation="register", attributes={"size": 4})
    assert remote.name == local.name
    assert remote.render_delay() == local.render_delay()
    assert loopback.instance_query(local.name, fields=("VHDL_net_list",)) == \
        client.instance_query(remote.name, fields=("VHDL_net_list",))
    loopback.close()
    with pytest.raises(IcdbError):
        loopback.ping()


# ---------------------------------------------------------------------------
# simulate / check_equivalence: identical wire envelopes on every transport
# ---------------------------------------------------------------------------


def test_simulation_envelopes_identical_local_loopback_tcp(tmp_path, server, client):
    """``simulate`` / ``check_equivalence`` answer byte-identical response
    envelopes locally, over the loopback transport and over TCP (only the
    timing / session-id fields may differ)."""
    import json

    from repro.api import CheckEquivalence, Simulate

    local_service = _fresh_service(tmp_path, "sim_local")
    loopback = RemoteClient.loopback(_fresh_service(tmp_path, "sim_loop"))

    generate = [
        ComponentRequest(
            component_name="adder",
            parameters={"size": 2},
            instance_name="add_e2e",
        ),
        ComponentRequest(
            component_name="counter",
            functions=("INC",),
            attributes={"size": 3},
            instance_name="cnt_e2e",
        ),
    ]
    probes = [
        Simulate(
            name="add_e2e",
            vectors=(
                {"I0[0]": 1, "I0[1]": 0, "I1[0]": 1, "I1[1]": 1, "Cin": 0},
                {"I0[0]": 1, "I0[1]": 1, "I1[0]": 1, "I1[1]": 1, "Cin": 1},
            ),
        ),
        Simulate(
            name="add_e2e",
            vectors=({"I0[0]": 1, "I1[0]": 1},),
            engine="flat",
        ),
        CheckEquivalence(name="add_e2e"),
        CheckEquivalence(name="cnt_e2e", cycles=8, lanes=16),
        CheckEquivalence(name="cnt_e2e", reference="add_e2e"),  # port mismatch
        Simulate(name="ghost"),  # NOT_FOUND error envelope
    ]

    def normalize(envelope):
        envelope = dict(envelope)
        assert envelope.pop("elapsed_ms", 0.0) >= 0.0
        envelope.pop("session_id", None)
        return envelope

    executors = [
        lambda r: local_service.execute(r),
        loopback.execute,
        client.execute,
    ]
    for request in generate:
        for run in executors:
            assert run(request).ok
    for request in probes:
        wire_forms = [
            json.dumps(
                normalize(json.loads(json.dumps(run(request).to_dict()))),
                sort_keys=True,
            )
            for run in executors
        ]
        assert wire_forms[0] == wire_forms[1] == wire_forms[2]
    loopback.close()


# ---------------------------------------------------------------------------
# The command-line server
# ---------------------------------------------------------------------------


def test_cli_server_serves_and_shuts_down_on_sigint(tmp_path):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.server", "--port", "0",
         "--store-root", str(tmp_path / "cli_store")],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"unexpected banner: {line!r}"
        client = connect(match.group(1), int(match.group(2)), client="cli-e2e")
        instance = client.request_component(
            implementation="register", attributes={"size": 2}
        )
        assert instance.name.startswith("register_")
        client.close()
    finally:
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=15)
    assert proc.returncode == 0
    assert "icdb server stopped" in out
