"""Tests for minimization, factoring, technology mapping and the MILO flow."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.iif.flat import CombAssign, FlatComponent
from repro.logic import expr as E
from repro.logic.factor import factor, factoring_gain
from repro.logic.mapping import MappingError, MappingOptions, TechnologyMapper
from repro.logic.milo import SynthesisOptions, sweep, synthesize
from repro.logic.minimize import minimize, minimize_to_sop, prime_implicants, select_cover
from repro.logic.sop import Cube, cube_minterms, expr_minterms, remove_contained_cubes
from repro.netlist.gates import GateNetlist
from repro.sim import check_combinational_equivalence, check_sequential_equivalence
from repro.techlib import standard_cells


def _v(name):
    return E.Var(name)


# ---------------------------------------------------------------------------
# SOP / Quine-McCluskey
# ---------------------------------------------------------------------------


def test_cube_basics():
    cube = Cube.from_mapping({"a": 1, "b": 0})
    assert cube.literal_count() == 2
    assert cube.evaluate({"a": 1, "b": 0}) == 1
    assert cube.evaluate({"a": 1, "b": 1}) == 0
    wider = Cube.from_mapping({"a": 1})
    assert wider.covers(cube)
    assert not cube.covers(wider)
    assert E.equivalent(cube.to_expr(), E.and_(_v("a"), E.not_(_v("b"))))


def test_expr_minterms_and_cube_minterms():
    expression = E.or_(E.and_(_v("a"), _v("b")), E.not_(_v("a")))
    order = ("a", "b")
    minterms = expr_minterms(expression, order)
    assert minterms == {0, 1, 3}
    assert cube_minterms(Cube.from_mapping({"a": 1}), order) == {2, 3}


def test_remove_contained_cubes():
    big = Cube.from_mapping({"a": 1})
    small = Cube.from_mapping({"a": 1, "b": 0})
    kept = remove_contained_cubes([big, small, big])
    assert kept == [big]


def test_prime_implicants_classic_example():
    # f(a,b,c) = sum of minterms {0,1,2,5,6,7}: classic two-solution cover.
    order = ("a", "b", "c")
    minterms = {0, 1, 2, 5, 6, 7}
    primes = prime_implicants(minterms, order)
    cover = select_cover(minterms, primes, order)
    sop = E.or_(*(cube.to_expr() for cube in cover))
    reference = E.or_(*(Cube.from_mapping(
        {"a": (m >> 2) & 1, "b": (m >> 1) & 1, "c": m & 1}).to_expr() for m in minterms))
    assert E.equivalent(sop, reference)
    # The greedy cover is not guaranteed minimum (the exact minimum here is
    # 3 cubes) but must stay close to it and use only 2-literal primes.
    assert len(cover) <= 4
    assert all(cube.literal_count() == 2 for cube in cover)


def test_minimize_to_sop_is_equivalent_and_compact():
    a, b, c = _v("a"), _v("b"), _v("c")
    redundant = E.or_(E.and_(a, b), E.and_(a, E.not_(b)), E.and_(a, c))
    sop = minimize_to_sop(redundant)
    assert E.equivalent(sop.to_expr(), a)
    assert sop.literal_count() <= 1


def test_minimize_keeps_xor_structure():
    a, b, c = _v("a"), _v("b"), _v("c")
    sum_bit = E.xor(E.xor(a, b), c)
    minimized = minimize(sum_bit)
    assert E.count_literals(minimized) <= E.count_literals(
        E.or_(*(cube.to_expr() for cube in minimize_to_sop(sum_bit).cubes))
    )
    assert E.equivalent(minimized, sum_bit)


def test_minimize_handles_opaque_specials():
    a, en = _v("a"), _v("en")
    expression = E.or_(E.and_(a, a), E.tristate(a, en))
    minimized = minimize(expression)
    assert any(isinstance(node, E.Special) for node in E.walk(minimized))


def test_minimize_skips_large_supports():
    wide = E.or_(*(E.and_(_v(f"x{i}"), _v(f"y{i}")) for i in range(8)))
    minimized = minimize(wide, max_vars=6)
    assert E.equivalent(minimized, wide, max_vars=16)


@st.composite
def small_exprs(draw, depth=3):
    names = st.sampled_from(["a", "b", "c", "d"])
    if depth == 0:
        return E.Var(draw(names))
    kind = draw(st.integers(0, 4))
    child = small_exprs(depth=depth - 1)
    if kind == 0:
        return E.not_(draw(child))
    if kind == 1:
        return E.and_(draw(child), draw(child))
    if kind == 2:
        return E.or_(draw(child), draw(child))
    if kind == 3:
        return E.xor(draw(child), draw(child))
    return E.Var(draw(names))


@given(small_exprs())
@settings(max_examples=80, deadline=None)
def test_property_minimize_preserves_function(expression):
    assert E.equivalent(minimize(expression), expression)


@given(small_exprs())
@settings(max_examples=80, deadline=None)
def test_property_minimize_never_increases_literals_much(expression):
    minimized = minimize(expression)
    assert E.count_literals(minimized) <= E.count_literals(expression)


# ---------------------------------------------------------------------------
# Factoring
# ---------------------------------------------------------------------------


def test_factor_reduces_literals_on_common_factor():
    a, b, c, d = (_v(x) for x in "abcd")
    expression = E.or_(E.and_(a, b), E.and_(a, c), E.and_(a, d))
    factored = factor(expression)
    assert E.equivalent(factored, expression)
    assert E.count_literals(factored) < E.count_literals(expression)
    assert factoring_gain(expression) >= 2


def test_factor_leaves_irreducible_expressions_alone():
    a, b = _v("a"), _v("b")
    expression = E.or_(a, b)
    assert factor(expression) == expression


@given(small_exprs())
@settings(max_examples=80, deadline=None)
def test_property_factor_preserves_function(expression):
    assert E.equivalent(factor(expression), expression)


# ---------------------------------------------------------------------------
# Technology mapping
# ---------------------------------------------------------------------------


def _map_single(expression, use_complex=True):
    library = standard_cells()
    netlist = GateNetlist("single", sorted(expression.variables()), ["OUT"], library)
    mapper = TechnologyMapper(netlist, library, MappingOptions(use_complex_gates=use_complex))
    mapper.map_to_net(expression, target="OUT")
    netlist.validate()
    return netlist


def test_mapping_simple_gates():
    a, b = _v("A"), _v("B")
    netlist = _map_single(E.and_(a, b))
    assert netlist.cell_histogram() == {"AND2": 1}
    netlist = _map_single(E.not_(E.and_(a, b)))
    assert netlist.cell_histogram() == {"NAND2": 1}
    netlist = _map_single(E.xor(a, b))
    assert netlist.cell_histogram() == {"XOR2": 1}


def test_mapping_complex_gates_and_mux():
    a, b, c, s = _v("A"), _v("B"), _v("C"), _v("S")
    aoi = E.not_(E.or_(E.and_(a, b), c))
    assert "AOI21" in _map_single(aoi).cell_histogram()
    mux = E.or_(E.and_(E.not_(s), a), E.and_(s, b))
    assert "MUX21" in _map_single(mux).cell_histogram()
    without = _map_single(mux, use_complex=False).cell_histogram()
    assert "MUX21" not in without


def test_mapping_wide_gates_build_trees():
    wide = E.and_(*(_v(f"I{i}") for i in range(9)))
    netlist = _map_single(wide)
    assert netlist.cell_count() >= 3
    from repro.sim import GateSimulator

    sim = GateSimulator(netlist)
    assert sim.apply({f"I{i}": 1 for i in range(9)})["OUT"] == 1
    out = sim.apply({"I4": 0})
    assert out["OUT"] == 0


def test_mapping_constants_and_buffers():
    netlist = _map_single(E.TRUE)
    assert "TIE1" in netlist.cell_histogram()
    netlist = _map_single(E.buf(_v("A")))
    assert "BUF1" in netlist.cell_histogram()


def test_mapping_shares_common_subexpressions():
    a, b, c = _v("A"), _v("B"), _v("C")
    library = standard_cells()
    netlist = GateNetlist("share", ["A", "B", "C"], ["X", "Y"], library)
    mapper = TechnologyMapper(netlist, library)
    shared = E.and_(a, b)
    mapper.map_to_net(E.or_(shared, c), target="X")
    mapper.map_to_net(E.xor(shared, c), target="Y")
    histogram = netlist.cell_histogram()
    assert histogram.get("AND2", 0) == 1  # built once, reused


# ---------------------------------------------------------------------------
# The MILO flow
# ---------------------------------------------------------------------------


def test_sweep_propagates_constants_and_trivial_nets():
    component = FlatComponent(
        name="sweep_me",
        inputs=["A", "B"],
        outputs=["O"],
        internals=["T1", "T2"],
        assigns=[
            CombAssign("T1", E.TRUE),
            CombAssign("T2", E.and_(_v("A"), _v("T1"))),
            CombAssign("O", E.or_(_v("T2"), _v("B"))),
        ],
    )
    swept = sweep(component)
    assert swept.assignment_for("O") is not None
    assert "T1" not in swept.driven_signals()
    collapsed = swept.collapsed_output_expressions()["O"]
    assert E.equivalent(collapsed, E.or_(_v("A"), _v("B")))


def test_synthesize_combinational_equivalence(adder_flat, cells):
    netlist = synthesize(adder_flat, cells)
    result = check_combinational_equivalence(adder_flat, netlist, max_exhaustive=9)
    assert result.equivalent, result.counterexample


def test_synthesize_sequential_equivalence(catalog, cells):
    flat = catalog.get("counter").expand(
        {"size": 3, "type": 2, "load": 1, "enable": 1, "up_or_down": 3}
    )
    netlist = synthesize(flat, cells)
    result = check_sequential_equivalence(flat, netlist, clock="CLK", cycles=24)
    assert result.equivalent, (result.counterexample, result.mismatched_outputs)


def test_synthesize_uses_sr_flops_for_async_load(catalog, cells):
    flat = catalog.get("counter").expand(
        {"size": 3, "type": 2, "load": 1, "enable": 0, "up_or_down": 1}
    )
    netlist = synthesize(flat, cells)
    histogram = netlist.cell_histogram()
    assert histogram.get("DFFSR1", 0) == 3
    flat_plain = catalog.get("counter").expand(
        {"size": 3, "type": 2, "load": 0, "enable": 0, "up_or_down": 1}
    )
    plain = synthesize(flat_plain, cells)
    assert plain.cell_histogram().get("DFF1", 0) == 3


def test_synthesize_latch_for_enable_gating(catalog, cells):
    flat = catalog.get("counter").expand(
        {"size": 2, "type": 2, "load": 0, "enable": 1, "up_or_down": 1}
    )
    netlist = synthesize(flat, cells)
    assert "LATH1" in netlist.cell_histogram()


def test_synthesize_falling_edge_flops_for_ripple(catalog, cells):
    flat = catalog.get("counter").expand(
        {"size": 3, "type": 1, "load": 0, "enable": 0, "up_or_down": 1}
    )
    netlist = synthesize(flat, cells)
    assert netlist.cell_histogram().get("DFFN1", 0) == 3


def test_synthesis_options_affect_cell_count(catalog, cells):
    flat = catalog.get("alu").expand({"size": 4})
    optimized = synthesize(flat, cells)
    naive = synthesize(
        flat, cells, SynthesisOptions(minimize=False, factor=False, use_complex_gates=False)
    )
    assert optimized.transistor_units() <= naive.transistor_units()


def test_synthesized_netlists_validate(catalog, cells):
    for name in ("register", "mux4", "comparator", "decoder", "barrel_shifter"):
        flat = catalog.get(name).expand()
        netlist = synthesize(flat, cells)
        netlist.validate()
        assert netlist.cell_count() > 0


# ---------------------------------------------------------------------------
# Common-slice (canonical-form) optimization reuse
# ---------------------------------------------------------------------------


def test_optimize_memo_replays_byte_identical_across_catalog(catalog, cells):
    """The generation cache replays a slice's minimize/factor result
    through a variable rename.  For that to be sound the replay must be
    *identical* to direct optimization -- not merely equivalent -- for
    every equation of every catalog component: the golden netlists depend
    on it.  This asserts it catalog-wide at two bit widths."""
    from repro.core.gencache import CountedLruCache
    from repro.logic.milo import optimize_expression

    options = SynthesisOptions()
    checked = 0
    total_hits = 0
    for implementation in catalog.implementations():
        for size in (3, 6):
            parameters = dict(implementation.default_parameters)
            if "size" in parameters:
                parameters["size"] = size
            try:
                flat = implementation.expand(parameters, name="slice_check")
            except Exception:
                # Some implementations (e.g. extract) need co-varying
                # parameters; a bare size override is not meaningful there.
                continue
            working = sweep(flat, options)
            memo = CountedLruCache(4096)
            expressions = [assign.expr for assign in working.combinational()]
            for assign in working.sequential():
                expressions.append(assign.data)
                expressions.append(assign.clock)
                expressions.extend(term.condition for term in assign.asyncs)
            for expression in expressions:
                direct = optimize_expression(expression, options, None)
                replayed = optimize_expression(expression, options, memo)
                assert replayed is direct, (implementation.name, size, expression)
                checked += 1
            total_hits += memo.stats()["hits"]
    assert checked > 300
    # Slice reuse actually engages: across the catalog, regular multi-bit
    # structures share canonical forms between their bit equations.
    assert total_hits > 50


def test_optimize_memo_skips_opaque_slices_that_straddle_placeholders():
    """Equations with opaque Buf/Special subterms must not replay through
    the canonical memo: minimize abstracts them as `_opq<i>` variables,
    and '_' sorts between uppercase and lowercase, so the QM variable
    order of a slice and its rename can differ.  This is the concrete
    straddling case (uppercase vs lowercase support) that produced a
    structurally different -- though equivalent -- replay before the
    opaque guard existed."""
    from repro.core.gencache import CountedLruCache
    from repro.logic.milo import optimize_expression

    options = SynthesisOptions()
    memo = CountedLruCache(64)

    def slice_over(x, y, z):
        return E.or_(
            E.and_(E.var(z), E.or_(E.buf(E.and_(E.var(x), E.var(y))), E.var(y))),
            E.var(x),
        )

    upper = slice_over("A", "B", "C")
    lower = slice_over("a", "b", "c")
    assert optimize_expression(upper, options, memo) is optimize_expression(
        upper, options, None
    )
    assert optimize_expression(lower, options, memo) is optimize_expression(
        lower, options, None
    )
    # The guard keeps opaque expressions out of the memo entirely.
    assert memo.stats()["lookups"] == 0


def test_synthesize_with_optimize_cache_is_byte_identical(catalog, cells):
    """Whole-netlist check: synthesis with a shared optimize memo emits
    exactly the same instances, nets and pin maps as without."""
    from repro.core.gencache import CountedLruCache

    for name in ("alu", "counter", "ripple_carry_adder", "decoder"):
        implementation = catalog.get(name)
        parameters = dict(implementation.default_parameters)
        if "size" in parameters:
            parameters["size"] = 5
        flat = implementation.expand(parameters, name="memo_check")
        plain = synthesize(flat, cells)
        memoized = synthesize(flat, cells, optimize_cache=CountedLruCache(4096))
        assert list(plain.instances) == list(memoized.instances)
        for key in plain.instances:
            left, right = plain.instances[key], memoized.instances[key]
            assert left.cell.name == right.cell.name
            assert left.pins == right.pins
            assert left.size == right.size
