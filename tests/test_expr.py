"""Unit and property tests for the boolean expression IR."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import expr as E


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def test_const_values():
    assert E.const(1) is E.TRUE
    assert E.const(0) is E.FALSE
    with pytest.raises(E.ExprError):
        E.Const(2)


def test_not_folds_constants_and_double_negation():
    a = E.var("a")
    assert E.not_(E.TRUE) is E.FALSE
    assert E.not_(E.FALSE) is E.TRUE
    assert E.not_(E.not_(a)) == a


def test_and_flattening_and_identities():
    a, b, c = E.var("a"), E.var("b"), E.var("c")
    assert E.and_(a, E.TRUE) == a
    assert E.and_(a, E.FALSE) is E.FALSE
    assert E.and_() is E.TRUE
    nested = E.and_(E.and_(a, b), c)
    assert isinstance(nested, E.And)
    assert len(nested.args) == 3
    assert E.and_(a, a) == a


def test_or_flattening_and_identities():
    a, b = E.var("a"), E.var("b")
    assert E.or_(a, E.FALSE) == a
    assert E.or_(a, E.TRUE) is E.TRUE
    assert E.or_() is E.FALSE
    assert E.or_(a, a) == a
    nested = E.or_(E.or_(a, b), a)
    assert isinstance(nested, E.Or)
    assert len(nested.args) == 2


def test_xor_xnor_constant_folding():
    a = E.var("a")
    assert E.xor(a, E.FALSE) == a
    assert E.xor(a, E.TRUE) == E.not_(a)
    assert E.xor(a, a) is E.FALSE
    assert E.xnor(a, a) is E.TRUE
    assert E.xnor(a, E.FALSE) == E.not_(a)


def test_special_constructors():
    a, en = E.var("a"), E.var("en")
    tri = E.tristate(a, en)
    assert tri.kind == "tristate"
    assert E.delay(a, 10).param == 10
    assert E.schmitt(a).kind == "schmitt"
    with pytest.raises(E.ExprError):
        E.special("bogus", (a,))


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------


def test_evaluate_basic_gates():
    a, b = E.var("a"), E.var("b")
    env = {"a": 1, "b": 0}
    assert E.and_(a, b).evaluate(env) == 0
    assert E.or_(a, b).evaluate(env) == 1
    assert E.xor(a, b).evaluate(env) == 1
    assert E.xnor(a, b).evaluate(env) == 0
    assert E.not_(a).evaluate(env) == 0
    assert E.buf(b).evaluate(env) == 0


def test_wire_or_evaluates_as_or():
    a, b = E.var("a"), E.var("b")
    assert E.wire_or(a, b).evaluate({"a": 0, "b": 1}) == 1
    assert E.wire_or(a, b).evaluate({"a": 0, "b": 0}) == 0


def test_truth_table_and_equivalence():
    a, b = E.var("a"), E.var("b")
    demorgan_left = E.not_(E.and_(a, b))
    demorgan_right = E.or_(E.not_(a), E.not_(b))
    assert E.truth_table(demorgan_left) == E.truth_table(demorgan_right)
    assert E.equivalent(demorgan_left, demorgan_right)
    assert not E.equivalent(a, E.not_(a))


def test_equivalence_rejects_large_supports():
    exprs = E.and_(*(E.var(f"v{i}") for i in range(20)))
    with pytest.raises(E.ExprError):
        E.equivalent(exprs, exprs, max_vars=8)


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


def test_count_literals_nodes_depth():
    a, b, c = E.var("a"), E.var("b"), E.var("c")
    expression = E.or_(E.and_(a, b), E.not_(c))
    assert E.count_literals(expression) == 3
    assert E.count_nodes(expression) == 3  # or, and, not
    assert E.depth(expression) == 2
    assert E.depth(a) == 0
    assert E.support_size(expression) == 3


def test_substitute_and_rename():
    a, b = E.var("a"), E.var("b")
    expression = E.or_(a, E.not_(b))
    replaced = E.substitute(expression, {"a": E.and_(E.var("x"), E.var("y"))})
    assert E.equivalent(
        replaced, E.or_(E.and_(E.var("x"), E.var("y")), E.not_(b))
    )
    renamed = E.rename_variables(expression, {"a": "z"})
    assert "z" in renamed.variables()
    assert "a" not in renamed.variables()


def test_cofactor():
    a, b = E.var("a"), E.var("b")
    expression = E.or_(E.and_(a, b), E.not_(a))
    assert E.equivalent(E.cofactor(expression, "a", 1), b)
    assert E.cofactor(expression, "a", 0) is E.TRUE


def test_walk_visits_all_nodes():
    a, b = E.var("a"), E.var("b")
    expression = E.xor(E.and_(a, b), E.not_(a))
    kinds = {type(node).__name__ for node in E.walk(expression)}
    assert {"Xor", "And", "Not", "Var"} <= kinds


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def test_to_iif_string_round_trips_through_parser():
    from repro.iif import parse_expression

    a, b, c = E.var("A"), E.var("B"), E.var("C")
    expression = E.or_(E.and_(a, E.not_(b)), E.xor(b, c))
    text = E.to_iif_string(expression)
    assert "(+)" in text and "*" in text and "+" in text
    # The rendered text parses back as valid IIF expression syntax.
    parse_expression(text)


def test_render_specials():
    a, en = E.var("A"), E.var("EN")
    assert "~t" in E.to_iif_string(E.tristate(a, en))
    assert "~w" in E.to_iif_string(E.wire_or(a, en))
    assert "~d 5" in E.to_iif_string(E.delay(a, 5))
    assert "~s" in E.to_iif_string(E.schmitt(a))
    assert "~b" in E.to_iif_string(E.buf(a))


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def expressions(draw, depth=3):
    """Random boolean expressions over four variables."""
    if depth == 0:
        return draw(st.one_of(st.builds(E.Var, _names), st.sampled_from([E.TRUE, E.FALSE])))
    choice = draw(st.integers(min_value=0, max_value=5))
    child = expressions(depth=depth - 1)
    if choice == 0:
        return E.not_(draw(child))
    if choice == 1:
        return E.and_(draw(child), draw(child))
    if choice == 2:
        return E.or_(draw(child), draw(child))
    if choice == 3:
        return E.xor(draw(child), draw(child))
    if choice == 4:
        return E.xnor(draw(child), draw(child))
    return draw(st.builds(E.Var, _names))


_envs = st.fixed_dictionaries({name: st.integers(0, 1) for name in ["a", "b", "c", "d"]})


@given(expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_double_negation_preserves_value(expression, env):
    assert E.not_(E.not_(expression)).evaluate(env) == expression.evaluate(env)


@given(expressions(), expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_de_morgan(left, right, env):
    lhs = E.not_(E.and_(left, right))
    rhs = E.or_(E.not_(left), E.not_(right))
    assert lhs.evaluate(env) == rhs.evaluate(env)


@given(expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_substitution_consistency(expression, env):
    """Substituting constants for variables matches direct evaluation."""
    mapping = {name: E.const(value) for name, value in env.items()}
    substituted = E.substitute(expression, mapping)
    assert substituted.evaluate({}) == expression.evaluate(env)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_property_truth_table_length(expression):
    table = E.truth_table(expression)
    assert len(table) == 2 ** len(expression.variables())
    assert set(table) <= {0, 1}


# ---------------------------------------------------------------------------
# Hash-consing (interning) invariants
# ---------------------------------------------------------------------------


def _rebuild(expression: E.BExpr) -> E.BExpr:
    """Reconstruct an expression bottom-up through the public constructors."""
    if isinstance(expression, E.Var):
        return E.Var(expression.name)
    if isinstance(expression, E.Const):
        return E.Const(expression.value)
    if isinstance(expression, E.Not):
        return E.Not(_rebuild(expression.operand))
    if isinstance(expression, E.Buf):
        return E.Buf(_rebuild(expression.operand))
    if isinstance(expression, E.And):
        return E.And(tuple(_rebuild(arg) for arg in expression.args))
    if isinstance(expression, E.Or):
        return E.Or(tuple(_rebuild(arg) for arg in expression.args))
    if isinstance(expression, E.Xor):
        return E.Xor(_rebuild(expression.left), _rebuild(expression.right))
    if isinstance(expression, E.Xnor):
        return E.Xnor(_rebuild(expression.left), _rebuild(expression.right))
    assert isinstance(expression, E.Special)
    return E.Special(
        expression.kind,
        tuple(_rebuild(arg) for arg in expression.args),
        expression.param,
    )


def _walked_variables(expression: E.BExpr) -> frozenset:
    """The support recomputed by traversal (the pre-interning definition)."""
    return frozenset(
        node.name for node in E.walk(expression) if isinstance(node, E.Var)
    )


def test_interning_is_total():
    """Building the same structure twice yields the same object."""
    a, b = E.var("a"), E.var("b")
    first = E.or_(E.and_(a, E.not_(b)), E.xor(a, b))
    second = E.or_(E.and_(E.var("a"), E.not_(E.var("b"))), E.xor(E.var("a"), E.var("b")))
    assert first is second
    assert E.Var("a") is a
    assert E.Special("tristate", (a, b)) is E.tristate(a, b)
    assert E.Const(1) is E.TRUE


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_property_interning_hash_eq_variables_consistency(expression):
    """Rebuilt expressions are the *same* node; the cached facts match a
    traversal; equality and hashing agree with identity."""
    twin = _rebuild(expression)
    assert twin is expression
    assert hash(twin) == hash(expression)
    assert twin == expression
    assert expression.variables() == _walked_variables(expression)
    assert E.count_literals(expression) == sum(
        1 for node in E.walk(expression) if isinstance(node, E.Var)
    )
    assert E.count_nodes(expression) == sum(
        1 for node in E.walk(expression) if not isinstance(node, (E.Var, E.Const))
    )


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_property_truth_mask_matches_evaluate(expression):
    """The packed truth mask agrees with per-row evaluation."""
    names = sorted(expression.variables())
    mask = E.truth_mask(expression, names)
    for index, bits in enumerate(itertools.product((0, 1), repeat=len(names))):
        env = dict(zip(names, bits))
        assert (mask >> index) & 1 == expression.evaluate(env)


def test_copy_and_deepcopy_preserve_identity():
    import copy

    expression = E.or_(E.var("a"), E.not_(E.var("b")))
    assert copy.copy(expression) is expression
    assert copy.deepcopy(expression) is expression


def test_canonical_form_is_a_rename_round_trip():
    a = E.and_(E.var("Q[3]"), E.not_(E.var("DWUP")), E.xor(E.var("Q[0]"), E.var("EN")))
    canonical, names = E.canonical_form(a)
    assert names == tuple(sorted(a.variables()))
    back = {E.canonical_name(i): E.Var(name) for i, name in enumerate(names)}
    assert E.substitute(canonical, back) is a
    # Slices that are renames of each other share one canonical node.
    b = E.and_(E.var("Q[4]"), E.not_(E.var("DWUP")), E.xor(E.var("Q[1]"), E.var("EN")))
    canonical_b, _ = E.canonical_form(b)
    assert canonical_b is canonical


def test_interning_is_thread_safe():
    """Concurrent construction of one expression family converges on the
    same interned nodes with consistent cached facts (the PR-3 job
    workers synthesize concurrently)."""
    import threading

    results = [None] * 8
    barrier = threading.Barrier(len(results))

    def build(index: int) -> None:
        barrier.wait()
        terms = []
        for i in range(40):
            terms.append(
                E.or_(
                    E.and_(E.var(f"ts_a{i}"), E.not_(E.var(f"ts_b{i}"))),
                    E.xor(E.var(f"ts_a{i}"), E.var(f"ts_c{i}")),
                )
            )
        results[index] = terms

    threads = [threading.Thread(target=build, args=(i,)) for i in range(len(results))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    reference = results[0]
    assert reference is not None
    for other in results[1:]:
        assert other is not None
        for left, right in zip(reference, other):
            assert left is right
            assert left.variables() == _walked_variables(left)
