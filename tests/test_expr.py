"""Unit and property tests for the boolean expression IR."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import expr as E


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def test_const_values():
    assert E.const(1) is E.TRUE
    assert E.const(0) is E.FALSE
    with pytest.raises(E.ExprError):
        E.Const(2)


def test_not_folds_constants_and_double_negation():
    a = E.var("a")
    assert E.not_(E.TRUE) is E.FALSE
    assert E.not_(E.FALSE) is E.TRUE
    assert E.not_(E.not_(a)) == a


def test_and_flattening_and_identities():
    a, b, c = E.var("a"), E.var("b"), E.var("c")
    assert E.and_(a, E.TRUE) == a
    assert E.and_(a, E.FALSE) is E.FALSE
    assert E.and_() is E.TRUE
    nested = E.and_(E.and_(a, b), c)
    assert isinstance(nested, E.And)
    assert len(nested.args) == 3
    assert E.and_(a, a) == a


def test_or_flattening_and_identities():
    a, b = E.var("a"), E.var("b")
    assert E.or_(a, E.FALSE) == a
    assert E.or_(a, E.TRUE) is E.TRUE
    assert E.or_() is E.FALSE
    assert E.or_(a, a) == a
    nested = E.or_(E.or_(a, b), a)
    assert isinstance(nested, E.Or)
    assert len(nested.args) == 2


def test_xor_xnor_constant_folding():
    a = E.var("a")
    assert E.xor(a, E.FALSE) == a
    assert E.xor(a, E.TRUE) == E.not_(a)
    assert E.xor(a, a) is E.FALSE
    assert E.xnor(a, a) is E.TRUE
    assert E.xnor(a, E.FALSE) == E.not_(a)


def test_special_constructors():
    a, en = E.var("a"), E.var("en")
    tri = E.tristate(a, en)
    assert tri.kind == "tristate"
    assert E.delay(a, 10).param == 10
    assert E.schmitt(a).kind == "schmitt"
    with pytest.raises(E.ExprError):
        E.special("bogus", (a,))


# ---------------------------------------------------------------------------
# Semantics
# ---------------------------------------------------------------------------


def test_evaluate_basic_gates():
    a, b = E.var("a"), E.var("b")
    env = {"a": 1, "b": 0}
    assert E.and_(a, b).evaluate(env) == 0
    assert E.or_(a, b).evaluate(env) == 1
    assert E.xor(a, b).evaluate(env) == 1
    assert E.xnor(a, b).evaluate(env) == 0
    assert E.not_(a).evaluate(env) == 0
    assert E.buf(b).evaluate(env) == 0


def test_wire_or_evaluates_as_or():
    a, b = E.var("a"), E.var("b")
    assert E.wire_or(a, b).evaluate({"a": 0, "b": 1}) == 1
    assert E.wire_or(a, b).evaluate({"a": 0, "b": 0}) == 0


def test_truth_table_and_equivalence():
    a, b = E.var("a"), E.var("b")
    demorgan_left = E.not_(E.and_(a, b))
    demorgan_right = E.or_(E.not_(a), E.not_(b))
    assert E.truth_table(demorgan_left) == E.truth_table(demorgan_right)
    assert E.equivalent(demorgan_left, demorgan_right)
    assert not E.equivalent(a, E.not_(a))


def test_equivalence_rejects_large_supports():
    exprs = E.and_(*(E.var(f"v{i}") for i in range(20)))
    with pytest.raises(E.ExprError):
        E.equivalent(exprs, exprs, max_vars=8)


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


def test_count_literals_nodes_depth():
    a, b, c = E.var("a"), E.var("b"), E.var("c")
    expression = E.or_(E.and_(a, b), E.not_(c))
    assert E.count_literals(expression) == 3
    assert E.count_nodes(expression) == 3  # or, and, not
    assert E.depth(expression) == 2
    assert E.depth(a) == 0
    assert E.support_size(expression) == 3


def test_substitute_and_rename():
    a, b = E.var("a"), E.var("b")
    expression = E.or_(a, E.not_(b))
    replaced = E.substitute(expression, {"a": E.and_(E.var("x"), E.var("y"))})
    assert E.equivalent(
        replaced, E.or_(E.and_(E.var("x"), E.var("y")), E.not_(b))
    )
    renamed = E.rename_variables(expression, {"a": "z"})
    assert "z" in renamed.variables()
    assert "a" not in renamed.variables()


def test_cofactor():
    a, b = E.var("a"), E.var("b")
    expression = E.or_(E.and_(a, b), E.not_(a))
    assert E.equivalent(E.cofactor(expression, "a", 1), b)
    assert E.cofactor(expression, "a", 0) is E.TRUE


def test_walk_visits_all_nodes():
    a, b = E.var("a"), E.var("b")
    expression = E.xor(E.and_(a, b), E.not_(a))
    kinds = {type(node).__name__ for node in E.walk(expression)}
    assert {"Xor", "And", "Not", "Var"} <= kinds


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def test_to_iif_string_round_trips_through_parser():
    from repro.iif import parse_expression

    a, b, c = E.var("A"), E.var("B"), E.var("C")
    expression = E.or_(E.and_(a, E.not_(b)), E.xor(b, c))
    text = E.to_iif_string(expression)
    assert "(+)" in text and "*" in text and "+" in text
    # The rendered text parses back as valid IIF expression syntax.
    parse_expression(text)


def test_render_specials():
    a, en = E.var("A"), E.var("EN")
    assert "~t" in E.to_iif_string(E.tristate(a, en))
    assert "~w" in E.to_iif_string(E.wire_or(a, en))
    assert "~d 5" in E.to_iif_string(E.delay(a, 5))
    assert "~s" in E.to_iif_string(E.schmitt(a))
    assert "~b" in E.to_iif_string(E.buf(a))


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def expressions(draw, depth=3):
    """Random boolean expressions over four variables."""
    if depth == 0:
        return draw(st.one_of(st.builds(E.Var, _names), st.sampled_from([E.TRUE, E.FALSE])))
    choice = draw(st.integers(min_value=0, max_value=5))
    child = expressions(depth=depth - 1)
    if choice == 0:
        return E.not_(draw(child))
    if choice == 1:
        return E.and_(draw(child), draw(child))
    if choice == 2:
        return E.or_(draw(child), draw(child))
    if choice == 3:
        return E.xor(draw(child), draw(child))
    if choice == 4:
        return E.xnor(draw(child), draw(child))
    return draw(st.builds(E.Var, _names))


_envs = st.fixed_dictionaries({name: st.integers(0, 1) for name in ["a", "b", "c", "d"]})


@given(expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_double_negation_preserves_value(expression, env):
    assert E.not_(E.not_(expression)).evaluate(env) == expression.evaluate(env)


@given(expressions(), expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_de_morgan(left, right, env):
    lhs = E.not_(E.and_(left, right))
    rhs = E.or_(E.not_(left), E.not_(right))
    assert lhs.evaluate(env) == rhs.evaluate(env)


@given(expressions(), _envs)
@settings(max_examples=150, deadline=None)
def test_property_substitution_consistency(expression, env):
    """Substituting constants for variables matches direct evaluation."""
    mapping = {name: E.const(value) for name, value in env.items()}
    substituted = E.substitute(expression, mapping)
    assert substituted.evaluate({}) == expression.evaluate(env)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_property_truth_table_length(expression):
    table = E.truth_table(expression)
    assert len(table) == 2 ** len(expression.variables())
    assert set(table) <= {0, 1}
