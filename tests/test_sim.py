"""Tests for the flat-level and gate-level simulators."""

from __future__ import annotations

import pytest

from repro.iif import parse_module, Expander
from repro.logic.milo import synthesize
from repro.sim import (
    EquivalenceResult,
    FlatSimulator,
    GateSimulationError,
    GateSimulator,
    SimulationError,
    bus_assignment,
    check_combinational_equivalence,
    check_sequential_equivalence,
    evaluate_combinational_cell,
    read_bus,
)


# ---------------------------------------------------------------------------
# Vector helpers
# ---------------------------------------------------------------------------


def test_bus_helpers_round_trip():
    assignment = bus_assignment("D", 5, 19)
    assert assignment == {"D[0]": 1, "D[1]": 1, "D[2]": 0, "D[3]": 0, "D[4]": 1}
    assert read_bus(assignment, "D", 5) == 19


def test_equivalence_result_is_truthy():
    assert EquivalenceResult(equivalent=True, vectors_checked=4)
    assert not EquivalenceResult(equivalent=False, vectors_checked=4)


def test_read_bus_names_the_missing_net():
    with pytest.raises(GateSimulationError, match=r"no net named 'D\[2\]'"):
        read_bus({"D[0]": 1, "D[1]": 0}, "D", 4)


def test_equivalence_result_round_trips_through_dict():
    result = EquivalenceResult(
        equivalent=False,
        vectors_checked=3,
        counterexample={"A": 1, "B": 0},
        mismatched_outputs=("O",),
        mode="combinational",
    )
    restored = EquivalenceResult.from_dict(result.to_dict())
    assert restored == result


# ---------------------------------------------------------------------------
# Flat simulator
# ---------------------------------------------------------------------------


TOGGLE_IIF = """
NAME: TOGGLE;
INORDER: CLK, RST;
OUTORDER: Q;
{
    Q = (!Q) @(~r CLK) ~a(0/(RST));
}
"""


def test_flat_simulator_toggle_and_async_reset():
    flat = Expander().expand(parse_module(TOGGLE_IIF), {})
    sim = FlatSimulator(flat)
    assert sim.value("Q") == 0
    sim.clock_cycle("CLK", {"RST": 0})
    assert sim.value("Q") == 1
    sim.clock_cycle("CLK", {"RST": 0})
    assert sim.value("Q") == 0
    sim.clock_cycle("CLK", {"RST": 0})
    sim.apply({"RST": 1})
    assert sim.value("Q") == 0  # asynchronous reset wins immediately
    # While reset is asserted, clocking does not set the flip-flop.
    sim.clock_cycle("CLK", {"RST": 1})
    assert sim.value("Q") == 0


def test_flat_simulator_rejects_unknown_inputs():
    flat = Expander().expand(parse_module(TOGGLE_IIF), {})
    sim = FlatSimulator(flat)
    with pytest.raises(SimulationError):
        sim.apply({"NOPE": 1})


def test_flat_simulator_run_and_state(catalog):
    flat = catalog.get("register").expand({"size": 2})
    sim = FlatSimulator(flat)
    trace = sim.run("CLK", 3, {"LOAD": 1, **bus_assignment("I", 2, 3)})
    assert len(trace) == 3
    assert read_bus(trace[-1], "Q", 2) == 3
    assert set(sim.state()) == {"Q[0]", "Q[1]"}
    assert sim.output_values()["Q[0]"] == 1


def test_flat_simulator_detects_combinational_loop():
    source = """
NAME: LOOPY;
INORDER: A;
OUTORDER: O;
PIIFVARIABLE: X;
{
    X = !O;
    O = X * A + !X * !A;
}
"""
    flat = Expander().expand(parse_module(source), {})
    with pytest.raises(SimulationError):
        FlatSimulator(flat).apply({"A": 1})


def test_latch_transparency(catalog):
    source = """
NAME: LATCHY;
INORDER: D, G;
OUTORDER: Q;
{
    Q = (D) @(~h G);
}
"""
    flat = Expander().expand(parse_module(source), {})
    sim = FlatSimulator(flat)
    sim.apply({"D": 1, "G": 1})
    assert sim.value("Q") == 1  # transparent
    sim.apply({"G": 0})
    sim.apply({"D": 0})
    assert sim.value("Q") == 1  # held
    sim.apply({"G": 1})
    assert sim.value("Q") == 0  # transparent again


# ---------------------------------------------------------------------------
# Gate-level simulator
# ---------------------------------------------------------------------------


def test_gate_cell_models(cells):
    from repro.netlist import GateNetlist

    netlist = GateNetlist("cells", ["A", "B", "C"], ["Y"], cells)
    inst = netlist.add_instance(cells.by_kind("AOI21"), {"I0": "A", "I1": "B", "I2": "C", "O": "Y"})
    values = {"A": 1, "B": 1, "C": 0, "Y": 0}
    assert evaluate_combinational_cell(inst, values) == 0
    values = {"A": 0, "B": 1, "C": 0, "Y": 0}
    assert evaluate_combinational_cell(inst, values) == 1


def test_gate_simulator_matches_adder(adder_flat, adder_netlist):
    sim = GateSimulator(adder_netlist)
    for a, b, cin in [(3, 9, 0), (15, 1, 1), (7, 8, 0)]:
        outputs = sim.apply(
            {"Cin": cin, **bus_assignment("I0", 4, a), **bus_assignment("I1", 4, b)}
        )
        assert read_bus(outputs, "O", 4) == (a + b + cin) % 16
        assert outputs["Cout"] == (a + b + cin) // 16


def test_gate_simulator_counter_counts(updown_counter_flat, updown_counter_netlist):
    sim = GateSimulator(updown_counter_netlist)
    stim = {"LOAD": 1, "ENA": 1, "DWUP": 0, **bus_assignment("D", 4, 0)}
    values = []
    for _ in range(4):
        out = sim.clock_cycle("CLK", stim)
        values.append(read_bus(out, "Q", 4))
    assert values == [1, 2, 3, 4]
    assert sim.bus_value("Q", 4) == 4


def test_gate_simulator_unknown_input_rejected(adder_netlist):
    sim = GateSimulator(adder_netlist)
    with pytest.raises(GateSimulationError):
        sim.apply({"NOT_A_PORT": 1})


def test_equivalence_checks_pass_for_library_components(catalog, cells):
    mux = catalog.get("mux2").expand({"size": 2})
    assert check_combinational_equivalence(mux, synthesize(mux, cells))
    register = catalog.get("register").expand({"size": 2})
    assert check_sequential_equivalence(register, synthesize(register, cells), clock="CLK", cycles=12)


def test_equivalence_check_detects_broken_netlist(adder_flat, cells):
    netlist = synthesize(adder_flat, cells)
    # Sabotage: swap the pins of one XOR gate's inputs with a constant tie.
    victim = next(inst for inst in netlist.all_instances() if inst.cell.kind == "XOR2")
    victim.pins["I0"] = victim.pins["I1"]
    result = check_combinational_equivalence(adder_flat, netlist, max_exhaustive=9)
    assert not result.equivalent
    assert result.counterexample is not None
    assert result.mismatched_outputs


def test_vectors_checked_counts_only_through_the_counterexample(adder_flat, cells):
    # On an early mismatch, vectors_checked must count the vectors actually
    # simulated -- up to and including the counterexample -- not the full
    # sweep size (the pre-fix behavior).
    netlist = synthesize(adder_flat, cells)
    victim = next(inst for inst in netlist.all_instances() if inst.cell.kind == "XOR2")
    victim.pins["I0"] = victim.pins["I1"]
    result = check_combinational_equivalence(adder_flat, netlist, max_exhaustive=9)
    assert not result.equivalent
    total = 2 ** len(adder_flat.inputs)
    assert 1 <= result.vectors_checked < total
    # The counterexample is the vectors_checked-th vector: re-simulating it
    # reproduces the mismatch on the reported outputs.
    collapsed = adder_flat.collapsed_output_expressions()
    gate_values = GateSimulator(netlist).apply(result.counterexample)
    for output in result.mismatched_outputs:
        assert gate_values[output] != collapsed[output].evaluate(result.counterexample)
