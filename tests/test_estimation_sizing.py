"""Tests for the delay / area / shape estimators and the transistor sizer."""

from __future__ import annotations

import pytest

from repro.components.counters import counter_parameters, TYPE_RIPPLE, UP_DOWN, UP_ONLY
from repro.constraints import Constraints
from repro.estimation import (
    AreaEstimator,
    DelayAnalysis,
    ShapeFunction,
    estimate_area,
    estimate_delay,
    pareto_filter,
    render_area_records,
    shape_function,
    track_utilization,
)
from repro.logic.milo import synthesize
from repro.sizing import SizingOptions, size_for_constraints


def _counter_netlist(catalog, cells, **kwargs):
    flat = catalog.get("counter").expand(counter_parameters(**kwargs))
    return synthesize(flat, cells)


# ---------------------------------------------------------------------------
# Delay estimation
# ---------------------------------------------------------------------------


def test_delay_report_fields_for_sequential_component(updown_counter_netlist):
    report = estimate_delay(updown_counter_netlist)
    assert report.is_sequential
    assert report.clock_width > 0
    assert all(delay > 0 for delay in report.clock_to_output.values())
    assert "DWUP" in report.setup_times
    assert report.setup_times["DWUP"] > report.setup_times["D[0]"]
    assert report.worst_output_delay() >= max(report.clock_to_output.values())


def test_delay_report_render_format(updown_counter_netlist):
    text = estimate_delay(updown_counter_netlist).render()
    lines = text.splitlines()
    assert lines[0].startswith("CW ")
    assert any(line.startswith("WD Q[") for line in lines)
    assert any(line.startswith("SD ") for line in lines)


def test_combinational_component_has_no_clock_width(adder_netlist):
    report = estimate_delay(adder_netlist)
    assert not report.is_sequential
    assert report.clock_to_output == {}
    assert report.comb_delays["O[3]"] > report.comb_delays["O[0]"]
    assert "CW" not in report.render()


def test_output_load_increases_delay(adder_netlist):
    light = estimate_delay(adder_netlist)
    heavy = estimate_delay(adder_netlist, external_loads={"Cout": 40.0})
    assert heavy.comb_delays["Cout"] > light.comb_delays["Cout"]


def test_ripple_counter_has_accumulated_output_delay(catalog, cells):
    ripple = _counter_netlist(catalog, cells, size=5, style=TYPE_RIPPLE)
    synchronous = _counter_netlist(catalog, cells, size=5, up_or_down=UP_ONLY)
    ripple_report = estimate_delay(ripple)
    sync_report = estimate_delay(synchronous)
    # The ripple chain makes the MSB output far slower than the synchronous
    # counter's, while its minimum clock width is smaller (Figure 5).
    assert ripple_report.clock_to_output["Q[4]"] > 2 * sync_report.clock_to_output["Q[4]"]
    assert ripple_report.clock_width < sync_report.clock_width


def test_enable_latch_slows_clock_to_output(catalog, cells):
    plain = estimate_delay(_counter_netlist(catalog, cells, size=4, up_or_down=UP_ONLY))
    gated = estimate_delay(
        _counter_netlist(catalog, cells, size=4, up_or_down=UP_ONLY, enable=True)
    )
    assert gated.clock_to_output["Q[3]"] > plain.clock_to_output["Q[3]"]


def test_delay_analysis_critical_path(updown_counter_netlist):
    analysis = DelayAnalysis(updown_counter_netlist)
    path = analysis.critical_path()
    assert len(path) >= 2
    instances = analysis.critical_instances()
    assert instances
    nets = {inst.output_net() for inst in instances}
    assert nets & set(path)


def test_delay_violations_reported(updown_counter_netlist):
    report = estimate_delay(updown_counter_netlist)
    tight = Constraints(clock_width=max(1.0, report.clock_width / 4))
    assert report.violations(tight)
    loose = Constraints(clock_width=report.clock_width * 2)
    assert not report.violations(loose)


# ---------------------------------------------------------------------------
# Area / shape estimation
# ---------------------------------------------------------------------------


def test_strip_width_between_random_and_best(updown_counter_netlist):
    estimator = AreaEstimator(updown_counter_netlist)
    for strips in (1, 2, 3, 5):
        x_width = estimator.random_width(strips)
        y_width = estimator.best_width(strips)
        width = estimator.strip_width(strips)
        assert min(x_width, y_width) - 1e-9 <= width <= max(x_width, y_width) + 1e-9
        assert width == pytest.approx((x_width + y_width) / 2)


def test_area_records_and_render(updown_counter_netlist):
    estimator = AreaEstimator(updown_counter_netlist)
    records = estimator.alternatives()
    assert records[0].strips == 1
    assert all(record.area > 0 for record in records)
    text = render_area_records(records)
    assert text.splitlines()[0].startswith("strip = 1 width = ")
    best = estimator.best()
    assert best.area == min(record.area for record in records)
    single = estimate_area(updown_counter_netlist, strips=2)
    assert single.strips == 2


def test_more_strips_means_narrower_and_taller(updown_counter_netlist):
    estimator = AreaEstimator(updown_counter_netlist)
    one = estimator.estimate(1)
    many = estimator.estimate(6)
    assert many.width < one.width
    assert many.height > one.height


def test_track_utilization_monotone():
    assert track_utilization(2) > track_utilization(20) > track_utilization(200)
    assert 0 < track_utilization(1000) <= 1.0


def test_shape_function_monotone_and_pareto(updown_counter_netlist):
    shape = shape_function(updown_counter_netlist)
    assert len(shape) >= 3
    assert shape.is_monotone()
    raw = AreaEstimator(updown_counter_netlist).alternatives()
    filtered = pareto_filter(raw)
    assert len(filtered) <= len(raw)
    assert {(r.strips) for r in shape.alternatives} <= {r.strips for r in raw}


def test_shape_function_selection_helpers(updown_counter_netlist):
    shape = shape_function(updown_counter_netlist)
    first = shape.alternative(1)
    assert first.strips == shape.alternatives[0].strips
    with pytest.raises(IndexError):
        shape.alternative(len(shape) + 1)
    wide = shape.best_for_aspect_ratio(8.0)
    tall = shape.best_for_aspect_ratio(0.125)
    assert wide.aspect_ratio > tall.aspect_ratio
    boxed = shape.best_for_bounding_box(first.width * 2, first.height * 2)
    assert boxed is not None
    assert shape.best_for_bounding_box(1.0, 1.0) is None
    rendered = shape.render()
    assert rendered.splitlines()[0].startswith("Alternative=1 width=")


def test_empty_netlist_area_is_zero(cells):
    from repro.netlist import GateNetlist

    empty = GateNetlist("empty", [], [], cells)
    estimator = AreaEstimator(empty)
    assert estimator.estimate(1).width == 0


# ---------------------------------------------------------------------------
# Transistor sizing
# ---------------------------------------------------------------------------


def test_sizing_without_constraints_is_a_no_op(catalog, cells):
    netlist = _counter_netlist(catalog, cells, size=4, up_or_down=UP_DOWN)
    result = size_for_constraints(netlist, Constraints())
    assert result.iterations == 0
    assert result.met_constraints
    assert all(inst.size == 1.0 for inst in netlist.all_instances())


def test_sizing_improves_clock_width(catalog, cells):
    netlist = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    baseline = estimate_delay(netlist).clock_width
    target = baseline * 0.9
    result = size_for_constraints(netlist, Constraints(clock_width=target))
    assert result.iterations > 0
    assert result.report.clock_width < baseline
    assert result.upsized_instances()


def test_sizing_meets_output_load_constraint(catalog, cells):
    netlist = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    constraints = Constraints(
        clock_width=25.0, output_loads={f"Q[{i}]": 40.0 for i in range(5)}
    )
    result = size_for_constraints(netlist, constraints)
    assert result.met_constraints, result.violations
    assert result.report.clock_width <= 25.0 + 1e-6


def test_sizing_increases_area_modestly(catalog, cells):
    reference = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    unsized_area = AreaEstimator(reference).best().area

    sized = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    constraints = Constraints(
        clock_width=25.0, output_loads={f"Q[{i}]": 40.0 for i in range(5)}
    )
    size_for_constraints(sized, constraints)
    sized_area = AreaEstimator(sized).best().area
    assert sized_area > unsized_area
    assert sized_area < unsized_area * 1.35  # "only a few percent" in the paper


def test_uniform_sizing_ablation_costs_more_area(catalog, cells):
    constraints = Constraints(
        clock_width=25.0, output_loads={f"Q[{i}]": 30.0 for i in range(5)}
    )
    greedy_netlist = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    uniform_netlist = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    greedy = size_for_constraints(greedy_netlist, constraints)
    uniform = size_for_constraints(
        uniform_netlist, constraints, SizingOptions(uniform=True)
    )
    greedy_area = AreaEstimator(greedy_netlist).best().area
    uniform_area = AreaEstimator(uniform_netlist).best().area
    if uniform.met_constraints and greedy.met_constraints:
        assert greedy_area <= uniform_area


def test_sizing_reports_unmet_constraints(catalog, cells):
    netlist = _counter_netlist(catalog, cells, size=5, up_or_down=UP_DOWN)
    impossible = Constraints(clock_width=1.0)
    result = size_for_constraints(netlist, impossible)
    assert not result.met_constraints
    assert result.violations
    histogram = result.size_histogram()
    assert sum(histogram.values()) == netlist.cell_count()
