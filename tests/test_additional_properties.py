"""Additional cross-cutting checks: hand-computed delay arithmetic, width
sweeps across the component library, and persistence of the ICDB database."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.components import standard_catalog
from repro.db import Database, INSTANCES
from repro.estimation import estimate_delay
from repro.logic.milo import synthesize
from repro.netlist import GateNetlist
from repro.sim import check_combinational_equivalence
from repro.techlib import standard_cells


def test_delay_estimate_matches_hand_computation(cells):
    """Two inverters in a chain: the estimate equals the X/Y/Z formula."""
    netlist = GateNetlist("chain", ["A"], ["Y"], cells)
    inv = cells.by_kind("INV")
    netlist.add_instance(inv, {"I0": "A", "O": "n1"}, name="u1")
    netlist.add_instance(inv, {"I0": "n1", "O": "Y"}, name="u2")
    external = 10.0
    report = estimate_delay(netlist, external_loads={"Y": external})
    # First inverter drives one inverter input (load = input_load, fanout 1);
    # second drives only the external load (fanout 0).
    expected = (
        inv.output_delay(inv.input_load, 1)
        + inv.output_delay(external, 0)
    )
    assert report.comb_delays["Y"] == pytest.approx(expected)


def test_setup_time_matches_hand_computation(cells):
    """Input -> AND2 -> flip-flop D: set-up = gate delay + FF set-up."""
    netlist = GateNetlist("setup", ["A", "B", "CK"], ["Q"], cells)
    and2 = cells.by_kind("AND2")
    dff = cells.by_kind("DFF")
    netlist.add_instance(and2, {"I0": "A", "I1": "B", "O": "d"}, name="u_and")
    netlist.add_instance(dff, {"D": "d", "CK": "CK", "Q": "Q"}, name="u_ff")
    report = estimate_delay(netlist)
    expected = and2.output_delay(dff.input_load, 1) + dff.setup_time
    assert report.setup_times["A"] == pytest.approx(expected)
    # Minimum clock width is bounded below by the flip-flop's pulse width.
    assert report.clock_width >= dff.min_pulse_width


@given(size=st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_property_adder_synthesis_correct_across_widths(size):
    """Expansion + synthesis stays functionally correct for any bit width."""
    implementation = standard_catalog().get("ripple_carry_adder")
    flat = implementation.expand({"size": size})
    netlist = synthesize(flat, standard_cells())
    result = check_combinational_equivalence(flat, netlist, max_exhaustive=9, samples=64)
    assert result.equivalent, result.counterexample


@given(size=st.integers(min_value=1, max_value=8))
@settings(max_examples=8, deadline=None)
def test_property_component_scaling_monotone(size):
    """Cell count of the counter grows monotonically with the bit width."""
    implementation = standard_catalog().get("counter")
    smaller = synthesize(implementation.expand({"size": size, "type": 2, "load": 0,
                                                "enable": 0, "up_or_down": 1}))
    larger = synthesize(implementation.expand({"size": size + 1, "type": 2, "load": 0,
                                               "enable": 0, "up_or_down": 1}))
    assert larger.cell_count() > smaller.cell_count()
    assert larger.flip_flop_count() == smaller.flip_flop_count() + 1


def test_icdb_database_round_trips_through_json(icdb, tmp_path):
    instance = icdb.request_component(implementation="register", attributes={"size": 2})
    path = icdb.database.save(tmp_path / "icdb.json")
    restored = Database.load(path)
    row = restored.table(INSTANCES).get(name=instance.name)
    assert row is not None
    assert row["implementation"] == "register"
    assert row["area"] == pytest.approx(instance.area)
