"""Tests for the IIF lexer, parser and printer."""

from __future__ import annotations

import pytest

from repro.components.arithmetic import ADDER_SUBTRACTOR_IIF, RIPPLE_CARRY_ADDER_IIF
from repro.components.counters import COUNTER_IIF
from repro.iif import (
    Binary,
    IifSyntaxError,
    Name,
    Num,
    Unary,
    module_to_iif,
    parse_expression,
    parse_module,
    parse_modules,
    tokenize,
)
from repro.iif.lexer import KIND_DIRECTIVE, KIND_EOF, KIND_IDENT, KIND_NUMBER, KIND_OP, KIND_SUBCALL


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


def test_tokenize_basic_operators():
    tokens = tokenize("Q = (Q (+) Cin) @(~r CLK);")
    kinds = [t.kind for t in tokens]
    values = [t.value for t in tokens]
    assert kinds[-1] == KIND_EOF
    assert "(+)" in values
    assert "@" in values
    assert "~r" in values


def test_tokenize_directives_and_subcalls():
    tokens = tokenize("#if (x) #ADDER(4); #else #c_line i = 0;")
    directives = [t.value for t in tokens if t.kind == KIND_DIRECTIVE]
    subcalls = [t.value for t in tokens if t.kind == KIND_SUBCALL]
    assert directives == ["#if", "#else", "#c_line"]
    assert subcalls == ["ADDER"]


def test_tokenize_cline_alias():
    tokens = tokenize("#cline x = 1;")
    assert tokens[0].kind == KIND_DIRECTIVE
    assert tokens[0].value == "#c_line"


def test_tokenize_comments_and_line_numbers():
    tokens = tokenize("A = 1; /* a comment\nspanning lines */\nB = 0;")
    b_token = [t for t in tokens if t.kind == KIND_IDENT and t.value == "B"][0]
    assert b_token.line == 3


def test_tokenize_rejects_unknown_characters():
    with pytest.raises(IifSyntaxError):
        tokenize("A = $1;")


def test_tokenize_unterminated_comment():
    with pytest.raises(IifSyntaxError):
        tokenize("/* never closed")


def test_tokenize_aggregate_operators():
    values = [t.value for t in tokenize("O += A; O *= B; O (+)= C; O (.)= D;")]
    assert "+=" in values and "*=" in values and "(+)=" in values and "(.)=" in values


# ---------------------------------------------------------------------------
# Expression parsing
# ---------------------------------------------------------------------------


def test_parse_expression_precedence_and_over_or():
    expression = parse_expression("A + B*C")
    assert isinstance(expression, Binary) and expression.op == "+"
    assert isinstance(expression.right, Binary) and expression.right.op == "*"


def test_parse_expression_xor_binds_tighter_than_and():
    expression = parse_expression("A * B (+) C")
    assert expression.op == "*"
    assert isinstance(expression.right, Binary) and expression.right.op == "(+)"


def test_parse_expression_indexed_names():
    expression = parse_expression("Q[i+1] * D[2*j]")
    assert isinstance(expression.left, Name)
    assert expression.left.ident == "Q"
    assert isinstance(expression.left.indices[0], Binary)


def test_parse_expression_clocked_assignment_shape():
    expression = parse_expression("(Q (+) C) @(~r CLK) ~a(0/(!LOAD), 1/(LOAD))")
    assert expression.op == "~a"
    clocked = expression.left
    assert clocked.op == "@"
    assert isinstance(clocked.right, Unary) and clocked.right.op == "~r"


def test_parse_expression_trailing_garbage_rejected():
    with pytest.raises(IifSyntaxError):
        parse_expression("A + B extra")


# ---------------------------------------------------------------------------
# Module parsing
# ---------------------------------------------------------------------------


def test_parse_counter_module_declarations():
    module = parse_module(COUNTER_IIF)
    assert module.name == "COUNTER"
    assert module.functions == ["INC"]
    assert [p.ident for p in module.parameters] == [
        "size", "type", "load", "enable", "up_or_down",
    ]
    assert [i.ident for i in module.inorder] == ["D", "CLK", "LOAD", "ENA", "DWUP"]
    assert [o.ident for o in module.outorder] == ["Q", "MINMAX", "RCLK"]
    assert "RIPPLE_COUNTER" in module.subfunctions
    assert module.body.statements, "body should not be empty"


def test_parse_adder_module_dimensions():
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    carry = [item for item in module.piif_variables if item.ident == "C"][0]
    assert len(carry.dims) == 1
    assert isinstance(carry.dims[0], Binary)  # size+1


def test_parse_module_requires_name():
    with pytest.raises(IifSyntaxError):
        parse_module("PARAMETER: size;\n{ }")


def test_parse_module_rejects_trailing_tokens():
    with pytest.raises(IifSyntaxError):
        parse_module("NAME: A;\nINORDER: X;\nOUTORDER: Y;\n{ Y = X; } extra")


def test_parse_modules_multiple():
    source = RIPPLE_CARRY_ADDER_IIF + "\n" + ADDER_SUBTRACTOR_IIF
    modules = parse_modules(source)
    assert [m.name for m in modules] == ["ADDER", "ADDSUB"]


def test_binding_order_follows_declaration_order():
    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    order = [item.ident for item in module.binding_order()]
    assert order == ["size", "I0", "I1", "Cin", "O", "Cout", "C"]


# ---------------------------------------------------------------------------
# Printer round trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("source", [RIPPLE_CARRY_ADDER_IIF, ADDER_SUBTRACTOR_IIF, COUNTER_IIF])
def test_module_printer_round_trip(source):
    module = parse_module(source)
    printed = module_to_iif(module)
    reparsed = parse_module(printed)
    assert reparsed.name == module.name
    assert [p.ident for p in reparsed.parameters] == [p.ident for p in module.parameters]
    assert [i.ident for i in reparsed.inorder] == [i.ident for i in module.inorder]
    assert [o.ident for o in reparsed.outorder] == [o.ident for o in module.outorder]
    assert len(reparsed.body.statements) == len(module.body.statements)


def test_printed_module_expands_identically():
    from repro.iif import Expander

    module = parse_module(RIPPLE_CARRY_ADDER_IIF)
    reparsed = parse_module(module_to_iif(module))
    flat_a = Expander().expand(module, {"size": 3})
    flat_b = Expander().expand(reparsed, {"size": 3})
    assert flat_a.inputs == flat_b.inputs
    assert flat_a.outputs == flat_b.outputs
    assert len(flat_a.assigns) == len(flat_b.assigns)
