"""Tests for the behavioral-synthesis client (DFG, scheduling, allocation,
datapath construction, the Figure 13 simple computer)."""

from __future__ import annotations

import pytest

from repro.constraints import Constraints
from repro.layout.floorplan import Block, Shape
from repro.synthesis import (
    AllocationError,
    DataFlowGraph,
    DfgError,
    SchedulingError,
    allocate,
    build_datapath,
    build_simple_computer,
    choose_clock_width,
    control_logic_iif,
    expression_dfg,
    function_delay_table,
    generate_control_logic,
    schedule_asap,
    storage_requirements,
)


# ---------------------------------------------------------------------------
# DFG
# ---------------------------------------------------------------------------


def test_dfg_construction_and_queries():
    dfg = expression_dfg()
    dfg.validate()
    assert set(dfg.functions_used()) == {"ADD", "SUB", "MUL", "GT"}
    add = dfg.operation("add1")
    assert dfg.producer_of("sum") is add
    assert {op.name for op in dfg.successors(add)} == {"mul1", "cmp1"}
    assert dfg.predecessors(dfg.operation("mul1")) == [add, dfg.operation("sub1")]
    order = [op.name for op in dfg.topological_order()]
    assert order.index("add1") < order.index("mul1")


def test_dfg_error_cases():
    dfg = DataFlowGraph("bad")
    dfg.add_input("a")
    with pytest.raises(DfgError):
        dfg.add_input("a")
    with pytest.raises(DfgError):
        dfg.add_operation("op1", "ADD", ("a", "missing"))
    dfg.add_operation("op1", "ADD", ("a", "a"), result="x")
    with pytest.raises(DfgError):
        dfg.add_operation("op1", "SUB", ("a", "a"))
    with pytest.raises(DfgError):
        dfg.add_operation("op2", "SUB", ("a", "a"), result="x")
    with pytest.raises(DfgError):
        dfg.add_output("never_defined")
    with pytest.raises(DfgError):
        dfg.operation("missing_op")


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------


DELAYS = {"ADD": 10.0, "SUB": 12.0, "MUL": 45.0, "GT": 8.0}


def test_choose_clock_width_from_delays():
    assert choose_clock_width(DELAYS) == pytest.approx(45.0 * 1.1)
    with pytest.raises(SchedulingError):
        choose_clock_width({})


def test_schedule_chaining_within_clock():
    dfg = expression_dfg()
    schedule = schedule_asap(dfg, clock_width=25.0, function_delays=DELAYS)
    # add (10) then cmp (8) chain into one step; mul (45) is multi-cycle.
    cmp_entry = schedule.entry("cmp1")
    add_entry = schedule.entry("add1")
    assert cmp_entry.start_step == add_entry.start_step
    assert "sum" in cmp_entry.chained_after
    mul_entry = schedule.entry("mul1")
    assert mul_entry.steps == 2
    assert schedule.steps >= mul_entry.end_step + 1


def test_schedule_without_chaining_adds_steps():
    dfg = expression_dfg()
    chained = schedule_asap(dfg, 25.0, DELAYS, allow_chaining=True)
    unchained = schedule_asap(dfg, 25.0, DELAYS, allow_chaining=False)
    assert unchained.entry("cmp1").start_step > chained.entry("cmp1").start_step
    assert unchained.steps >= chained.steps


def test_schedule_render_and_usage():
    dfg = expression_dfg()
    schedule = schedule_asap(dfg, 60.0, DELAYS)
    text = schedule.render()
    assert "step 0" in text
    usage = schedule.functions_per_step()
    assert usage[0].get("ADD") == 1
    with pytest.raises(SchedulingError):
        schedule_asap(dfg, 0.0, DELAYS)
    with pytest.raises(SchedulingError):
        schedule.entry("not_an_op")


def test_function_delay_table_uses_icdb(icdb):
    table = function_delay_table(icdb, ["ADD", "GT"], width=4)
    assert set(table) == {"ADD", "GT"}
    assert all(value > 0 for value in table.values())


# ---------------------------------------------------------------------------
# Allocation / binding
# ---------------------------------------------------------------------------


def test_allocation_shares_units_across_steps(icdb):
    dfg = DataFlowGraph("share")
    for name in ("a", "b", "c"):
        dfg.add_input(name, width=4)
    dfg.add_operation("add1", "ADD", ("a", "b"), result="s1")
    dfg.add_operation("add2", "ADD", ("s1", "c"), result="s2")
    dfg.add_output("s2")
    delays = {"ADD": 30.0}
    schedule = schedule_asap(dfg, 35.0, delays)
    allocation = allocate(icdb, schedule, width=4)
    # The two additions are in different steps, so one adder suffices.
    assert len(allocation.units) == 1
    assert allocation.sharing_factor() == pytest.approx(2.0)
    assert allocation.unit_of("add1") is allocation.unit_of("add2")
    assert allocation.total_area() == allocation.units[0].area


def test_allocation_needs_two_units_for_parallel_ops(icdb):
    dfg = DataFlowGraph("parallel")
    for name in ("a", "b", "c", "d"):
        dfg.add_input(name, width=4)
    dfg.add_operation("add1", "ADD", ("a", "b"), result="s1")
    dfg.add_operation("add2", "ADD", ("c", "d"), result="s2")
    dfg.add_output("s1")
    dfg.add_output("s2")
    schedule = schedule_asap(dfg, 40.0, {"ADD": 30.0})
    allocation = allocate(icdb, schedule, width=4)
    assert len(allocation.units_for_function("ADD")) == 2
    assert "units" in allocation.render()


def test_allocation_prefers_multifunction_components(icdb):
    dfg = DataFlowGraph("chain_add_sub")
    for name in ("a", "b", "c"):
        dfg.add_input(name, width=4)
    dfg.add_operation("add1", "ADD", ("a", "b"), result="s1")
    dfg.add_operation("sub1", "SUB", ("s1", "c"), result="d1")
    dfg.add_output("d1")
    schedule = schedule_asap(dfg, 40.0, {"ADD": 30.0, "SUB": 30.0}, allow_chaining=False)
    allocation = allocate(icdb, schedule, width=4)
    add_unit = allocation.unit_of("add1")
    sub_unit = allocation.unit_of("sub1")
    # ADD and SUB land in different steps, so a shared adder/subtractor (or
    # ALU) should serve both.
    assert add_unit is sub_unit
    assert {"ADD", "SUB"} <= set(add_unit.functions)


def test_storage_requirements_cover_cross_step_values(icdb):
    dfg = expression_dfg()
    schedule = schedule_asap(dfg, 25.0, DELAYS)
    lifetimes = storage_requirements(schedule)
    assert "sum" in lifetimes or "diff" in lifetimes
    for produced, used in lifetimes.values():
        assert used >= produced


# ---------------------------------------------------------------------------
# Datapath and control logic
# ---------------------------------------------------------------------------


def test_control_logic_iif_generates_sequencer(icdb):
    source = control_logic_iif("CTRL", steps=4, command_bits=3)
    assert "NAME: CTRL;" in source
    instance = generate_control_logic(icdb, "ctrl_test", steps=4, command_bits=3)
    assert instance.netlist.flip_flop_count() == 4
    assert any(name.startswith("CMD") for name in instance.outputs)
    with pytest.raises(Exception):
        control_logic_iif("CTRL", steps=1, command_bits=1)


def test_build_datapath_produces_structure_and_control(icdb):
    dfg = expression_dfg()
    schedule = schedule_asap(dfg, 60.0, DELAYS)
    allocation = allocate(icdb, schedule, width=4)
    datapath = build_datapath(icdb, schedule, allocation, width=4)
    assert datapath.control is not None
    assert datapath.functional_units
    assert datapath.registers
    assert datapath.total_area() > 0
    labels = datapath.structure.instance_labels()
    assert "control" in labels
    assert len(datapath.all_instances()) == (
        len(datapath.functional_units) + len(datapath.registers)
        + len(datapath.multiplexers) + 1
    )
    vhdl = datapath.structure.to_vhdl()
    assert "architecture structure" in vhdl
    assert "render" and "datapath" in datapath.render()


# ---------------------------------------------------------------------------
# Figure 13 simple computer
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def simple_computer(tmp_path_factory):
    from repro.components import standard_catalog
    from repro.core import ICDB

    server = ICDB(catalog=standard_catalog(fresh=True),
                  store_root=tmp_path_factory.mktemp("cpu_store"))
    return build_simple_computer(server, width=8)


def test_simple_computer_components(simple_computer):
    assert set(simple_computer.datapath_parts) == {
        "alu", "accumulator", "operand_register", "program_counter", "operand_mux",
    }
    assert simple_computer.control.netlist.flip_flop_count() == 8
    assert simple_computer.total_component_area() > 0


def test_simple_computer_floorplans_match_paper_shape(simple_computer):
    left = simple_computer.floorplan_control_left()
    bottom = simple_computer.floorplan_control_bottom()
    # The bottom-control floorplan is wider than tall (about 2:1); the
    # left-control floorplan is closer to square.
    assert bottom.aspect_ratio > 1.5
    assert abs(bottom.aspect_ratio - 2.0) < 1.0
    assert left.aspect_ratio < bottom.aspect_ratio
    # Control logic is tall-and-thin on the left, short-and-wide on the bottom.
    control_left = left.placement_of("control")
    control_bottom = bottom.placement_of("control")
    assert control_left.height > control_left.width
    assert control_bottom.width > control_bottom.height
    # Both floorplans are reasonably tight around the component areas.
    assert left.utilization() > 0.5
    assert bottom.utilization() > 0.5
