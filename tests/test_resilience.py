"""The failure story, exercised against injected failures.

Three layers of coverage:

* **Unit**: retry schedule determinism, circuit-breaker transitions on a
  manual clock, the server-side dedupe window, load shedding and the
  ``retry_after_ms`` hints on every ``E_BUSY`` path.
* **Scripted faults** (:class:`~repro.net.chaos.FlakyTransport`): the
  idempotency rules, case by case -- pre-send failures retry anything,
  post-send failures retry only what is provably safe, and a retried
  mutation lands **exactly once** thanks to the ``request_id`` dedupe.
* **Chaos** (:class:`~repro.net.chaos.ChaosProxy`,
  :class:`~repro.net.chaos.ManagedServer`): a real server behind a
  seeded fault-injecting proxy (resets, torn frames, stalls, delays) and
  a SIGKILL-restart cycle, asserting the end-to-end invariants: zero
  duplicate mutations (exact row counts), zero lost acknowledged writes,
  and a relational dump byte-identical to a fault-free run.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

import pytest

from repro.api import ComponentService, E_BUSY, E_NOT_FOUND, E_UNAVAILABLE
from repro.api.service import RequestDedupe
from repro.core.icdb import IcdbError
from repro.net import RemoteClient, ServerDrained, connect, serve
from repro.net.chaos import ChaosConfig, ChaosProxy, FlakyTransport, ManagedServer, flaky_plan
from repro.net.client import LoopbackTransport
from repro.net.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilientClient,
    ResilientTransport,
    RetryPolicy,
)
from repro.net.server import EXPENSIVE_KINDS, LoadShedder
from repro.obs.metrics import ManualClock, MetricsRegistry

#: A schedule fast enough for tests but still exercising real backoff.
FAST = RetryPolicy(max_attempts=6, base_backoff_s=0.002, max_backoff_s=0.02, seed=11)


def canonical(dump) -> str:
    return json.dumps(dump, sort_keys=True)


# ------------------------------------------------------------------ unit layer


def test_retry_policy_schedule_is_seeded_and_capped():
    policy = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5, seed=42)
    first = [policy.backoff_s(n, policy.rng()) for n in range(1, 6)]
    second = [policy.backoff_s(n, policy.rng()) for n in range(1, 6)]
    assert first == second  # same seed, same schedule
    for attempt, delay in enumerate(first, start=1):
        assert 0.0 <= delay <= min(0.5, 0.1 * 2**attempt)
    # Full jitter actually jitters: a fresh stream differs.
    rng = RetryPolicy(seed=7).rng()
    assert [RetryPolicy(seed=7).backoff_s(3, rng)] != [
        RetryPolicy(seed=8).backoff_s(3, RetryPolicy(seed=8).rng())
    ]


def test_circuit_breaker_transitions_on_manual_clock():
    clock = ManualClock()
    metrics = MetricsRegistry(clock=clock)
    breaker = CircuitBreaker(
        failure_threshold=3, reset_after_s=5.0, clock=clock, metrics=metrics
    )
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED  # under threshold
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    error = breaker.reject()
    assert error.code == E_UNAVAILABLE
    assert error.retry_after_ms is not None and error.retry_after_ms <= 5000.0

    clock.advance(5.0)
    assert breaker.allow()  # the half-open probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow()  # exactly one probe per cool-down

    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == BREAKER_OPEN
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: close
    assert breaker.state == BREAKER_CLOSED and breaker.allow()

    counters = metrics.snapshot()["counters"]
    assert counters["resilience.breaker_opened"] == 2
    assert counters["resilience.breaker_half_open"] == 2
    assert counters["resilience.breaker_closed"] == 1


def test_request_dedupe_caches_success_releases_failure():
    dedupe = RequestDedupe(capacity=4)
    assert dedupe.begin("r1") is None  # first execution reserves
    dedupe.finish("r1", {"ok": True, "value": 1})
    assert dedupe.begin("r1") == {"ok": True, "value": 1}  # replay served

    assert dedupe.begin("r2") is None
    dedupe.finish("r2", None)  # failed: provably did not mutate
    assert dedupe.begin("r2") is None  # so the retry re-executes


def test_request_dedupe_blocks_concurrent_duplicate():
    dedupe = RequestDedupe()
    assert dedupe.begin("dup") is None
    seen = {}

    def duplicate():
        seen["reply"] = dedupe.begin("dup")  # must block until finish()

    thread = threading.Thread(target=duplicate)
    thread.start()
    time.sleep(0.05)
    assert thread.is_alive()  # blocked on the in-flight original
    dedupe.finish("dup", {"ok": True})
    thread.join(timeout=5.0)
    assert seen["reply"] == {"ok": True}


class _StubJobs:
    """Just enough JobManager surface for the shedder."""

    def __init__(self, queued: int, max_queued: int = 100, workers: int = 2):
        self.queued = queued
        self.max_queued = max_queued
        self.workers = workers

    def stats(self):
        return {"queued": self.queued}


def test_load_shedder_rejects_expensive_work_first():
    metrics = MetricsRegistry()
    shedder = LoadShedder(_StubJobs(queued=95), threshold=0.9, metrics=metrics)
    hint = shedder.check("request_component")
    assert hint is not None and 100.0 <= hint <= 5000.0
    assert shedder.check("component_query") is None  # cheap reads pass
    assert shedder.check("ping") is None
    assert metrics.snapshot()["counters"]["resilience.shed_requests"] == 1

    relaxed = LoadShedder(_StubJobs(queued=10), threshold=0.9, metrics=metrics)
    assert relaxed.check("request_component") is None  # below the mark
    disabled = LoadShedder(_StubJobs(queued=100), threshold=1.0, metrics=metrics)
    assert disabled.check("simulate") is None  # threshold >= 1.0 disables

    assert "submit_job" in EXPENSIVE_KINDS and "batch" in EXPENSIVE_KINDS


def test_shedding_over_the_wire_answers_busy_with_hint():
    service = ComponentService()
    server = serve(service=service)
    # Make the shared shedder see a saturated job queue without having to
    # wedge real workers: new connections pick it up from the server.
    server.shedder = LoadShedder(
        _StubJobs(queued=95), threshold=0.9, metrics=service.metrics
    )
    try:
        client = connect(server.host, server.port, client="shed")
        with pytest.raises(IcdbError) as excinfo:
            client.request_component(
                implementation="register", attributes={"size": 4}
            )
        assert excinfo.value.code == E_BUSY
        assert excinfo.value.retry_after_ms is not None
        # Cheap reads still answer while expensive work is shed.
        assert client.health()["status"] == "ok"
        client.close()
    finally:
        server.stop()


def test_session_cap_busy_carries_retry_after_hint():
    server = serve(max_sessions=1)
    try:
        first = connect(server.host, server.port, client="holder")
        with pytest.raises(IcdbError) as excinfo:
            connect(server.host, server.port, client="over-cap")
        assert excinfo.value.code == E_BUSY
        assert excinfo.value.retry_after_ms == 1000.0
        first.close()
    finally:
        server.stop()


# ------------------------------------------------------------- scripted faults


def _loopback_resilient(service, plan=None, policy=FAST, **kwargs):
    if plan is None:
        return ResilientClient.wrap(
            lambda: LoopbackTransport(service), policy=policy, **kwargs
        )
    return ResilientClient.wrap(
        lambda: FlakyTransport(LoopbackTransport(service), plan),
        policy=policy,
        **kwargs,
    )


def test_pre_send_failure_retries_mutations():
    service = ComponentService()
    client = _loopback_resilient(service, flaky_plan("pre", "ok"))
    instance = client.request_component(
        implementation="register", attributes={"size": 4}
    )
    rows = client.meta("db_rows", table="instances")
    assert [row["name"] for row in rows] == [instance.name]
    assert client.resilience.snapshot()["counters"]["resilience.retries"] == 1
    client.close()


def test_post_send_mutation_retries_and_lands_exactly_once():
    service = ComponentService()
    client = _loopback_resilient(service, flaky_plan("post", "ok"))
    instance = client.request_component(
        implementation="register", attributes={"size": 4}
    )
    # The server executed the original send; the retry was answered from
    # the dedupe window -- one acknowledged write, one row, no duplicate.
    rows = client.meta("db_rows", table="instances")
    assert [row["name"] for row in rows] == [instance.name]
    server_counters = service.metrics.snapshot()["counters"]
    assert server_counters["resilience.dedupe_hits"] == 1
    client.close()


def test_post_send_without_request_id_is_not_retried():
    # A plain RemoteClient over the resilient transport: no request_id is
    # stamped, so an ambiguous failure on a mutating request must surface
    # rather than risk a duplicate.
    service = ComponentService()
    plan = flaky_plan("post")
    client = RemoteClient(
        ResilientTransport(
            lambda: FlakyTransport(LoopbackTransport(service), plan), policy=FAST
        ),
        client="bare",
    )
    with pytest.raises(OSError):
        client.request_component(implementation="register", attributes={"size": 4})
    # The server did execute it (the reply was lost after the send) --
    # exactly the ambiguity the error is protecting: no silent retry.
    rows = client.meta("db_rows", table="instances")
    assert len(rows) == 1
    client.close()


def test_post_send_idempotent_read_retries_freely():
    service = ComponentService()
    plan = flaky_plan()  # filled after the handshake below
    client = RemoteClient(
        ResilientTransport(
            lambda: FlakyTransport(LoopbackTransport(service), plan), policy=FAST
        ),
        client="reader",
    )
    plan.extend(["post", "ok"])
    matches = client.component_query(component="counter")
    assert matches  # the retry answered
    client.close()


def test_breaker_fails_fast_while_server_is_down():
    def refuse():
        raise OSError("connection refused")

    client_error = None
    breaker = CircuitBreaker(failure_threshold=3, reset_after_s=60.0)
    policy = RetryPolicy(max_attempts=3, base_backoff_s=0.001, max_backoff_s=0.002, seed=5)
    try:
        ResilientClient.wrap(lambda: refuse(), policy=policy, breaker=breaker)
    except OSError as exc:
        client_error = exc
    assert client_error is not None  # attempts exhausted against a dead host
    assert breaker.state == BREAKER_OPEN

    # While open, calls are rejected immediately with E_UNAVAILABLE --
    # no connection attempt, no timeout stacking.
    transport = ResilientTransport(lambda: refuse(), policy=policy, breaker=breaker)
    with pytest.raises(IcdbError) as excinfo:
        RemoteClient(transport, client="fast-fail")
    assert excinfo.value.code == E_UNAVAILABLE


def test_live_job_handles_survive_reconnect():
    service = ComponentService()
    plan = flaky_plan()
    client = _loopback_resilient(service, plan)
    handle = client.submit_component(
        implementation="register", attributes={"size": 6}
    )
    plan.append("pre")  # kill the connection under the status poll
    summary = handle.result(timeout=30.0)
    assert summary["instance"]
    counters = client.resilience.snapshot()["counters"]
    assert counters["resilience.reattaches"] >= 1
    client.close()


def test_goodbye_then_close_raises_server_drained():
    from repro.net.protocol import FRAME_GOODBYE

    service = ComponentService()
    server = serve(service=service)
    try:
        client = connect(server.host, server.port, client="drainee")
        assert client.health()["status"] == "ok"
        # Push the drain announcement to the live connection (exactly what
        # drain() does first) while the server still answers.
        for send in list(server._senders.values()):
            send({"type": FRAME_GOODBYE, "reason": "server draining"})
        assert client.frame_ping() >= 0.0  # goodbye consumed, still served
        server.stop()
        with pytest.raises(ServerDrained) as excinfo:
            client.health()
        assert excinfo.value.code == E_UNAVAILABLE
        assert "drain" in str(excinfo.value)
    finally:
        server.stop()


def test_drain_rejects_new_connections_and_counts():
    service = ComponentService()
    server = serve(service=service)
    client = connect(server.host, server.port, client="existing")
    server.drain(grace=5.0)
    counters = service.metrics.snapshot()["counters"]
    assert counters["resilience.drains"] == 1
    with pytest.raises(OSError):
        connect(server.host, server.port, client="late")
    # The existing connection surfaces a typed E_UNAVAILABLE (a drained
    # close, or a plain connection loss when the RST beat the goodbye).
    with pytest.raises(IcdbError) as excinfo:
        client.health()
    assert excinfo.value.code == E_UNAVAILABLE


def test_health_reports_uptime_jobs_and_drain_state():
    service = ComponentService()
    server = serve(service=service)
    try:
        client = connect(server.host, server.port, client="health")
        report = client.health(echo="marco")
        assert report["status"] == "ok"
        assert report["echo"] == "marco"
        assert report["uptime_s"] >= 0.0
        assert set(report["jobs"]) >= {"queued", "running", "workers"}
        assert report["net"]["draining"] is False
        assert client.ping() >= 0.0
        assert client.frame_ping() >= 0.0
        client.close()
    finally:
        server.stop()


def test_cql_ping_command():
    from repro.cql import CqlExecutor

    service = ComponentService()
    session = service.create_session(client="cql")
    executor = CqlExecutor(session)
    outputs = executor.execute_text(
        "command: ping; echo: marco; status: ?s; health: ?s"
    )
    assert outputs["status"] == "ok"
    assert outputs["health"]["echo"] == "marco"


# ---------------------------------------------------------------- chaos layer


CHAOS = ChaosConfig(
    seed=0,  # overridden per test
    reset_rate=0.04,
    torn_rate=0.02,
    stall_rate=0.04,
    delay_rate=0.10,
    stall_s=0.03,
    delay_s=0.005,
)
CHAOS_WRITES = 12
CHAOS_POLICY = RetryPolicy(
    max_attempts=10, base_backoff_s=0.01, max_backoff_s=0.1, deadline_s=60.0
)


def _chaos_workload(client) -> list:
    """The mutation sequence both the faulted and fault-free runs execute."""
    acked = []
    for index in range(CHAOS_WRITES):
        if index % 3 == 2:
            instance = client.request_component(
                component_name="counter",
                functions=["INC"],
                attributes={"size": 3 + index % 4},
            )
        else:
            instance = client.request_component(
                implementation="register", attributes={"size": 2 + index % 6}
            )
        acked.append(instance.name)
        # Interleave reads so faults also land on idempotent traffic.
        assert client.instance_query(instance.name)["clock_width"] >= 0.0
    return acked


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_proxy_no_duplicates_no_lost_writes(seed, tmp_path):
    # Fault-free reference run: same request sequence, no proxy.  The
    # dumps embed artifact paths under the store root, so each run pins
    # its own root and the comparison normalizes them away.
    reference_service = ComponentService(store_root=tmp_path / "reference")
    reference = ResilientClient.wrap(
        lambda: LoopbackTransport(reference_service), client="reference"
    )
    reference_acked = _chaos_workload(reference)
    golden = canonical(reference.meta("db_dump")).replace(
        str(tmp_path / "reference"), "<root>"
    )
    reference.close()

    service = ComponentService(store_root=tmp_path / "chaos")
    server = serve(service=service)
    proxy = ChaosProxy(
        server.host, server.port, dataclasses.replace(CHAOS, seed=seed)
    )
    try:
        client = ResilientClient.connect(
            proxy.host,
            proxy.port,
            client="chaos",
            timeout=10.0,
            policy=RetryPolicy(
                max_attempts=CHAOS_POLICY.max_attempts,
                base_backoff_s=CHAOS_POLICY.base_backoff_s,
                max_backoff_s=CHAOS_POLICY.max_backoff_s,
                deadline_s=CHAOS_POLICY.deadline_s,
                seed=seed,
            ),
            breaker=CircuitBreaker(failure_threshold=100),
        )
        acked = _chaos_workload(client)

        # Every acknowledged write is present exactly once: no duplicate
        # mutations, no lost acknowledged writes.
        assert acked == reference_acked
        rows = client.meta("db_rows", table="instances")
        names = [row["name"] for row in rows]
        assert sorted(names) == sorted(acked)
        assert len(set(names)) == len(names)

        # Byte-identical relational state vs the fault-free run.
        faulted = canonical(client.meta("db_dump")).replace(
            str(tmp_path / "chaos"), "<root>"
        )
        assert faulted == golden
        client.close()
    finally:
        proxy.close()
        server.stop()


def test_chaos_proxy_actually_injects_faults():
    # Sanity-check the harness itself: with aggressive rates the proxy
    # must inject, and the client must still converge to a correct state.
    service = ComponentService()
    server = serve(service=service)
    proxy = ChaosProxy(
        server.host,
        server.port,
        ChaosConfig(seed=9, reset_rate=0.25, torn_rate=0.1, delay_rate=0.2,
                    delay_s=0.002),
    )
    try:
        client = ResilientClient.connect(
            proxy.host, proxy.port, client="storm", timeout=10.0,
            policy=RetryPolicy(max_attempts=12, base_backoff_s=0.01,
                               max_backoff_s=0.1, deadline_s=60.0, seed=9),
            breaker=CircuitBreaker(failure_threshold=1000),
        )
        for _ in range(6):
            client.request_component(implementation="register", attributes={"size": 4})
        rows = client.meta("db_rows", table="instances")
        assert len(rows) == 6
        client.close()
    finally:
        total = proxy.total_faults()
        proxy.close()
        server.stop()
    assert total > 0  # the storm was real


@pytest.mark.parametrize("seed", [7])
def test_attach_after_sigkill_restart_on_same_port(tmp_path, seed):
    with ManagedServer(tmp_path / "store") as managed:
        client = ResilientClient.connect(
            managed.host,
            managed.port,
            client="kill-test",
            timeout=10.0,
            policy=RetryPolicy(max_attempts=12, base_backoff_s=0.05,
                               max_backoff_s=0.5, deadline_s=60.0, seed=seed),
        )
        # One acknowledged durable write before the kill.
        instance = client.request_component(
            implementation="register", attributes={"size": 4}
        )
        handle = client.submit_component(
            component_name="counter", functions=["INC"], attributes={"size": 3}
        )
        managed.kill()  # SIGKILL: mid-job, no courtesy
        managed.restart()  # same port, same --data-dir

        # The handle resolves: the restarted server no longer knows the
        # job, so the poll surfaces a typed error (not a hang, not an
        # OSError) after the transport reconnected into a fresh session.
        with pytest.raises(IcdbError) as excinfo:
            handle.result(timeout=30.0)
        assert excinfo.value.code in (E_NOT_FOUND, E_UNAVAILABLE)
        counters = client.resilience.snapshot()["counters"]
        assert counters.get("resilience.sessions_reset", 0) >= 1

        # The acknowledged write survived the kill exactly once, and the
        # client is fully usable on its replacement session.
        rows = client.meta("db_rows", table="instances")
        names = [row["name"] for row in rows if row["name"] == instance.name]
        assert names == [instance.name]
        fresh = client.request_component(
            implementation="register", attributes={"size": 8}
        )
        assert fresh.name != instance.name
        client.close()


def test_sigterm_drain_finishes_jobs_and_snapshots(tmp_path):
    managed = ManagedServer(tmp_path / "store", "--drain-grace", "10")
    try:
        client = ResilientClient.connect(
            managed.host, managed.port, client="drain", timeout=10.0
        )
        instance = client.request_component(
            implementation="register", attributes={"size": 5}
        )
        client.close()
        managed.terminate()  # SIGTERM: drain, snapshot, exit

        managed.start()  # reboot over the drained data directory
        snapshot_seq, replayed, last_seq = managed.recovery
        assert snapshot_seq > 0  # the drain snapshot was written
        assert replayed == 0  # nothing left to replay after it
        client2 = connect(managed.host, managed.port, client="after-drain")
        rows = client2.meta("db_rows", table="instances")
        assert instance.name in {row["name"] for row in rows}
        client2.close()
    finally:
        managed.close()
