"""Shared fixtures for the ICDB reproduction test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.components import standard_catalog
from repro.components.counters import counter_parameters, TYPE_SYNCHRONOUS, UP_DOWN, UP_ONLY
from repro.core import ICDB
from repro.logic.milo import synthesize
from repro.techlib import standard_cells


@pytest.fixture(scope="session")
def catalog():
    """The standard component catalog (shared, read-only)."""
    return standard_catalog()


@pytest.fixture(scope="session")
def cells():
    """The default cell library (shared, read-only)."""
    return standard_cells()


@pytest.fixture(scope="session")
def updown_counter_flat(catalog):
    """Flat IIF of the 4-bit synchronous up/down counter with load+enable."""
    return catalog.get("counter").expand(
        counter_parameters(size=4, style=TYPE_SYNCHRONOUS, load=True, enable=True,
                           up_or_down=UP_DOWN)
    )


@pytest.fixture(scope="session")
def updown_counter_netlist(updown_counter_flat, cells):
    """Synthesized gate netlist of the up/down counter fixture."""
    return synthesize(updown_counter_flat, cells)


@pytest.fixture(scope="session")
def adder_flat(catalog):
    """Flat IIF of a 4-bit ripple-carry adder."""
    return catalog.get("ripple_carry_adder").expand({"size": 4})


@pytest.fixture(scope="session")
def adder_netlist(adder_flat, cells):
    return synthesize(adder_flat, cells)


@pytest.fixture()
def icdb(tmp_path):
    """A fresh ICDB server per test (isolated catalog, database and store)."""
    return ICDB(catalog=standard_catalog(fresh=True), store_root=tmp_path / "store")


@pytest.fixture()
def service(tmp_path):
    """A fresh typed component service per test."""
    from repro.api import ComponentService

    return ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "svc_store"
    )


@pytest.fixture(scope="session")
def shared_icdb(tmp_path_factory):
    """A session-wide ICDB server for read-mostly integration tests."""
    root = tmp_path_factory.mktemp("icdb_store")
    return ICDB(catalog=standard_catalog(fresh=True), store_root=root)


# ---------------------------------------------------------------------------
# Golden-file regression support
# ---------------------------------------------------------------------------


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden snapshot files under tests/golden/ instead of "
        "comparing against them",
    )


GOLDEN_DIR = Path(__file__).parent / "golden"


def normalize_golden(text: str) -> str:
    """Whitespace-normalized comparison form: universal newlines, trailing
    whitespace stripped per line, exactly one trailing newline."""
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    body = "\n".join(line.rstrip() for line in lines).rstrip("\n")
    return body + "\n"


class GoldenComparator:
    """Compares rendered artifacts against the snapshots in tests/golden/."""

    def __init__(self, update: bool):
        self.update = update

    def check(self, name: str, text: str) -> None:
        path = GOLDEN_DIR / name
        actual = normalize_golden(text)
        if self.update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(actual)
            return
        assert path.exists(), (
            f"golden file {path.name} is missing; run "
            f"`pytest --update-golden {Path(__file__).parent / 'test_golden_regressions.py'}` "
            f"to create it"
        )
        expected = normalize_golden(path.read_text())
        assert actual == expected, (
            f"rendered {name} no longer matches its golden snapshot; if the "
            f"change is intentional, refresh with `pytest --update-golden`"
        )


@pytest.fixture()
def golden(request) -> GoldenComparator:
    return GoldenComparator(update=request.config.getoption("--update-golden"))
