"""The declarative query IR and the component-query planner.

Covers the :mod:`repro.api.query` IR (validation, JSON round trips, the
textual objective grammar), the :mod:`repro.api.planner` stages
(enumerate / prune / generate / rank, Pareto fronts, explain reports,
the parallel fan-out and its on-worker deadlock guard), the rewired
classic surface (``choose_implementation`` tie-breaking,
``component_query`` attribute filtering and determinism, the
planner-backed ``area_time_tradeoff``) and the ``plan_query`` wire path
through the loopback transport.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AttributePredicate,
    Bound,
    ComponentService,
    E_INVALID,
    E_NOT_FOUND,
    FunctionPredicate,
    NamePredicate,
    Objective,
    PlanPoint,
    PlanQuery,
    PlanResult,
    QuerySpec,
    SubmitJob,
    BatchRequest,
    TypePredicate,
    match_implementations,
    max_cells,
    max_delay,
    minimize,
    pareto,
    parse_objective,
    select_implementation,
    weighted,
)
from repro.components import standard_catalog
from repro.components.catalog import ComponentCatalog, ComponentImplementation
from repro.core.icdb import IcdbError
from repro.net.client import RemoteClient


@pytest.fixture()
def service(tmp_path):
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "store",
        job_workers=4,
    )
    yield service
    service.jobs.shutdown()


@pytest.fixture()
def session(service):
    return service.create_session(client="planner-tests")


# ---------------------------------------------------------------------------
# The IR
# ---------------------------------------------------------------------------


def test_objective_constructors_and_validation():
    assert minimize("area").kind == "minimize"
    assert pareto("area", "delay").metrics == ("area", "delay")
    assert weighted(area=0.6, delay=0.4).weights == (0.6, 0.4)
    with pytest.raises(IcdbError) as excinfo:
        minimize("beauty")
    assert excinfo.value.code == E_INVALID
    with pytest.raises(IcdbError):
        pareto("area")  # needs two metrics
    with pytest.raises(IcdbError):
        Objective(kind="weighted", metrics=("area", "delay"), weights=(1.0,))
    with pytest.raises(IcdbError):
        Objective(kind="maximize", metrics=("area",))
    with pytest.raises(IcdbError):
        Bound(metric="speed", limit=1.0)


def test_parse_objective_grammar():
    assert parse_objective("area") == minimize("area")
    assert parse_objective("minimize(delay)") == minimize("delay")
    assert parse_objective("pareto(area, delay)") == pareto("area", "delay")
    assert parse_objective("weighted(area:0.6, delay:0.4)") == weighted(
        area=0.6, delay=0.4
    )
    for bad in ("", "pareto(area", "weighted(area)", "teleport(area)"):
        with pytest.raises(IcdbError):
            parse_objective(bad)


def test_query_spec_round_trips_and_normalizes():
    spec = QuerySpec(
        select=(TypePredicate("Counter"), FunctionPredicate(("INC",))),
        where=(max_delay(40.0), max_cells(64)),
        objective=pareto("area", "delay"),
        sweep=(("size", (2, 4, 8)),),
        attributes={"size": 4},
        constraints=None,
        limit=5,
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    assert QuerySpec.from_dict(wire) == spec
    points_spec = QuerySpec(
        points=(PlanPoint(label="p0", parameters={"size": 3}),),
        objective=pareto("area", "delay"),
    )
    wire = json.loads(json.dumps(points_spec.to_dict()))
    assert QuerySpec.from_dict(wire) == points_spec
    # Empty containers normalize to None so the round trip is canonical.
    assert QuerySpec(select=(TypePredicate("x"),), attributes={}).attributes is None
    with pytest.raises(IcdbError):
        QuerySpec(sweep=(("size", ()),))
    with pytest.raises(IcdbError):
        QuerySpec(limit=-1)
    with pytest.raises(IcdbError):
        QuerySpec(target="hologram")
    # Points and sweep axes are mutually exclusive: a sweep riding along
    # with explicit points would be silently ignored otherwise.
    with pytest.raises(IcdbError) as excinfo:
        QuerySpec(
            points=(PlanPoint(label="a", implementation="counter"),),
            sweep=(("size", (2, 4)),),
        )
    assert excinfo.value.code == "BAD_REQUEST"


# ---------------------------------------------------------------------------
# Single-winner selection (choose_implementation)
# ---------------------------------------------------------------------------


def _impl(name, component_type, functions):
    return ComponentImplementation(
        name=name,
        component_type=component_type,
        functions=functions,
        iif_source="",
    )


@pytest.fixture()
def tiebreak_catalog():
    catalog = ComponentCatalog()
    catalog.add(_impl("counter", "Counter", ("INC", "DEC", "COUNTER", "INCREMENT")))
    catalog.add(_impl("up_counter", "Counter", ("INC", "COUNTER", "INCREMENT")))
    catalog.add(_impl("zz_counter", "Counter", ("INC", "COUNTER", "INCREMENT")))
    catalog.add(_impl("incrementer", "Counter", ("INC", "INCREMENT")))
    return catalog


def test_choose_implementation_prefers_exact_name(tiebreak_catalog):
    # 'counter' performs the *most* extra functions, but its name matches
    # the requested component exactly -- exact-name preference wins.
    chosen = select_implementation(tiebreak_catalog, "counter", ["INC"])
    assert chosen.name == "counter"


def test_choose_implementation_prefers_fewest_extra_functions(tiebreak_catalog):
    # No candidate named 'Counter' exists as an implementation name match;
    # the cheapest component that still does the job wins.
    chosen = select_implementation(tiebreak_catalog, None, ["INC", "INCREMENT"])
    assert chosen.name == "incrementer"


def test_choose_implementation_breaks_ties_by_name(tiebreak_catalog):
    # up_counter and zz_counter are function-identical; the name decides.
    chosen = select_implementation(
        tiebreak_catalog, None, ["INC", "COUNTER", "INCREMENT"]
    )
    assert chosen.name == "up_counter"


def test_choose_implementation_falls_back_to_named_implementation():
    catalog = standard_catalog(fresh=True)
    # 'alu' is an implementation name, not a component type.
    chosen = select_implementation(catalog, "alu", None)
    assert chosen.name == "alu"


def test_choose_implementation_not_found_paths(service, tiebreak_catalog):
    with pytest.raises(IcdbError) as excinfo:
        select_implementation(tiebreak_catalog, "Register", None)
    assert excinfo.value.code == E_NOT_FOUND
    assert "no implementation matches" in str(excinfo.value)
    with pytest.raises(IcdbError) as excinfo:
        select_implementation(tiebreak_catalog, "Counter", ["ADD"])
    assert excinfo.value.code == E_NOT_FOUND
    # The service front door reports the same structured error.
    with pytest.raises(IcdbError) as excinfo:
        service.choose_implementation("Register_file", None, ["MUL"])
    assert excinfo.value.code == E_NOT_FOUND


def test_service_choose_implementation_matches_planner(service):
    for component, functions in [
        ("counter", ["INC"]),
        ("Counter", None),
        (None, ["ADD", "SUB"]),
        ("Register", ["STORAGE"]),
    ]:
        assert (
            service.choose_implementation(component, None, functions).name
            == select_implementation(service.catalog, component, functions).name
        )


# ---------------------------------------------------------------------------
# component_query: attribute filtering and determinism
# ---------------------------------------------------------------------------


def test_component_query_filters_by_attribute_support(session):
    result = session.component_query(attributes={"awidth": 2})
    # Only implementations mapping 'awidth' survive the filter.
    assert result["implementation"] == ["barrel_shifter", "register_file"]
    narrowed = session.component_query(
        component="Register_file", attributes={"awidth": 2}
    )
    assert narrowed["implementation"] == ["register_file"]


def test_component_query_unknown_attribute_raises_invalid(session):
    with pytest.raises(IcdbError) as excinfo:
        session.component_query(component="counter", attributes={"sise": 5})
    assert excinfo.value.code == E_INVALID
    assert "sise" in str(excinfo.value)
    # ... instead of being silently dropped as before -- on the
    # functions-of-one-implementation branch too.
    with pytest.raises(IcdbError) as excinfo:
        session.component_query(implementation="counter", attributes={"sise": 5})
    assert excinfo.value.code == E_INVALID


def test_component_query_implementation_list_is_sorted(session):
    result = session.component_query(functions=["INC"])
    assert result["implementation"] == sorted(result["implementation"])
    assert result["component"] == sorted(result["component"])
    # The catalog registers up_counter and ripple_counter before
    # incrementer; the sorted answer is independent of that order.
    assert result["implementation"] == [
        "counter",
        "incrementer",
        "ripple_counter",
        "up_counter",
    ]


def test_match_implementations_composes_predicates(session):
    matches = match_implementations(
        session.catalog,
        (
            TypePredicate("Counter"),
            FunctionPredicate(("INC",)),
            AttributePredicate({"size": 4}),
        ),
    )
    assert {impl.name for impl in matches} == {
        "counter",
        "up_counter",
        "ripple_counter",
        "incrementer",
    }


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def _counter_sweep(**overrides) -> QuerySpec:
    fields = dict(
        select=(NamePredicate(("up_counter", "ripple_counter", "incrementer")),),
        sweep=(("size", (2, 3)),),
        objective=pareto("area", "delay"),
    )
    fields.update(overrides)
    return QuerySpec(**fields)


def test_plan_generates_ranks_and_fronts(session):
    result = session.plan(_counter_sweep())
    assert len(result.candidates) == 6
    assert all(report.status == "generated" for report in result.candidates)
    front = result.front_reports()
    assert front and all(report.on_front for report in front)
    # The front is genuinely non-dominated: no generated candidate beats
    # a front member on both metrics.
    for member in front:
        for other in result.generated():
            if other is member:
                continue
            assert not (
                other.metrics["area"] < member.metrics["area"]
                and other.metrics["delay"] < member.metrics["delay"]
            )
    assert result.winner is not None and result.winner.rank == 1
    # Ranks are contiguous over the winners.
    assert [r.rank for r in result.winner_reports()] == list(
        range(1, len(result.winners) + 1)
    )


def test_plan_minimize_and_weighted_objectives(session):
    by_area = session.plan(_counter_sweep(objective=minimize("area")))
    areas = [report.metrics["area"] for report in by_area.winner_reports()]
    assert areas == sorted(areas)
    assert by_area.winner.score == by_area.winner.metrics["area"]

    blended = session.plan(
        _counter_sweep(objective=weighted(area=1.0, delay=1000.0))
    )
    scores = [report.score for report in blended.winner_reports()]
    assert scores == sorted(scores)
    expected = blended.winner.metrics["area"] + 1000.0 * blended.winner.metrics["delay"]
    assert blended.winner.score == pytest.approx(expected)


def test_plan_bounds_mark_infeasible(session):
    unbounded = session.plan(_counter_sweep())
    cutoff = sorted(r.metrics["delay"] for r in unbounded.generated())[2]
    bounded = session.plan(_counter_sweep(where=(max_delay(cutoff),)))
    statuses = {report.label: report.status for report in bounded.candidates}
    infeasible = [label for label, status in statuses.items() if status == "infeasible"]
    assert infeasible, "the delay bound should reject some candidates"
    for report in bounded.candidates:
        if report.status == "infeasible":
            assert report.metrics["delay"] > cutoff
            assert "delay" in report.reason
        assert report.rank is None or report.status == "generated"


def test_plan_limit_truncates_winners(session):
    result = session.plan(_counter_sweep(objective=minimize("area"), limit=2))
    assert len(result.winners) == 2
    assert len(result.generated()) == 6


def test_plan_prunes_unsupported_invalid_and_duplicate(session):
    # 'awidth' is a real catalog attribute, but counters do not map it.
    result = session.plan(
        QuerySpec(
            select=(NamePredicate(("up_counter", "register_file")),),
            attributes={"awidth": 2},
            objective=minimize("area"),
        )
    )
    by_label = {report.implementation: report for report in result.candidates}
    assert by_label["up_counter"].status == "pruned"
    assert "awidth" in by_label["up_counter"].reason
    assert by_label["register_file"].status == "generated"

    # Unknown raw parameters prune before any generation runs.
    result = session.plan(
        QuerySpec(
            select=(NamePredicate(("incrementer",)),),
            parameters={"bogus": 1},
            objective=minimize("area"),
        )
    )
    assert result.candidates[0].status == "pruned"
    assert "bogus" in result.candidates[0].reason

    # A repeated sweep value is the same elaboration twice: one survives.
    result = session.plan(
        QuerySpec(
            select=(NamePredicate(("incrementer",)),),
            sweep=(("size", (3, 3)),),
            objective=minimize("area"),
        )
    )
    statuses = sorted(report.status for report in result.candidates)
    assert statuses == ["generated", "pruned"]
    pruned = next(r for r in result.candidates if r.status == "pruned")
    assert "duplicate" in pruned.reason
    prune_stage = result.explain()["stages"][1]
    assert prune_stage["pruned"] == {"duplicate": 1}


def test_plan_unknown_attribute_raises_invalid(session):
    with pytest.raises(IcdbError) as excinfo:
        session.plan(
            QuerySpec(select=(TypePredicate("Counter"),), sweep=(("sise", (2,)),))
        )
    assert excinfo.value.code == E_INVALID


def test_plan_needs_predicates_or_points(session):
    with pytest.raises(IcdbError) as excinfo:
        session.plan(QuerySpec())
    assert excinfo.value.code == "BAD_REQUEST"
    with pytest.raises(IcdbError) as excinfo:
        session.plan(QuerySpec(select=(TypePredicate("Starship"),)))
    assert excinfo.value.code == E_NOT_FOUND


def test_plan_explain_reports_stages_and_cache_hits(session):
    spec = _counter_sweep()
    first = session.plan(spec).explain()
    assert [stage["stage"] for stage in first["stages"]] == [
        "enumerate",
        "prune",
        "generate",
        "rank",
    ]
    generate = first["stages"][2]
    assert generate["generated"] == 6
    assert generate["parallel"] is True
    assert generate["result_cache"]["misses"] == 6
    # Replanning the same spec is served by the result cache: per-stage
    # cache hits land in the explain report.
    again = session.plan(spec).explain()
    assert again["stages"][2]["result_cache"]["hits"] == 6
    assert again["stages"][2]["generation_cache"]["flows"]["misses"] == 0


def test_plan_failed_candidates_are_reported_not_fatal(session, monkeypatch):
    # Force one candidate's generation to blow up mid-plan.
    generator = session.service.generator
    original = generator.generate_from_implementation

    def explode(implementation, parameters, constraints, name, target="logic"):
        if parameters and parameters.get("size") == 3:
            raise RuntimeError("tool crashed")
        return original(implementation, parameters, constraints, name, target)

    monkeypatch.setattr(generator, "generate_from_implementation", explode)
    result = session.plan(
        QuerySpec(
            select=(NamePredicate(("incrementer",)),),
            sweep=(("size", (2, 3)),),
            objective=minimize("area"),
        )
    )
    statuses = {r.label: r.status for r in result.candidates}
    assert statuses == {
        "incrementer[size=2]": "generated",
        "incrementer[size=3]": "failed",
    }
    failed = next(r for r in result.candidates if r.status == "failed")
    assert failed.error and "tool crashed" in failed.error["message"]
    assert result.winners and result.winner.label == "incrementer[size=2]"


def test_parallel_and_serial_plans_are_identical(tmp_path):
    spec = _counter_sweep()
    outcomes = []
    for workers in (1, 4):
        service = ComponentService(
            catalog=standard_catalog(fresh=True),
            store_root=tmp_path / f"w{workers}",
            job_workers=workers,
        )
        try:
            result = service.create_session().plan(spec)
            outcomes.append(
                [
                    (r.label, r.status, r.instance, r.metrics)
                    for r in result.candidates
                ]
            )
        finally:
            service.jobs.shutdown()
    assert outcomes[0] == outcomes[1]


def test_plan_survives_job_retention_pressure(tmp_path):
    # Candidate jobs are quiet: retention eviction must never drop a
    # finished candidate out from under the waiting plan, even with a
    # pathologically small retention bound.
    from repro.api import JobManager

    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "retain"
    )
    service.jobs.shutdown()
    service.jobs = JobManager(service, workers=4, max_retained=1)
    try:
        result = service.create_session().plan(_counter_sweep())
        assert len(result.generated()) == 6
        assert result.explain()["stages"][2]["parallel"] is True
    finally:
        service.jobs.shutdown()


def test_plan_degrades_inline_when_job_queue_is_full(tmp_path):
    # A full job queue must not half-submit the fan-out: overflow
    # candidates execute inline and every configuration is answered.
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "busy",
        job_workers=2,
        job_queue_limit=2,
    )
    try:
        result = service.create_session().plan(_counter_sweep())
        assert len(result.generated()) == 6
        assert not any(report.status == "failed" for report in result.candidates)
    finally:
        service.jobs.shutdown()


def test_plan_as_a_job_generates_inline_without_deadlock(tmp_path):
    # One worker: the plan job occupies the only slot, so the planner must
    # not wait on inner jobs (the on-worker guard generates inline).
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "solo",
        job_workers=1,
    )
    try:
        session = service.create_session()
        handle = session.submit(PlanQuery(query=_counter_sweep()))
        descriptor = handle.wait(timeout=60)
        assert descriptor["state"] == "done"
        result = PlanResult.from_dict(handle.result())
        assert len(result.generated()) == 6
        assert result.explain()["stages"][2]["parallel"] is False
    finally:
        service.jobs.shutdown()


def test_plan_query_rejected_inside_batches():
    with pytest.raises(IcdbError) as excinfo:
        BatchRequest(requests=(PlanQuery(query=_counter_sweep()),))
    assert excinfo.value.code == "BAD_REQUEST"
    # ... but running a plan as a job is allowed.
    SubmitJob(request=PlanQuery(query=_counter_sweep()))


# ---------------------------------------------------------------------------
# area_time_tradeoff through the planner
# ---------------------------------------------------------------------------

TRADEOFF_CONFIGS = [
    ("ripple", {"size": 4, "type": 1}),
    ("synchronous", {"size": 4, "type": 2}),
    ("synchronous_again", {"size": 4, "type": 2}),  # duplicates keep their row
    # A label leading with the implementation name kept its historical
    # double-prefixed instance name ("counter_counter_v2_...").
    ("counter_v2", {"size": 2, "type": 2}),
]


def test_area_time_tradeoff_matches_serial_loop(tmp_path):
    parallel_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "par"
    )
    serial_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "ser"
    )
    try:
        rows = parallel_service.create_session().area_time_tradeoff(
            "counter", TRADEOFF_CONFIGS
        )
        # Reference: the historical serial request_component loop.
        session = serial_service.create_session()
        reference = []
        for label, parameters in TRADEOFF_CONFIGS:
            instance = session.request_component(
                implementation="counter",
                parameters=parameters,
                instance_name=session.instances.new_name(f"counter_{label}"),
            )
            reference.append(
                {
                    "label": label,
                    "instance": instance.name,
                    "delay": instance.worst_delay(),
                    "clock_width": instance.clock_width,
                    "area": instance.area,
                    "cells": instance.netlist.cell_count(),
                }
            )
        assert rows == reference
    finally:
        parallel_service.jobs.shutdown()
        serial_service.jobs.shutdown()


def test_area_time_tradeoff_keeps_caller_spelling_in_names(session):
    # catalog.get is case-insensitive; the serial loop named instances
    # from the caller's spelling and the planner must too.
    rows = session.area_time_tradeoff("COUNTER", [("a", {"size": 2})])
    assert rows[0]["instance"].startswith("COUNTER_a_")


def test_area_time_tradeoff_reraises_generation_errors(session):
    with pytest.raises(Exception) as excinfo:
        session.area_time_tradeoff("counter", [("bad", {"bogus_parameter": 1})])
    assert "bogus_parameter" in str(excinfo.value)


# ---------------------------------------------------------------------------
# The wire path
# ---------------------------------------------------------------------------


def test_remote_plan_is_identical_to_local(tmp_path):
    spec = _counter_sweep()
    local_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "local"
    )
    remote_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "remote"
    )
    try:
        local = local_service.create_session().plan(spec)
        client = RemoteClient.loopback(remote_service, client="planner-test")
        remote = client.plan(spec)
        assert [r.to_dict() for r in remote.candidates] == [
            r.to_dict() for r in local.candidates
        ]
        assert remote.winners == local.winners
        assert remote.front == local.front
        # The remote explain carries the same stages (timings differ).
        assert [s["stage"] for s in remote.explain()["stages"]] == [
            s["stage"] for s in local.explain()["stages"]
        ]
        client.close()
    finally:
        local_service.jobs.shutdown()
        remote_service.jobs.shutdown()


def test_remote_area_time_tradeoff_matches_local(tmp_path):
    local_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "local"
    )
    remote_service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=tmp_path / "remote"
    )
    try:
        local_rows = local_service.create_session().area_time_tradeoff(
            "counter", TRADEOFF_CONFIGS
        )
        client = RemoteClient.loopback(remote_service, client="tradeoff-test")
        remote_rows = client.area_time_tradeoff("counter", TRADEOFF_CONFIGS)
        assert remote_rows == local_rows
        client.close()
    finally:
        local_service.jobs.shutdown()
        remote_service.jobs.shutdown()


def test_remote_component_query_attribute_errors_are_structured(service):
    client = RemoteClient.loopback(service, client="attr-test")
    with pytest.raises(IcdbError) as excinfo:
        client.component_query(component="counter", attributes={"sise": 5})
    assert excinfo.value.code == E_INVALID
    client.close()


# ---------------------------------------------------------------------------
# CQL explore
# ---------------------------------------------------------------------------


def test_cql_explore_lowers_to_a_plan(session):
    from repro.cql import CqlExecutor

    executor = CqlExecutor(session)
    outputs = executor.execute_text(
        "command: explore; implementation: (up_counter,ripple_counter,incrementer); "
        "sweep: (size:2|3); objective: pareto(area,delay); "
        "winner: ?s; front: ?s[]; candidates: ?s[]; explain: ?s"
    )
    assert outputs["winner"]
    assert outputs["front"]
    assert len(outputs["candidates"]) == 6
    assert {c["status"] for c in outputs["candidates"]} == {"generated"}
    assert [s["stage"] for s in outputs["explain"]["stages"]][0] == "enumerate"


def test_cql_component_query_forwards_attributes(session):
    from repro.cql import CqlExecutor

    executor = CqlExecutor(session)
    outputs = executor.execute_text(
        "command: component_query; attribute: (awidth:2); implementation: ?s[]"
    )
    assert outputs["implementation"] == ["barrel_shifter", "register_file"]
    with pytest.raises(IcdbError) as excinfo:
        executor.execute_text(
            "command: component_query; attribute: (warp_factor:9); "
            "implementation: ?s[]"
        )
    assert excinfo.value.code == E_INVALID


def test_cql_explore_bounds_and_minimize(session):
    from repro.cql import CqlExecutor

    executor = CqlExecutor(session)
    outputs = executor.execute_text(
        "command: explore; component: counter; function: (INC); "
        "sweep: (size:2|4); objective: minimize(area); max_cells: 12; "
        "winner: ?s; instance: ?s[]; candidates: ?s[]"
    )
    assert outputs["winner"]
    assert outputs["instance"]
    for candidate in outputs["candidates"]:
        if candidate["status"] == "infeasible":
            assert candidate["metrics"]["cells"] > 12


# ---------------------------------------------------------------------------
# Equivalence bounds (require_equivalent_to)
# ---------------------------------------------------------------------------


def test_query_spec_equivalence_bound_round_trips():
    spec = QuerySpec(
        select=(NamePredicate(("counter",)),),
        objective=minimize("area"),
        require_equivalent_to="golden",
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    assert QuerySpec.from_dict(wire) == spec
    assert QuerySpec.from_dict(wire).require_equivalent_to == "golden"
    # Absent / empty normalizes to None.
    assert QuerySpec.from_dict(
        QuerySpec(select=(NamePredicate(("counter",)),)).to_dict()
    ).require_equivalent_to is None


def _counter_point(label, **overrides):
    from repro.components.counters import counter_parameters

    return PlanPoint(
        label=label,
        implementation="counter",
        parameters=counter_parameters(size=2, **overrides),
    )


def test_plan_equivalence_bound_prunes_broken_candidate(session):
    from repro.components.counters import DOWN_ONLY, UP_ONLY, counter_parameters

    session.request_component(
        implementation="counter",
        parameters=counter_parameters(size=2, up_or_down=UP_ONLY),
        instance_name="ref_up",
    )
    result = session.plan(
        QuerySpec(
            points=(
                _counter_point("up", up_or_down=UP_ONLY),
                _counter_point("down", up_or_down=DOWN_ONLY),
            ),
            objective=minimize("area"),
            require_equivalent_to="ref_up",
        )
    )
    by_label = {report.label: report for report in result.candidates}
    assert by_label["up"].status == "generated"
    assert by_label["down"].status == "infeasible"
    assert "not equivalent to 'ref_up'" in by_label["down"].reason
    assert "sequential" in by_label["down"].reason
    assert result.winner.label == "up"
    stages = [stage["stage"] for stage in result.explain()["stages"]]
    assert stages == ["enumerate", "prune", "generate", "verify", "rank"]
    verify_stage = result.explain()["stages"][3]
    assert verify_stage["reference"] == "ref_up"
    assert verify_stage["checked"] == 2
    assert verify_stage["rejected"] == 1


def test_plan_without_equivalence_bound_has_no_verify_stage(session):
    result = session.plan(
        QuerySpec(
            points=(_counter_point("only"),),
            objective=minimize("area"),
        )
    )
    stages = [stage["stage"] for stage in result.explain()["stages"]]
    assert "verify" not in stages


def test_plan_equivalence_bound_unknown_reference_raises(session):
    from repro.core.instances import InstanceError

    with pytest.raises(InstanceError):
        session.plan(
            QuerySpec(
                points=(_counter_point("p"),),
                objective=minimize("area"),
                require_equivalent_to="no_such_instance",
            )
        )


def test_cql_explore_with_equivalence_bound(session):
    from repro.cql import CqlExecutor

    executor = CqlExecutor(session)
    reference = executor.execute_text(
        "command: request_component; component: counter; function: (INC);"
        "attribute: (size:2); instance: ?s"
    )["instance"]
    outputs = executor.execute_text(
        "command: explore; component: counter; function: (INC); "
        "sweep: (size:2|3); objective: minimize(area); equivalent_to: %s; "
        "winner: ?s; candidates: ?s[]",
        [reference],
    )
    # 'counter; function: (INC)' resolves to the incrementer implementation,
    # so of the whole counter-family sweep only the same-size incrementer
    # survives the equivalence bound: the other implementations (and the
    # other size) expose different ports or different behavior.
    by_label = {candidate["label"]: candidate for candidate in outputs["candidates"]}
    assert by_label["incrementer[size=2]"]["status"] == "generated"
    rejected = [
        candidate
        for candidate in outputs["candidates"]
        if candidate["label"] != "incrementer[size=2]"
    ]
    assert rejected and all(
        candidate["status"] == "infeasible"
        and "not equivalent" in candidate["reason"]
        for candidate in rejected
    )
    assert outputs["winner"] == "incrementer[size=2]"
