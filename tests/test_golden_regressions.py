"""Golden-file regressions for the generated design artifacts.

A fixed set of catalog components is generated under fixed instance names
and every textual artifact ICDB serves -- the VHDL netlist and head, the
delay / area / shape reports, the flat IIF and the CIF layout -- is
compared (whitespace-normalized) against the snapshots in
``tests/golden/``.  Any change to logic synthesis, sizing, estimation,
layout or the renderers shows up here as a byte-level diff.

Refresh intentionally-changed snapshots with::

    pytest --update-golden tests/test_golden_regressions.py
"""

from __future__ import annotations

import pytest

from repro.components import standard_catalog
from repro.components.counters import (
    TYPE_SYNCHRONOUS,
    UP_DOWN,
    counter_parameters,
)
from repro.core import ICDB
from repro.netlist.cif import layout_to_cif

#: The snapshotted components: (slug, request_component keyword arguments).
GOLDEN_COMPONENTS = [
    (
        "adder4",
        dict(implementation="ripple_carry_adder", attributes={"size": 4}),
    ),
    (
        "updown_counter4",
        dict(
            implementation="counter",
            parameters=counter_parameters(
                size=4, style=TYPE_SYNCHRONOUS, load=True, enable=True,
                up_or_down=UP_DOWN,
            ),
        ),
    ),
    ("alu4", dict(implementation="alu", attributes={"size": 4})),
    ("register8", dict(implementation="register", attributes={"size": 8})),
    ("mux4", dict(implementation="mux2", attributes={"size": 4})),
]

#: Renders snapshotted per component, keyed by file suffix.
ARTIFACTS = ("vhdl", "vhdl_head", "delay", "area", "shape", "flat_iif", "cif")


@pytest.fixture(scope="module")
def golden_instances(tmp_path_factory):
    """Every golden component generated once, under a fixed instance name."""
    icdb = ICDB(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path_factory.mktemp("golden_store"),
    )
    instances = {}
    for slug, kwargs in GOLDEN_COMPONENTS:
        instance = icdb.request_component(instance_name=f"golden_{slug}", **kwargs)
        layout = icdb.request_layout(instance.name, alternative=1)
        instances[slug] = (instance, layout)
    return instances


@pytest.mark.parametrize("slug", [slug for slug, _ in GOLDEN_COMPONENTS])
@pytest.mark.parametrize("artifact", ARTIFACTS)
def test_artifact_matches_golden_snapshot(golden_instances, golden, slug, artifact):
    instance, layout = golden_instances[slug]
    renders = {
        "vhdl": instance.vhdl_netlist,
        "vhdl_head": instance.vhdl_head,
        "delay": instance.render_delay,
        "area": instance.render_area_records,
        "shape": instance.render_shape,
        "flat_iif": instance.flat_milo,
        "cif": lambda: layout_to_cif(layout),
    }
    golden.check(f"{slug}.{artifact}.txt", renders[artifact]())


def test_generation_is_deterministic(tmp_path):
    """The premise of the golden suite: an identical request on a fresh
    server reproduces the artifacts byte for byte."""
    renders = []
    for run in range(2):
        icdb = ICDB(
            catalog=standard_catalog(fresh=True),
            store_root=tmp_path / f"det_{run}",
        )
        instance = icdb.request_component(
            implementation="ripple_carry_adder",
            attributes={"size": 4},
            instance_name="golden_adder4",
        )
        layout = icdb.request_layout(instance.name, alternative=1)
        renders.append(
            (
                instance.vhdl_netlist(),
                instance.render_delay(),
                instance.render_shape(),
                instance.flat_milo(),
                layout_to_cif(layout),
            )
        )
    assert renders[0] == renders[1]
