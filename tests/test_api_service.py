"""Tests for the component service: envelopes, result cache, regressions."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ComponentQuery,
    ComponentRequest,
    DesignOp,
    FunctionQuery,
    InstanceQuery,
    LayoutRequest,
    Request,
    request_from_dict,
)
from repro.api.errors import E_CONFLICT, E_NOT_FOUND
from repro.constraints import Constraints
from repro.core import ICDB, IcdbError
from repro.cql import CqlExecutor
from repro.db import DESIGN_FILES, INSTANCES


# ---------------------------------------------------------------------------
# Typed execution and envelopes
# ---------------------------------------------------------------------------


def test_execute_component_and_function_queries(service):
    session = service.create_session()
    response = session.execute(ComponentQuery(component="counter", functions=("INC",)))
    assert response.ok and not response.cached
    assert "counter" in response.value["implementation"]
    assert response.request_kind == "component_query"
    assert response.session_id == session.session_id
    assert response.elapsed_ms >= 0.0

    response = session.execute(FunctionQuery(functions=("ADD", "SUB"), want="component"))
    assert set(response.value) == {"Adder_Subtractor", "ALU"}


def test_execute_request_component_returns_wire_summary(service):
    session = service.create_session()
    response = session.execute(
        ComponentRequest(
            component_name="counter",
            functions=("INC",),
            attributes={"size": 4},
            constraints=Constraints(clock_width=40.0, setup_time=40.0),
        )
    )
    assert response.ok
    summary = response.value
    assert summary["implementation"] == "counter"
    assert summary["delay"].startswith("CW")
    assert summary["shape_function"].startswith("Alternative=1")
    assert summary["cells"] > 0
    # The whole envelope is JSON-serializable (wire contract).
    json.dumps(response.to_dict())

    info = session.execute(InstanceQuery(name=summary["instance"])).unwrap()
    assert info["function"] == summary["functions"]
    assert "entity" in info["VHDL_net_list"]


def test_execute_instance_query_field_selection(service):
    session = service.create_session()
    name = session.execute(
        ComponentRequest(implementation="register", attributes={"size": 2})
    ).value["instance"]
    connect = session.execute(InstanceQuery(name=name, fields=("connect",))).unwrap()
    assert set(connect) == {"connect"}
    bad = session.execute(InstanceQuery(name=name, fields=("bogus",)))
    assert not bad.ok and bad.error.code == E_NOT_FOUND


def test_execute_layout_request(service):
    session = service.create_session()
    name = session.execute(
        ComponentRequest(implementation="register", attributes={"size": 4})
    ).value["instance"]
    response = session.execute(LayoutRequest(name=name, alternative=1))
    assert response.ok
    assert response.value["cif_layout"].startswith("(CIF file for")
    assert response.value["strips"] >= 1
    assert session.instance(name).layout is not None


def test_execute_never_raises_and_keeps_original_exception(service):
    session = service.create_session()
    response = session.execute(InstanceQuery(name="missing"))
    assert not response.ok
    assert response.error.code == E_NOT_FOUND
    assert response.error.exception_type == "InstanceError"
    assert response.exception is not None

    duplicate = DesignOp(op="start_design", design="proj")
    assert session.execute(duplicate).ok
    conflict = session.execute(duplicate)
    assert not conflict.ok and conflict.error.code == E_CONFLICT


def test_design_ops_through_typed_requests(service):
    session = service.create_session()
    session.execute(DesignOp(op="start_design", design="proj")).unwrap()
    session.execute(DesignOp(op="start_transaction", design="proj")).unwrap()
    keep = session.execute(
        ComponentRequest(implementation="register", attributes={"size": 2})
    ).value["instance"]
    drop = session.execute(
        ComponentRequest(implementation="mux2", attributes={"size": 2})
    ).value["instance"]
    session.execute(DesignOp(op="put_in_list", design="proj", instance=keep)).unwrap()
    removed = session.execute(DesignOp(op="end_transaction", design="proj")).unwrap()
    assert drop in removed["removed"] and keep not in removed["removed"]
    listed = session.execute(DesignOp(op="component_list", design="proj")).unwrap()
    assert listed["instances"] == [keep]
    removed = session.execute(DesignOp(op="end_design", design="proj")).unwrap()
    assert keep in removed["removed"]


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def test_identical_catalog_requests_hit_the_cache(service):
    session = service.create_session()
    request = ComponentRequest(
        implementation="register",
        attributes={"size": 4},
        constraints=Constraints(clock_width=50.0),
    )
    first = session.execute(request)
    second = session.execute(request)
    assert first.ok and not first.cached
    assert second.ok and second.cached
    # Fresh instance name, identical estimates.
    assert second.value["instance"] != first.value["instance"]
    assert second.value["delay"] == first.value["delay"]
    assert second.value["area"] == first.value["area"]
    assert second.value["cached"] is True
    assert service.cache.stats()["hits"] == 1
    # Both instances are fully registered; the clone's artifact files are
    # lazy, so flush them before checking the store.
    service.materialize_artifacts()
    for name in (first.value["instance"], second.value["instance"]):
        assert name in service.instances
        assert service.database.table(INSTANCES).get(name=name) is not None
        assert service.store.path_of(name, "vhdl") is not None


def test_cache_respects_parameters_constraints_and_target(service):
    session = service.create_session()
    base = ComponentRequest(implementation="register", attributes={"size": 4})
    session.execute(base)
    different = [
        ComponentRequest(implementation="register", attributes={"size": 5}),
        ComponentRequest(
            implementation="register",
            attributes={"size": 4},
            constraints=Constraints(clock_width=25.0),
        ),
        ComponentRequest(implementation="register", attributes={"size": 4}, target="layout"),
        ComponentRequest(implementation="mux2", attributes={"size": 4}),
    ]
    for request in different:
        response = session.execute(request)
        assert response.ok and not response.cached


def test_cache_opt_out_and_custom_paths_never_cached(service):
    session = service.create_session()
    request = ComponentRequest(
        implementation="register", attributes={"size": 2}, use_cache=False
    )
    assert not session.execute(request).cached
    assert not session.execute(request).cached
    assert service.cache.stats()["entries"] == 0

    iif = """
NAME: PARITY;
FUNCTIONS: XOR;
PARAMETER: size;
INORDER: I[size];
OUTORDER: P;
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        P (+)= I[i];
}
"""
    custom = ComponentRequest(iif=iif, parameters={"size": 3})
    assert not session.execute(custom).cached
    assert not session.execute(custom).cached
    assert service.cache.stats()["entries"] == 0


# ---------------------------------------------------------------------------
# Generation cache (stage-level memoization of the cold path)
# ---------------------------------------------------------------------------


def _assert_generation_accounting(stats):
    """The flow-level memo holds the PR-3 cache accounting invariants."""
    for stage, snapshot in stats.items():
        assert snapshot["hits"] + snapshot["misses"] == snapshot["lookups"], stage
        assert snapshot["entries"] == snapshot["stores"] - snapshot["evictions"], stage
        assert snapshot["entries"] >= 0, stage


def test_generation_cache_cross_session_hits_and_accounting(service):
    """Two sessions generating the same cold signature share the flow
    stages; counters stay consistent and the artifacts are identical."""
    first_session = service.create_session()
    second_session = service.create_session()
    request = ComponentRequest(
        implementation="alu", attributes={"size": 4}, use_cache=False
    )

    first = first_session.execute(request)
    assert first.ok and not first.cached
    stats = service.generation_stats()
    _assert_generation_accounting(stats)
    assert stats["flows"]["hits"] == 0 and stats["flows"]["stores"] == 1

    second = second_session.execute(request)
    assert second.ok and not second.cached  # memo-served, still a fresh instance
    stats = service.generation_stats()
    _assert_generation_accounting(stats)
    # Cross-session hit counting: the second session's cold request hit
    # the expansion and flow stages the first session populated.
    assert stats["flows"]["hits"] == 1
    assert stats["expand"]["hits"] == 1

    assert second.value["instance"] != first.value["instance"]
    for key in ("delay", "area", "shape_function", "cells", "clock_width"):
        assert second.value[key] == first.value[key], key
    # Both are fully registered, independently deletable instances.
    for name in (first.value["instance"], second.value["instance"]):
        assert name in service.instances
        assert service.database.table(INSTANCES).get(name=name) is not None


def test_generation_cache_shares_synthesis_across_constraints(service):
    """A constraint sweep synthesizes once: the synth stage is shared,
    the flow (sizing + estimates) is per-constraint."""
    session = service.create_session()
    base = dict(implementation="counter", attributes={"size": 4}, use_cache=False)
    session.execute(ComponentRequest(constraints=Constraints(clock_width=60.0), **base))
    before = service.generation_stats()
    session.execute(ComponentRequest(constraints=Constraints(clock_width=45.0), **base))
    after = service.generation_stats()
    _assert_generation_accounting(after)
    assert after["synth"]["hits"] == before["synth"]["hits"] + 1
    assert after["flows"]["stores"] == before["flows"]["stores"] + 1
    assert after["flows"]["hits"] == before["flows"]["hits"]


def test_expansion_memo_tolerates_stray_default_parameters(service):
    """Implementations may carry default_parameters the top module does
    not declare (resolve_parameters validates *overrides* strictly, never
    defaults).  The expansion memo must key on the resolved values while
    expanding with the caller's overrides, or such implementations break."""
    from repro.components.catalog import ComponentImplementation

    register = service.catalog.get("register")
    stray = ComponentImplementation(
        name="stray_register",
        component_type="Register",
        functions=register.functions,
        iif_source=register.iif_source,
        default_parameters={**register.default_parameters, "stray": 7},
        subfunction_sources=register.subfunction_sources,
    )
    service.catalog.add(stray)
    session = service.create_session()
    first = session.execute(
        ComponentRequest(
            implementation="stray_register", parameters={"size": 3}, use_cache=False
        )
    )
    assert first.ok, first.error
    second = session.execute(
        ComponentRequest(
            implementation="stray_register", parameters={"size": 3}, use_cache=False
        )
    )
    assert second.ok and second.value["delay"] == first.value["delay"]
    assert service.generation_stats()["expand"]["hits"] >= 1


def test_generation_cache_entries_bounded_with_eviction_accounting(tmp_path):
    """The stage LRUs stay within their bounds and the accounting
    invariant survives evictions (entries == stores - evictions)."""
    from repro.api import ComponentService
    from repro.components import standard_catalog
    from repro.core.gencache import GenerationCache

    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        store_root=tmp_path / "bounded",
        generation_cache=GenerationCache(
            max_expansions=2, max_netlists=2, max_flows=2, max_optimized=8
        ),
    )
    session = service.create_session()
    for size in (2, 3, 4, 5):
        response = session.execute(
            ComponentRequest(
                implementation="register", attributes={"size": size}, use_cache=False
            )
        )
        assert response.ok
    stats = service.generation_stats()
    _assert_generation_accounting(stats)
    assert stats["expand"]["entries"] <= 2
    assert stats["synth"]["entries"] <= 2
    assert stats["flows"]["entries"] <= 2
    assert stats["optimize"]["entries"] <= 8
    assert stats["flows"]["evictions"] >= 2


def test_cached_clone_survives_template_deletion(service):
    session = service.create_session()
    request = ComponentRequest(implementation="register", attributes={"size": 3})
    first = session.execute(request).value["instance"]
    service.delete_instance(first)
    assert first not in service.instances
    clone = session.execute(request)
    assert clone.ok and clone.cached
    name = clone.value["instance"]
    assert name in service.instances
    service.materialize_artifacts(name)
    assert service.store.path_of(name, "delay") is not None


def test_cached_layout_is_isolated_from_template(service):
    """A request_layout on a cached clone must not leak into later clones."""
    session = service.create_session()
    request = ComponentRequest(implementation="register", attributes={"size": 4})
    first = session.execute(request).value["instance"]
    session.execute(LayoutRequest(name=first, alternative=1)).unwrap()
    later = session.execute(request)
    assert later.cached
    assert session.instance(later.value["instance"]).layout is None
    assert session.instance(later.value["instance"]).target == "logic"


def test_facade_request_component_uses_cache(icdb):
    first = icdb.request_component(implementation="register", attributes={"size": 4})
    second = icdb.request_component(implementation="register", attributes={"size": 4})
    assert not first.cached and second.cached
    assert second.name != first.name
    assert second.netlist is first.netlist
    assert second.render_delay() == first.render_delay()


def test_cached_clone_artifacts_carry_their_own_name(icdb, tmp_path):
    """A clone shares the template's netlist but its VHDL entity, VHDL head
    and flat IIF header must all use the clone's instance name."""
    first = icdb.request_component(implementation="register", attributes={"size": 2})
    second = icdb.request_component(implementation="register", attributes={"size": 2})
    assert second.cached
    vhdl = second.vhdl_netlist()
    assert f"entity {second.name} is" in vhdl
    assert first.name not in vhdl
    assert f"component {second.name}" in second.vhdl_head()
    assert second.flat_milo().startswith(f"NAME={second.name};")
    # The persisted files match what the instance reports (the legacy
    # facade keeps the classic eager artifact persistence).
    from pathlib import Path

    assert f"entity {second.name} is" in Path(second.files["vhdl"]).read_text()
    assert Path(second.files["flat_iif"]).read_text().startswith(f"NAME={second.name};")
    # Architecture bodies are identical and rendered once (shared cache).
    assert second.render_cache is first.render_cache


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


def test_request_layout_updates_design_files_row_instead_of_duplicating(icdb):
    """Regression: every request_layout used to insert a fresh cif row."""
    instance = icdb.request_component(implementation="register", attributes={"size": 2})
    for _ in range(3):
        icdb.request_layout(instance.name, alternative=1)
    rows = icdb.database.table(DESIGN_FILES).select(
        {"instance": instance.name, "kind": "cif"}
    )
    assert len(rows) == 1
    assert rows[0]["path"] == instance.files["cif"]


def test_start_design_requires_a_name(icdb):
    with pytest.raises(IcdbError):
        icdb.start_a_design("")
    response = icdb.service.execute(DesignOp(op="start_design"))
    assert not response.ok
    assert icdb.database.table("designs").get(name="") is None


def test_function_query_rejects_unknown_want(icdb):
    with pytest.raises(IcdbError):
        icdb.function_query(["ADD"], want="implementatoin")
    response = icdb.service.execute(FunctionQuery(functions=("ADD",), want="bogus"))
    assert not response.ok
    assert "bogus" in response.error.message


# ---------------------------------------------------------------------------
# CQL executes through wire-serializable typed requests
# ---------------------------------------------------------------------------


def test_every_cql_command_goes_through_a_round_tripped_request(icdb):
    executed = []
    original = icdb.service.execute

    def spying_execute(request, session=None):
        executed.append(request)
        return original(request, session)

    icdb.service.execute = spying_execute
    try:
        executor = CqlExecutor(icdb)
        executor.execute_text("command: start_a_design; design: proj")
        executor.execute_text("command: start_a_transaction; design: proj")
        created = executor.execute_text(
            "command: request_component; component_name: counter; function: (INC);"
            "attribute: (size:3); clock_width: 40; instance: ?s"
        )
        executor.execute_text(
            "command: component_query; component: counter; implementation: ?s[]"
        )
        executor.execute_text(
            "command: function_query; function: (INC); implementation: ?s[]"
        )
        executor.execute_text(
            "command: instance_query; instance: %s; delay: ?s", [created["instance"]]
        )
        executor.execute_text(
            "command: connect_component; instance: %s; connect: ?s",
            [created["instance"]],
        )
        executor.execute_text(
            "command: request_component; instance: %s; alternative: 1; CIF_layout: ?s",
            [created["instance"]],
        )
        executor.execute_text(
            "command: put_in_component_list; design: proj; instance: %s",
            [created["instance"]],
        )
        executor.execute_text("command: end_a_transaction; design: proj")
        executor.execute_text("command: end_a_design; design: proj")
    finally:
        del icdb.service.execute

    kinds = {request.kind for request in executed}
    assert kinds == {
        "component_query",
        "function_query",
        "instance_query",
        "request_component",
        "request_layout",
        "design_op",
    }
    # Every dispatched request is itself wire-reconstructable.
    for request in executed:
        assert isinstance(request, Request)
        assert request_from_dict(json.loads(json.dumps(request.to_dict()))) == request
