"""Fault injection for the fleet: SIGKILL a worker mid-generation.

The survival contract under test: a worker process dying *while it is
computing a dispatched elaboration* must not fail the request, must not
register the instance twice, and must not leave artifacts from the dead
worker's half-finished work in the server's store (workers own no store,
so there is nothing to leak -- this test proves that end to end).
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.fleet import FleetDispatcher
from repro.net.chaos import ManagedWorker


def test_sigkill_worker_mid_generation_completes_elsewhere(tmp_path):
    store_root = tmp_path / "store"
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=store_root
    )
    # Heartbeats off (effectively): the death must be discovered by the
    # broken dispatch itself, the worst-case timing.
    fleet = FleetDispatcher(service, heartbeat_interval=60.0)
    workers = [ManagedWorker(), ManagedWorker()]
    try:
        handles = {
            (worker.host, worker.port): worker
            for worker in workers
        }
        for worker in workers:
            fleet.connect_worker(worker.host, worker.port)
        service.attach_fleet(fleet)
        session = service.create_session()

        # Big enough that the SIGKILL lands while the worker is still
        # elaborating (about half a second of compute).
        request = ComponentRequest(
            implementation="alu", parameters={"size": 128}, instance_name="victim"
        )
        outcome = {}

        def run():
            outcome["response"] = session.execute(request)

        runner = threading.Thread(target=run)
        runner.start()

        # Spin until the task is inflight on some worker, then SIGKILL
        # that worker's announced pid -- mid-generation by construction.
        target = None
        deadline = time.monotonic() + 30.0
        while target is None and time.monotonic() < deadline:
            for handle in fleet.workers():
                if handle.inflight is not None:
                    target = handle
                    break
            else:
                time.sleep(0.001)
        assert target is not None, "dispatch never went inflight"
        doomed = handles[(target.host, target.port)]
        os.kill(doomed.pid, signal.SIGKILL)
        doomed.proc.wait(timeout=10)

        runner.join(120)
        assert not runner.is_alive()
        response = outcome["response"]
        assert response.ok, response.error

        stats = fleet.stats()
        assert stats["workers_dead"] == 1
        assert stats["workers_live"] == 1
        assert stats["requeues"] >= 1  # the orphaned task moved on
        assert stats["completed"] >= 1

        # Exactly one registered instance -- the retry never double-applied.
        assert session.instances.names() == ["victim"]
        rows = service.database.table("instances").select(
            lambda row: row["name"] == "victim"
        )
        assert len(rows) == 1

        # Zero orphan artifacts: every generated file in the store
        # belongs to the one registered instance (``.iif`` files are the
        # catalog's own seeds, present before any request).
        service.materialize_artifacts()
        generated = {
            path.parent.name
            for path in store_root.rglob("*")
            if path.is_file() and path.suffix != ".iif"
        }
        assert generated == {"victim"}
    finally:
        fleet.close()
        for worker in workers:
            worker.close()
        service.jobs.shutdown()
