"""Tests for per-client sessions: isolation, interleaving and concurrency."""

from __future__ import annotations

import threading

from repro.api import ComponentRequest, DesignOp
from repro.db import DESIGN_INSTANCES


def test_sessions_have_distinct_ids_and_designs(service):
    alpha = service.create_session(client="tool-a")
    beta = service.create_session(client="tool-b")
    assert alpha.session_id != beta.session_id
    alpha.start_a_design("alpha_design")
    beta.start_a_design("beta_design")
    assert alpha.current_design == "alpha_design"
    assert beta.current_design == "beta_design"


def test_interleaved_sessions_keep_isolated_component_lists(service):
    """Two sessions, separate designs, generating in interleaved order."""
    alpha = service.create_session(client="tool-a")
    beta = service.create_session(client="tool-b")
    alpha.start_a_design("alpha_design")
    alpha.start_a_transaction()
    beta.start_a_design("beta_design")
    beta.start_a_transaction()

    # Interleave: a1, b1, a2, b2 -- every instance must land in the design
    # of the session that requested it.
    a1 = alpha.request_component(implementation="register", attributes={"size": 2})
    b1 = beta.request_component(implementation="register", attributes={"size": 2})
    a2 = alpha.request_component(implementation="mux2", attributes={"size": 2})
    b2 = beta.request_component(implementation="counter", attributes={"size": 2})

    assert a1.design == a2.design == "alpha_design"
    assert b1.design == b2.design == "beta_design"
    assert len({a1.name, b1.name, a2.name, b2.name}) == 4

    alpha.put_in_component_list(a1.name)
    beta.put_in_component_list(b1.name)
    beta.put_in_component_list(b2.name)
    assert alpha.component_list() == [a1.name]
    assert sorted(beta.component_list()) == sorted([b1.name, b2.name])


def test_end_a_transaction_garbage_collects_per_session(service):
    alpha = service.create_session(client="tool-a")
    beta = service.create_session(client="tool-b")
    alpha.start_a_design("alpha_design")
    alpha.start_a_transaction()
    beta.start_a_design("beta_design")
    beta.start_a_transaction()

    a_keep = alpha.request_component(implementation="register", attributes={"size": 2})
    a_drop = alpha.request_component(implementation="mux2", attributes={"size": 2})
    b_keep = beta.request_component(implementation="register", attributes={"size": 3})
    b_drop = beta.request_component(implementation="mux2", attributes={"size": 3})
    alpha.put_in_component_list(a_keep.name)
    beta.put_in_component_list(b_keep.name)

    # Alpha's garbage collection must not touch beta's uncommitted work.
    removed = alpha.end_a_transaction()
    assert removed == [a_drop.name]
    assert a_drop.name not in service.instances
    assert b_drop.name in service.instances
    assert beta.component_list() == [b_keep.name]

    removed = beta.end_a_transaction()
    assert removed == [b_drop.name]
    assert b_keep.name in service.instances

    # Ending beta's design removes only beta's instances.
    beta.end_a_design()
    assert b_keep.name not in service.instances
    assert a_keep.name in service.instances
    assert beta.current_design == ""
    assert alpha.current_design == "alpha_design"
    rows = service.database.table(DESIGN_INSTANCES).select({"design": "beta_design"})
    assert rows == []


def test_threaded_sessions_generate_concurrently(service):
    """Sessions on separate threads: unique names, correct design tagging."""
    results = {}
    errors = []

    def worker(tag, size):
        try:
            session = service.create_session(client=tag)
            session.start_a_design(f"{tag}_design")
            session.start_a_transaction()
            generated = []
            for index in range(3):
                response = session.execute(
                    ComponentRequest(
                        implementation="register",
                        attributes={"size": size},
                        constraints=None,
                    )
                )
                generated.append(response.unwrap()["instance"])
            session.execute(
                DesignOp(op="put_in_list", instance=generated[0])
            ).unwrap()
            removed = session.execute(DesignOp(op="end_transaction")).unwrap()["removed"]
            results[tag] = {"generated": generated, "removed": removed}
        except Exception as exc:  # pragma: no cover - surfaced by assertion
            errors.append((tag, exc))

    threads = [
        threading.Thread(target=worker, args=(f"tool-{i}", 2 + i)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    all_names = [name for result in results.values() for name in result["generated"]]
    assert len(all_names) == len(set(all_names)) == 12
    for tag, result in results.items():
        # Exactly the two non-kept instances of this session were collected.
        assert sorted(result["removed"]) == sorted(result["generated"][1:])
        kept = result["generated"][0]
        assert kept in service.instances
        assert service.instances.get(kept).design == f"{tag}_design"
