"""Tests for strip placement, layout generation and the slicing floorplanner."""

from __future__ import annotations

import pytest

from repro.constraints import PortPosition, parse_port_positions
from repro.estimation import shape_function
from repro.layout import (
    Block,
    LayoutError,
    Shape,
    floorplan,
    generate_layout,
    net_spans,
    place_in_strips,
    routing_tracks_per_strip,
    row,
    stack,
)
from repro.netlist import GateNetlist


# ---------------------------------------------------------------------------
# Strip placement
# ---------------------------------------------------------------------------


def test_placement_covers_every_instance(updown_counter_netlist):
    placement = place_in_strips(updown_counter_netlist, 3)
    assert placement.strips == 3
    placed = {cell.instance for cell in placement.cells}
    assert placed == set(updown_counter_netlist.instances)
    for strip in range(3):
        cells = placement.cells_in_strip(strip)
        assert cells, "every strip should receive at least one cell"
        # Cells inside a strip must not overlap.
        cells = sorted(cells, key=lambda c: c.x)
        for left, right in zip(cells, cells[1:]):
            assert left.x_end <= right.x + 1e-9


def test_placement_width_balanced(updown_counter_netlist):
    placement = place_in_strips(updown_counter_netlist, 4)
    total = sum(inst.width_um() for inst in updown_counter_netlist.all_instances())
    assert max(placement.strip_widths) < 0.6 * total
    assert placement.width == max(placement.strip_widths)


def test_single_strip_placement(adder_netlist):
    placement = place_in_strips(adder_netlist, 1)
    assert placement.strips == 1
    assert placement.width == pytest.approx(adder_netlist.total_width_um())


def test_net_spans_and_routing_tracks(updown_counter_netlist):
    placement = place_in_strips(updown_counter_netlist, 3)
    spans = net_spans(updown_counter_netlist, placement)
    assert spans
    for low, high in spans.values():
        assert high >= low
    tracks = routing_tracks_per_strip(updown_counter_netlist, placement)
    assert len(tracks) == 3
    assert all(t >= 1 for t in tracks)


# ---------------------------------------------------------------------------
# Layout generation
# ---------------------------------------------------------------------------


def test_generate_layout_dimensions(updown_counter_netlist):
    layout = generate_layout(updown_counter_netlist, strips=3)
    assert layout.strips == 3
    assert layout.width > 0 and layout.height > 0
    assert layout.area == pytest.approx(layout.width * layout.height)
    assert len(layout.strip_heights) == 3
    assert layout.height == pytest.approx(sum(layout.strip_heights))
    assert len(layout.cells) == updown_counter_netlist.cell_count()


def test_layout_default_strip_count_minimizes_area(updown_counter_netlist):
    layout = generate_layout(updown_counter_netlist)
    from repro.estimation import AreaEstimator

    best = AreaEstimator(updown_counter_netlist).best()
    assert layout.strips == best.strips


def test_layout_aspect_ratio_follows_strips(updown_counter_netlist):
    flat_layout = generate_layout(updown_counter_netlist, strips=1)
    tall_layout = generate_layout(updown_counter_netlist, strips=6)
    assert flat_layout.aspect_ratio > tall_layout.aspect_ratio


def test_layout_ports_default_sides(updown_counter_netlist):
    layout = generate_layout(updown_counter_netlist, strips=2)
    ports = layout.port_map()
    assert set(ports) == set(updown_counter_netlist.inputs) | set(updown_counter_netlist.outputs)
    assert all(ports[name].side == "left" for name in updown_counter_netlist.inputs)
    assert all(ports[name].side == "right" for name in updown_counter_netlist.outputs)


def test_layout_honours_port_positions(updown_counter_netlist):
    positions = parse_port_positions(
        "CLK left s1.0\nQ[0] bottom 10\nQ[1] bottom 20\nQ[2] bottom 30\nQ[3] bottom 40\nD[0] top 10"
    )
    layout = generate_layout(updown_counter_netlist, strips=3, port_positions=positions)
    ports = layout.port_map()
    assert ports["CLK"].side == "left" and ports["CLK"].x == 0.0
    assert ports["Q[0]"].side == "bottom" and ports["Q[0]"].y == 0.0
    assert ports["D[0]"].side == "top" and ports["D[0]"].y == pytest.approx(layout.height)
    # Relative order on the bottom side follows the order keys.
    assert ports["Q[0]"].x < ports["Q[1]"].x < ports["Q[2]"].x < ports["Q[3]"].x


def test_layout_rectangles_and_ascii(updown_counter_netlist):
    layout = generate_layout(updown_counter_netlist, strips=2)
    rects = layout.rectangles()
    layers = {rect.layer for rect in rects}
    assert {"CWN", "CM1", "CPG", "CM2"} <= layers
    cell_rects = [r for r in rects if r.layer == "CPG"]
    assert len(cell_rects) == updown_counter_netlist.cell_count()
    art = layout.ascii_art(40)
    assert art.count("\n") >= 3
    assert "#" in art


def test_layout_errors(cells, updown_counter_netlist):
    with pytest.raises(LayoutError):
        generate_layout(updown_counter_netlist, strips=0)
    empty = GateNetlist("empty", [], [], cells)
    with pytest.raises(LayoutError):
        generate_layout(empty, strips=1)


def test_layout_area_tracks_shape_estimate(updown_counter_netlist):
    """The layout generator and the area estimator should broadly agree."""
    shape = shape_function(updown_counter_netlist, pareto_only=False)
    for strips in (1, 2, 4):
        layout = generate_layout(updown_counter_netlist, strips=strips)
        estimate = [r for r in shape.alternatives if r.strips == strips][0]
        assert layout.area == pytest.approx(estimate.area, rel=0.6)


# ---------------------------------------------------------------------------
# Slicing floorplanner
# ---------------------------------------------------------------------------


def _fixed(name, width, height):
    return Block.fixed(name, width, height)


def test_row_and_stack_compose_dimensions():
    result = floorplan(row(_fixed("a", 10, 20), _fixed("b", 30, 10)))
    assert result.width == pytest.approx(40)
    assert result.height == pytest.approx(20)
    stacked = floorplan(stack(_fixed("a", 10, 20), _fixed("b", 30, 10)))
    assert stacked.width == pytest.approx(30)
    assert stacked.height == pytest.approx(30)


def test_floorplan_placements_do_not_overlap():
    result = floorplan(
        row(_fixed("a", 10, 20), stack(_fixed("b", 15, 5), _fixed("c", 15, 8)))
    )
    rects = [(p.x, p.y, p.x + p.width, p.y + p.height) for p in result.placements]
    for i, first in enumerate(rects):
        for second in rects[i + 1:]:
            no_overlap = (
                first[2] <= second[0] + 1e-9
                or second[2] <= first[0] + 1e-9
                or first[3] <= second[1] + 1e-9
                or second[3] <= first[1] + 1e-9
            )
            assert no_overlap, (first, second)
    assert 0 < result.utilization() <= 1.0


def test_floorplan_chooses_block_shapes_to_fit():
    flexible = Block("flex", (Shape(10, 40), Shape(20, 20), Shape(40, 10)))
    partner = _fixed("fixed", 30, 12)
    result = floorplan(row(flexible, partner))
    chosen = result.placement_of("flex")
    # In a row the flexible block should pick a short-and-wide option rather
    # than the tall 10x40 one.
    assert chosen.height <= 20 + 1e-9


def test_floorplan_target_aspect_selects_among_near_minimal():
    flexible_a = Block("a", (Shape(10, 40), Shape(20, 20), Shape(40, 10)))
    flexible_b = Block("b", (Shape(10, 40), Shape(20, 20), Shape(40, 10)))
    wide = floorplan(row(flexible_a, flexible_b), target_aspect=4.0)
    square = floorplan(row(flexible_a, flexible_b), target_aspect=1.0)
    assert wide.aspect_ratio >= square.aspect_ratio


def test_floorplan_from_shape_functions(updown_counter_netlist):
    shape = shape_function(updown_counter_netlist)
    block = Block.from_shape_function("counter", shape)
    result = floorplan(row(block, _fixed("ctrl", 200, 300)))
    assert result.placement_of("counter").width in [pytest.approx(s.width) for s in block.shapes]
    assert result.area > 0
    rendered = result.render()
    assert "counter" in rendered and "floorplan" in rendered
