"""Using the Component Query Language exactly as the paper's tools do.

Every query below is taken from (or modelled on) an example in Section 3 or
Appendix B of the paper, issued through the ``ICDB()`` call convention and
through the interactive interface.

Run with::

    python examples/cql_session.py
"""

from __future__ import annotations

from repro import ICDB, OutParam, make_icdb_call
from repro.cql import InteractiveSession


def main() -> None:
    server = ICDB()
    icdb = make_icdb_call(server)

    # Section 3.2.1: which ICDB components implement a five-bit up counter?
    counters = icdb(
        "command: component_query;"
        "component: counter;"
        "function: (INC);"
        "attribute: (size:5);"
        "ICDB components: ?s[]"
    )
    print("component_query ->", counters)

    # ... and which functions does each of them perform?
    for name in counters:
        functions = icdb(
            "command: component_query; ICDBcomponents: %s; function: ?s[]", name
        )
        print(f"  {name}: {functions}")
    print()

    # Section 3.2.2: request a five-bit counter under delay constraints.
    counter_ins = OutParam()
    icdb(
        "command: request_component;"
        "component_name: counter;"
        "attribute: (size:5);"
        "function: (INC);"
        "clock_width: 30;"
        "set_up_time: 30;"
        "generated_component: ?s",
        counter_ins,
    )
    print("request_component ->", counter_ins.value)
    print()

    # Section 3.3: instance query for the delay and the shape function.
    delay_s, shape_function_s = icdb(
        "command: instance_query;"
        "generated_component: %s;"
        "delay: ?s;"
        "shape_function: ?s",
        counter_ins.value,
    )
    print("delay:")
    print(delay_s)
    print("shape function:")
    print(shape_function_s)
    print()

    # Section 3.3: generate the layout of shape alternative 3 with assigned
    # port positions.
    pin_locations = "\n".join(
        [
            "CLK left s1.0",
            "D[0] top 10",
            "D[1] top 20",
            "D[2] top 30",
            "D[3] top 40",
            "D[4] top 50",
            "LOAD left s2.0",
            "DWUP left s3.0",
            "MINMAX right s2.0",
            "Q[0] bottom 10",
            "Q[1] bottom 20",
            "Q[2] bottom 30",
            "Q[3] bottom 40",
            "Q[4] bottom 50",
        ]
    )
    cif_layout = icdb(
        "command: request_component;"
        "instance: %s;"
        "alternative: 3;"
        "port_position: %s;"
        "CIF_layout: ?s",
        counter_ins.value,
        pin_locations,
    )
    print(f"CIF layout: {len(cif_layout.splitlines())} lines")
    print()

    # Connection information (Section 4.1).
    connect = icdb(
        "command: instance_query; instance: %s; connect: ?s", counter_ins.value
    )
    print("connection information:")
    print(connect)
    print()

    # Appendix B.4: the interactive interface.
    session = InteractiveSession(server)
    print("interactive query:")
    print(
        session.run_command(
            "command: request_component;"
            "component_name: Adder_Subtractor;"
            "size: 4;"
            "strategy: fastest;"
            "component_instance: ?s"
        )
    )


if __name__ == "__main__":
    main()
