"""Scaling cold generation across worker processes with ``repro.fleet``.

One server, four spawned worker processes, the documented
warm-then-sweep flow:

* spawn a fleet and attach it to the service (what
  ``python -m repro.net.server --fleet-workers 4`` does);
* ``WarmCache`` a catalog region so every worker holds the component
  family's shared slices before traffic arrives (CDN-style warming);
* run a cold parameter sweep twice -- once on a plain single-process
  service, once through the fleet -- and print the scaling numbers;
* verify the two runs answered byte-identical envelopes (only the
  artifact store paths differ between the two services).

On a single-core container the fleet cannot beat the baseline (process
fan-out is bounded by ``min(workers, cpus)`` -- see ``docs/fleet.md``);
the dispatch, warming and identity story is the same either way.

Run with::

    python examples/fleet_generation.py
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from repro.api import ComponentRequest, ComponentService, WarmCache
from repro.components import standard_catalog
from repro.fleet import FleetDispatcher

SIZES = tuple(range(40, 56))


def sweep_requests():
    return [
        ComponentRequest(
            implementation="alu", parameters={"size": size}, instance_name=f"pt_{size}"
        )
        for size in SIZES
    ]


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="icdb_fleet_"))

    # ------------------------------------------------- single-process baseline
    baseline = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=root / "baseline"
    )
    session = baseline.create_session(client="fleet-example")
    start = time.perf_counter()
    baseline_responses = [session.execute(request) for request in sweep_requests()]
    baseline_elapsed = time.perf_counter() - start
    assert all(response.ok for response in baseline_responses)

    # ------------------------------------------------------- spawn a fleet
    service = ComponentService(
        catalog=standard_catalog(fresh=True), store_root=root / "fleet"
    )
    fleet = FleetDispatcher(service)
    workers = fleet.spawn_workers(4)
    service.attach_fleet(fleet)
    print(f"fleet: {', '.join(handle.address for handle in workers)}")

    # Warm the ALU region on the server *and* (fanout) every worker.
    warm = service.execute(
        WarmCache(entries=({"implementation": "alu", "parameters": {"size": SIZES[0]}},))
    )
    print(
        f"warmed {warm.value['warmed']} region(s) locally, "
        f"{warm.value['workers_warmed']} worker(s) via fanout"
    )

    # ------------------------------------------------- the same sweep, fleet
    fleet_session = service.create_session(client="fleet-example")
    requests = sweep_requests()
    start = time.perf_counter()
    fleet.prewarm_requests(requests)  # what the planner does before run_many
    fleet_responses = [fleet_session.execute(request) for request in requests]
    fleet_elapsed = time.perf_counter() - start
    assert all(response.ok for response in fleet_responses)

    # ------------------------------------------------------------- identity
    identical = all(
        {k: v for k, v in a.value.items() if k != "files"}
        == {k: v for k, v in b.value.items() if k != "files"}
        for a, b in zip(baseline_responses, fleet_responses)
    )

    points = len(SIZES)
    stats = fleet.stats()
    print()
    print(f"cold sweep, {points} points")
    print(f"  single process : {baseline_elapsed:6.2f}s  ({points / baseline_elapsed:5.1f} req/s)")
    print(f"  4-worker fleet : {fleet_elapsed:6.2f}s  ({points / fleet_elapsed:5.1f} req/s)")
    print(f"  speedup        : {baseline_elapsed / fleet_elapsed:5.2f}x "
          f"on {os.cpu_count()} cpu(s)")
    print(f"  dispatched {stats['dispatched']}, stolen {stats['steals']}, "
          f"installed {stats['installs']} stage entries, "
          f"fallbacks {stats['fallbacks']}")
    print(f"  byte-identical results: {identical}")

    fleet.close()
    service.jobs.shutdown()
    baseline.jobs.shutdown()


if __name__ == "__main__":
    main()
