"""Quickstart: ask ICDB for a five-bit up counter and inspect it.

This reproduces the running example of Section 3 of the paper: a component
query to see which implementations can count, a component request with
delay constraints, and an instance query returning the delay report, the
shape function and the connection information.

Run with::

    python examples/quickstart.py

The same flows run against a network ICDB server: see
``examples/remote_quickstart.py`` and ``docs/net.md``.  To make the
server's design state survive crashes, start it with ``--data-dir``
(write-ahead journal + snapshots): see ``examples/durable_server.py``
and ``docs/durability.md``.
"""

from __future__ import annotations

from repro import ICDB, Constraints


def main() -> None:
    icdb = ICDB()
    print(icdb.summary())
    print()

    # --- component query: which implementations can perform INC? -----------
    matches = icdb.component_query(component="counter", functions=["INC"])
    print("Implementations of 'counter' that perform INC:")
    for name in matches["implementation"]:
        print(f"  {name}: {', '.join(icdb.functions_of(name))}")
    print()

    # --- component request: a 5-bit counter with delay constraints ---------
    constraints = Constraints(
        clock_width=30.0,
        setup_time=30.0,
        output_loads={f"Q[{i}]": 10.0 for i in range(5)},
    )
    counter = icdb.request_component(
        component_name="counter",
        functions=["INC"],
        attributes={"size": 5},
        constraints=constraints,
    )
    print(f"Generated component instance: {counter.name}")
    print(f"  implementation : {counter.implementation}")
    print(f"  cells          : {counter.netlist.cell_count()}")
    print(f"  clock width    : {counter.clock_width:.1f} ns")
    print(f"  area estimate  : {counter.area:,.0f} um^2")
    print(f"  constraints met: {counter.met_constraints()}")
    print()

    # --- instance query: delay, shape function, connection information ------
    print("Delay report (paper Section 3.3 format):")
    print(counter.render_delay())
    print()
    print("Shape function:")
    print(counter.render_shape())
    print()
    print("Connection information:")
    print(counter.connection_info)
    print()

    # --- layout request ------------------------------------------------------
    layout = icdb.request_layout(counter.name, alternative=2)
    print(
        f"Layout with alternative 2: {layout.strips} strips, "
        f"{layout.width:.0f} x {layout.height:.0f} um "
        f"({layout.area:,.0f} um^2)"
    )
    print(layout.ascii_art())
    print()

    # --- repeated requests hit the service-layer result cache ---------------
    twin = icdb.request_component(
        component_name="counter",
        functions=["INC"],
        attributes={"size": 5},
        constraints=constraints,
    )
    print(
        f"Same request again: {twin.name} (cached={twin.cached}), "
        f"cache stats {icdb.cache.stats()}"
    )
    print("See examples/typed_service.py for the typed multi-session API.")


if __name__ == "__main__":
    main()
