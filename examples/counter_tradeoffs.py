"""Design-space exploration of counters (Figures 5, 6, 10 and 11).

A synthesis tool uses ICDB to explore tradeoffs before committing to a
component: area versus delay across architecture options, the shape
function for floorplanning, and the effect of output-load and clock-width
constraints on the sized component.

Run with::

    python examples/counter_tradeoffs.py
"""

from __future__ import annotations

from repro import ICDB, Constraints
from repro.components.counters import FIGURE5_CONFIGURATIONS, counter_parameters, UP_DOWN


def area_time_tradeoff(icdb: ICDB) -> None:
    print("=== Figure 5: area / time tradeoff of 5-bit counters ===")
    constraints = Constraints(output_loads={f"Q[{i}]": 10.0 for i in range(5)})
    rows = icdb.area_time_tradeoff(
        "counter", FIGURE5_CONFIGURATIONS, constraints=constraints, delay_output="Q[4]"
    )
    print(f"{'configuration':30s} {'delay to Q[4] (ns)':>18s} {'area (1e4 um^2)':>16s}")
    for row in rows:
        print(f"{row['label']:30s} {row['delay']:18.1f} {row['area'] / 1e4:16.1f}")
    print()


def shape_function(icdb: ICDB) -> None:
    print("=== Figure 6: shape function of the synchronous up/down counter ===")
    instance = icdb.request_component(
        implementation="counter",
        parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
        instance_name="updown_for_shape",
    )
    print(instance.render_shape())
    print()


def load_sweep(icdb: ICDB) -> None:
    print("=== Figure 10: area vs output load at a 25 ns clock width ===")
    print(f"{'load (unit transistors)':>24s} {'clock width (ns)':>18s} {'area (1e4 um^2)':>16s}")
    for load in (10, 20, 30, 40, 50):
        instance = icdb.request_component(
            implementation="counter",
            parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
            constraints=Constraints(
                clock_width=25.0,
                output_loads={f"Q[{i}]": float(load) for i in range(5)},
            ),
            instance_name=f"updown_load_{load}",
        )
        print(f"{load:24d} {instance.clock_width:18.2f} {instance.area / 1e4:16.2f}")
    print()


def clock_width_sweep(icdb: ICDB) -> None:
    print("=== Figure 11: area vs clock-width constraint at a load of 10 ===")
    print(f"{'clock width constraint':>24s} {'achieved (ns)':>14s} {'area (1e4 um^2)':>16s}")
    for clock_width in (22, 24, 26, 28, 30):
        instance = icdb.request_component(
            implementation="counter",
            parameters=counter_parameters(size=5, up_or_down=UP_DOWN),
            constraints=Constraints(
                clock_width=float(clock_width),
                output_loads={f"Q[{i}]": 10.0 for i in range(5)},
            ),
            instance_name=f"updown_cw_{clock_width}",
        )
        print(f"{clock_width:24d} {instance.clock_width:14.2f} {instance.area / 1e4:16.2f}")
    print()


def main() -> None:
    icdb = ICDB()
    area_time_tradeoff(icdb)
    shape_function(icdb)
    load_sweep(icdb)
    clock_width_sweep(icdb)


if __name__ == "__main__":
    main()
