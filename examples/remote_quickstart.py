"""ICDB over the network: the same datapath flow, local and remote.

The paper's ICDB is a component server many synthesis tools talk to
concurrently.  This example starts a real :class:`~repro.net.server.ICDBServer`
on an ephemeral TCP port, connects a :class:`~repro.net.client.RemoteClient`,
and builds the Figure 13 simple computer **twice**: once through the remote
client and once through an in-process :class:`~repro.api.service.Session`
-- then checks that the netlists and estimates are identical, byte for
byte.  It finishes with the pipelined batch path (one frame, many cached
component requests) that `benchmarks/bench_net_throughput.py` measures.

The wire protocol is documented in ``docs/net.md``.  Run with::

    python examples/remote_quickstart.py
"""

from __future__ import annotations

import time

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.net import connect, serve
from repro.synthesis import build_simple_computer


def fresh_service() -> ComponentService:
    return ComponentService(catalog=standard_catalog(fresh=True))


def main() -> None:
    # --- a real server on an ephemeral port --------------------------------
    server = serve(service=fresh_service(), port=0)
    client = connect(server.host, server.port, client="quickstart")
    print(f"connected to icdb://{server.address} as {client.session_id} "
          f"(ping {client.ping():.2f} ms)")

    # --- the same datapath flow, remote vs in-process ----------------------
    remote_computer = build_simple_computer(client, width=8)
    local_computer = build_simple_computer(fresh_service().create_session(), width=8)

    print("\nFigure 13 simple computer, generated over TCP:")
    for label, part in remote_computer.datapath_parts.items():
        print(f"  {part.summary()}")
    print(f"  {remote_computer.control.summary()}")

    mismatches = []
    for label, remote_part in remote_computer.datapath_parts.items():
        local_part = local_computer.datapath_parts[label]
        if (
            remote_part.vhdl_netlist() != local_part.vhdl_netlist()
            or remote_part.render_delay() != local_part.render_delay()
            or remote_part.render_shape() != local_part.render_shape()
            or remote_part.area != local_part.area
        ):
            mismatches.append(label)
    assert not mismatches, f"remote and local flows diverged on {mismatches}"
    assert remote_computer.control.vhdl_netlist() == local_computer.control.vhdl_netlist()

    remote_plan = remote_computer.floorplan_control_left()
    local_plan = local_computer.floorplan_control_left()
    assert remote_plan.area == local_plan.area
    print(
        f"\nremote and in-process flows agree: "
        f"{len(remote_computer.datapath_parts) + 1} components, "
        f"floorplan {remote_plan.width:.0f} x {remote_plan.height:.0f} um "
        f"({remote_plan.area:,.0f} um^2) on both paths"
    )

    # --- pipelining: many cached requests in one frame ---------------------
    request = ComponentRequest(
        implementation="register", attributes={"size": 8}, detail="summary"
    )
    client.execute(request)  # warm the result cache
    start = time.perf_counter()
    responses = client.execute_batch([request], repeat=64)
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in responses)
    print(
        f"pipelined batch: {len(responses)} cached component requests in one "
        f"frame, {elapsed * 1000:.1f} ms "
        f"({len(responses) / elapsed:,.0f} req/s; "
        f"{sum(1 for r in responses if r.cached)} served from the result cache)"
    )

    client.close()
    server.stop()
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
