"""Declarative queries and parallel design-space exploration.

The point of an *intelligent* component database: "something that
executes INC, under a delay bound, as small as possible" is one typed
question, not a hand-rolled loop.  This example shows:

* a :class:`~repro.api.query.QuerySpec` -- predicates, a size sweep, a
  delay bound and a Pareto objective;
* the planner generating the candidates in parallel over the service's
  job workers and answering ranked reports + the Pareto front;
* the ``explain()`` report: stages, prunes, generation-cache hits;
* the same plan over the wire through a :class:`~repro.net.client.RemoteClient`;
* ``area_time_tradeoff`` (Figure 5) as a thin wrapper over a plan.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.api import (
    ComponentService,
    FunctionPredicate,
    QuerySpec,
    TypePredicate,
    max_delay,
    minimize,
    pareto,
)
from repro.net import connect, serve


def main() -> None:
    service = ComponentService(job_workers=4)
    session = service.create_session(client="dse-example")

    # ----------------------------------------------------------- the question
    spec = QuerySpec(
        select=(TypePredicate("Counter"), FunctionPredicate(("INC",))),
        sweep=(("size", (2, 4, 8)),),
        where=(max_delay(40.0),),
        objective=pareto("area", "delay"),
    )
    result = session.plan(spec)

    print("== candidates ==")
    for report in result.candidates:
        metrics = {k: round(v, 1) for k, v in report.metrics.items()}
        marker = " <- front" if report.on_front else ""
        print(f"  {report.label:28s} {report.status:10s} {metrics}{marker}")
    assert result.winner is not None
    print("winner:", result.winner.label)

    print("\n== explain ==")
    for stage in result.explain()["stages"]:
        interesting = {
            k: v
            for k, v in stage.items()
            if k not in ("stage", "elapsed_ms", "generation_cache", "result_cache")
        }
        print(f"  {stage['stage']:10s} {interesting}")

    # A single-metric objective over the same space, top-3 only:
    cheapest = session.plan(
        QuerySpec(
            select=(TypePredicate("Counter"),),
            sweep=(("size", (2, 4, 8)),),
            objective=minimize("area"),
            limit=3,
        )
    )
    print("\nthree cheapest:", [r.label for r in cheapest.winner_reports()])

    # ----------------------------------------------------- the same, remotely
    server = serve(service=ComponentService(job_workers=4), port=0)
    try:
        client = connect(server.host, server.port, client="dse-example")
        remote = client.plan(spec)
        print("\nremote front:", [r.label for r in remote.front_reports()])
        rows = client.area_time_tradeoff(
            "counter", [("ripple", {"size": 4, "type": 1}), ("sync", {"size": 4})]
        )
        print("tradeoff rows:")
        for row in rows:
            print(
                f"  {row['label']:8s} delay={row['delay']:.1f} ns "
                f"area={row['area']:,.0f} um^2 cells={row['cells']}"
            )
        client.close()
    finally:
        server.stop()
    service.jobs.shutdown()


if __name__ == "__main__":
    main()
