"""A behavioral synthesis tool using ICDB as its component server (Figure 1).

The flow mirrors Section 2.1 of the paper: the tool queries ICDB for
component delays to pick a clock width, schedules the data-flow graph
(chaining operations that fit in one clock), allocates and binds operations
to ICDB component instances, builds the datapath structure (registers,
multiplexers) and finally asks ICDB to generate the control logic from an
IIF description.

Run with::

    python examples/behavioral_synthesis.py
"""

from __future__ import annotations

from repro import ICDB, Constraints
from repro.synthesis import (
    allocate,
    build_datapath,
    choose_clock_width,
    expression_dfg,
    function_delay_table,
    schedule_asap,
)


def main() -> None:
    icdb = ICDB()
    icdb.start_a_design("behavioral_example")
    icdb.start_a_transaction()

    # 1. The behaviour: y = (a + b) * (c - d); flag = (a + b) > c
    dfg = expression_dfg("expr_example")
    dfg.validate()
    print(f"Data-flow graph {dfg.name}: {len(dfg.operations)} operations, "
          f"functions {dfg.functions_used()}")

    # 2. Ask ICDB for component delays and pick the clock width.
    delays = function_delay_table(icdb, dfg.functions_used(), width=4)
    clock_width = choose_clock_width(delays)
    print("Component delays from ICDB:")
    for function, delay in delays.items():
        print(f"  {function:4s} {delay:6.1f} ns")
    print(f"Chosen clock width: {clock_width:.1f} ns")
    print()

    # 3. Schedule with chaining.
    schedule = schedule_asap(dfg, clock_width, delays)
    print(schedule.render())
    print()

    # 4. Allocate and bind to ICDB components (multi-function units shared).
    allocation = allocate(icdb, schedule, width=4)
    print(allocation.render())
    print(f"Sharing factor: {allocation.sharing_factor():.2f} operations per unit")
    print()

    # 5. Build the datapath and the generated control logic.
    datapath = build_datapath(icdb, schedule, allocation, width=4)
    print(datapath.render())
    print(f"Total component area: {datapath.total_area():,.0f} um^2")
    print()

    # 6. Keep only the final components in the component list and clean up
    #    the exploration instances (the paper's transaction mechanism).
    for instance in datapath.all_instances():
        icdb.put_in_component_list(instance.name)
    removed = icdb.end_a_transaction()
    print(f"Removed {len(removed)} exploration instances at the end of the transaction")
    print(f"Component list: {icdb.component_list()}")

    # 7. The structural VHDL netlist of the datapath.
    print()
    print("Structural VHDL (first lines):")
    for line in datapath.structure.to_vhdl().splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()
