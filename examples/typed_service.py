"""The typed service-layer API: sessions, envelopes, caching, JSON wire.

The paper's ICDB is a component *server*: many synthesis tools call it
concurrently.  This example shows the service-layer view of that server:

* one :class:`~repro.api.service.ComponentService` holding the shared
  catalog, database, instance registry and result cache;
* two client sessions, each with its own design and transaction state;
* typed requests, response envelopes with timing metadata, and the
  ``to_dict()`` -> JSON -> ``from_dict()`` round trip a socket transport
  would use;
* the result cache serving a repeated component request without
  re-running logic synthesis.

Run with::

    python examples/typed_service.py
"""

from __future__ import annotations

import json

from repro.api import (
    ComponentRequest,
    ComponentService,
    DesignOp,
    FunctionQuery,
    InstanceQuery,
    request_from_dict,
)


def main() -> None:
    service = ComponentService()

    # --- two clients, two isolated design contexts -------------------------
    hls = service.create_session(client="hls-tool")
    floorplanner = service.create_session(client="floorplanner")
    hls.execute(DesignOp(op="start_design", design="risc_core")).unwrap()
    floorplanner.execute(DesignOp(op="start_design", design="dsp_block")).unwrap()

    # --- a typed request, sent through its JSON wire form ------------------
    request = ComponentRequest(
        component_name="counter", functions=("INC",), attributes={"size": 5}
    )
    wire = json.dumps(request.to_dict())
    print(f"wire form ({len(wire)} bytes): {wire[:70]}...")
    response = hls.execute(request_from_dict(json.loads(wire)))
    summary = response.unwrap()
    print(
        f"[{response.session_id}] generated {summary['instance']} "
        f"({summary['cells']} cells) in {response.elapsed_ms:.1f} ms"
    )

    # --- the same request again: served by the result cache ----------------
    again = hls.execute(request)
    print(
        f"[{again.session_id}] generated {again.value['instance']} "
        f"in {again.elapsed_ms:.1f} ms (cached={again.cached})"
    )
    print(f"cache stats: {service.cache.stats()}")

    # --- the other session shares the catalog but not the design -----------
    alu = floorplanner.execute(
        ComponentRequest(implementation="alu", attributes={"size": 4})
    ).unwrap()
    print(
        f"designs: {summary['instance']} -> {summary['design']!r}, "
        f"{alu['instance']} -> {alu['design']!r}"
    )

    # --- structured errors instead of raw exceptions ------------------------
    failed = floorplanner.execute(InstanceQuery(name="no_such_instance"))
    print(f"error envelope: code={failed.error.code} message={failed.error.message!r}")

    # --- classic queries are typed requests too -----------------------------
    adders = hls.execute(FunctionQuery(functions=("ADD", "SUB"))).unwrap()
    print(f"implementations executing ADD+SUB: {', '.join(adders)}")


if __name__ == "__main__":
    main()
