"""Crash-durable ICDB: journal every mutation, recover byte-identically.

The component database is the server of record for generated design
state, so losing it to a crash is not an option.  This example runs the
durability subsystem (``repro.store``) in-process:

1. open a :class:`~repro.store.DurableStore` on an empty directory and
   build a :class:`~repro.api.service.ComponentService` on top of it;
2. generate component instances -- every database mutation is appended
   to the write-ahead journal *before* it applies;
3. throw the in-memory state away (simulating a crash: nothing is
   saved on purpose) and reopen the same directory;
4. verify the recovered database is byte-identical and that snapshots
   bound how much journal the next boot must replay.

The same store backs the network server via
``python -m repro.net.server --data-dir DIR`` (see ``docs/durability.md``),
and ``python -m repro.store inspect --data-dir DIR`` examines a data
directory offline.

Run with::

    python examples/durable_server.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.api import ComponentService
from repro.store import DurableStore


def canonical(database) -> str:
    """One stable string for a whole database -- the comparison golden."""
    return json.dumps(database.to_payload(), sort_keys=True)


def build_service(data_dir: Path) -> "tuple[ComponentService, DurableStore]":
    store = DurableStore(
        data_dir,
        fsync="always",          # acknowledged writes survive power loss
        snapshot_interval=None,  # snapshot explicitly below
    )
    service = ComponentService(
        durable_store=store, store_root=data_dir / "files"
    )
    return service, store


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="icdb-durable-")) / "data"

    # --- first life: generate design state, journaled as it happens --------
    service, store = build_service(data_dir)
    session = service.create_session(client="durable-demo")
    for size in (4, 5, 8):
        instance = session.request_component(
            implementation="register", attributes={"size": size}
        )
        print(f"registered {instance.name:<12} seq is now {store.last_seq}")
    counter = session.request_component(
        component_name="counter", functions=["INC"], attributes={"size": 3}
    )
    print(f"registered {counter.name:<12} seq is now {store.last_seq}")

    golden = canonical(store.database)
    stats = store.stats()
    print(
        f"\njournal: {stats['journal']['appends']} appends, "
        f"{stats['journal']['bytes_written']} bytes, "
        f"{stats['journal']['segments']} segment(s)"
    )

    # A crash keeps no in-memory state.  Close WITHOUT a snapshot so the
    # next boot must rebuild everything from the journal alone.
    store.close(snapshot=False)
    del service, session

    # --- second life: recovery replays the journal --------------------------
    service2, store2 = build_service(data_dir)
    report = store2.recovery_report
    print(
        f"\nrecovered: snapshot seq {report.snapshot_seq}, "
        f"{report.events_replayed} events replayed, "
        f"last seq {report.last_seq}"
    )
    assert canonical(store2.database) == golden, "recovery must be identical"
    print("recovered database is byte-identical to the pre-crash state")

    rows = store2.database.table("instances").rows
    print(f"instances table: {sorted(row['name'] for row in rows)}")

    # A fresh request keeps working -- recovered names are reserved, so
    # the new instance cannot collide with rows that survived the crash.
    fresh = service2.create_session(client="after-crash").request_component(
        implementation="register", attributes={"size": 16}
    )
    print(f"post-recovery request: {fresh.name}")

    # --- snapshots bound the replay tail ------------------------------------
    store2.snapshot()  # compacts: covered journal segments are deleted
    store2.close()
    service3, store3 = build_service(data_dir)
    report3 = store3.recovery_report
    print(
        f"\nafter snapshot: boot from snapshot seq {report3.snapshot_seq} "
        f"replayed only {report3.events_replayed} event(s)"
    )
    store3.close()
    del service3
    print(f"\ndata directory kept for inspection: {data_dir}")
    print(f"try: python -m repro.store inspect --data-dir {data_dir}")


if __name__ == "__main__":
    main()
