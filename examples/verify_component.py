"""Batch simulation and equivalence verification, end to end.

The ICDB verifies every generated component functionally (the paper's
Section 4.3 runs a VHDL simulator over the synthesized design).  This
example shows that verification subsystem at every layer:

* ``session.simulate`` -- batch vector simulation of a generated
  instance, one big-integer lane per vector (combinational sweep) or a
  clocked single-trace run;
* ``session.check_equivalence`` -- the instance's gate netlist checked
  against a flat IIF reference, auto-dispatching between the exhaustive
  / sampled combinational sweep and the sequential lock-step check;
* a counterexample when the netlist is deliberately sabotaged;
* the planner's ``require_equivalent_to`` bound pruning a non-equivalent
  candidate during design-space exploration;
* the same calls over the wire through a RemoteClient.

Run with::

    python examples/verify_component.py
"""

from __future__ import annotations

from repro.api import ComponentService, PlanPoint, QuerySpec, minimize
from repro.components.counters import DOWN_ONLY, UP_ONLY, counter_parameters
from repro.net import connect, serve


def main() -> None:
    service = ComponentService(job_workers=4)
    session = service.create_session(client="verify-example")

    # ----------------------------------------------------- batch simulation
    adder = session.request_component(
        implementation="ripple_carry_adder", parameters={"size": 2}
    )
    # 1+2 and 3+3+1, one lane each; outputs arrive in vector order.
    vectors = [
        {"I0[0]": 1, "I1[1]": 1},
        {"I0[0]": 1, "I0[1]": 1, "I1[0]": 1, "I1[1]": 1, "Cin": 1},
    ]
    answer = session.simulate(adder.name, vectors)
    print("== simulate ==")
    for vector, outputs in zip(vectors, answer["vectors"]):
        print(f"  {vector} -> {outputs}")

    # ------------------------------------------------- equivalence checking
    print("\n== check_equivalence ==")
    verdict = session.check_equivalence(adder.name)
    print(f"  {adder.name}: equivalent={verdict['equivalent']} "
          f"mode={verdict['mode']} vectors={verdict['vectors_checked']}")

    counter = session.request_component(
        implementation="counter",
        parameters=counter_parameters(size=3, up_or_down=UP_ONLY),
    )
    verdict = session.check_equivalence(counter.name)  # clocked -> lock-step
    print(f"  {counter.name}: equivalent={verdict['equivalent']} "
          f"mode={verdict['mode']} vectors={verdict['vectors_checked']}")

    # A sabotaged netlist yields a counterexample, not just "False".
    victim = next(
        inst
        for inst in session.instances.get(adder.name).netlist.all_instances()
        if inst.cell.kind == "XOR2"
    )
    saved = dict(victim.pins)
    victim.pins["I0"] = victim.pins["I1"]
    broken = session.check_equivalence(adder.name)
    print(f"  sabotaged adder: equivalent={broken['equivalent']} "
          f"counterexample={broken['counterexample']} "
          f"outputs={broken['mismatched_outputs']}")
    victim.pins.update(saved)

    # ------------------------------------- planner equivalence bound (DSE)
    print("\n== planner require_equivalent_to ==")
    session.request_component(
        implementation="counter",
        parameters=counter_parameters(size=2, up_or_down=UP_ONLY),
        instance_name="golden_up",
    )
    result = session.plan(
        QuerySpec(
            points=(
                PlanPoint(
                    label="up",
                    implementation="counter",
                    parameters=counter_parameters(size=2, up_or_down=UP_ONLY),
                ),
                PlanPoint(
                    label="down",
                    implementation="counter",
                    parameters=counter_parameters(size=2, up_or_down=DOWN_ONLY),
                ),
            ),
            objective=minimize("area"),
            require_equivalent_to="golden_up",
        )
    )
    for report in result.candidates:
        reason = f"  ({report.reason})" if report.reason else ""
        print(f"  {report.label:6s} {report.status}{reason}")
    print("  winner:", result.winner.label)

    # ----------------------------------------------------------- over TCP
    print("\n== over the wire ==")
    server = serve(service=service, port=0)
    try:
        client = connect(server.host, server.port, client="verify-remote")
        remote = client.check_equivalence(adder.name)
        print(f"  remote check_equivalence: equivalent={remote['equivalent']} "
              f"mode={remote['mode']}")
        assert remote["equivalent"] == session.check_equivalence(adder.name)["equivalent"]
        client.close()
    finally:
        server.stop()
    service.jobs.shutdown()


if __name__ == "__main__":
    main()
