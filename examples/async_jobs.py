"""Asynchronous jobs: submit, stream progress, cancel, and resume.

The v2 service API makes long-running generations first-class server-side
jobs.  This example drives a real TCP server through the whole lifecycle:

1. submit several slow generations concurrently on ONE connection and
   watch them overlap on the server's worker pool;
2. stream pushed progress events while a job runs;
3. cancel a running job cooperatively (no orphan state);
4. kill the connection mid-job, then ``attach`` a fresh connection with
   the session token and collect the finished result.

Run with::

    PYTHONPATH=src python examples/async_jobs.py
"""

from __future__ import annotations

import time

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.core.generation import EmbeddedGenerator
from repro.core.progress import checkpoint
from repro.net import attach, connect, serve

#: Simulated external-tool latency (the paper's generators are external
#: processes the server waits on; the sleep releases the GIL the same way).
TOOL_DELAY = 0.8


class ExternalToolGenerator(EmbeddedGenerator):
    """Sleeps in slices between cooperative checkpoints, like a tool run."""

    def run_flow(self, flat, constraints, target, **kwargs):
        for index in range(8):
            checkpoint("external_tool", 0.05 + 0.5 * index / 8)
            time.sleep(TOOL_DELAY / 8)
        return super().run_flow(flat, constraints, target, **kwargs)


def main() -> None:
    service = ComponentService(
        catalog=standard_catalog(fresh=True), job_workers=4
    )
    service.generator = ExternalToolGenerator(service.cell_library)
    server = serve(service=service, port=0)
    print(f"server on {server.address} (4 job workers)\n")

    # -- 1. concurrent jobs on one connection -------------------------------
    client = connect(server.host, server.port, client="async-demo")
    specs = [("register", 4), ("mux2", 3), ("counter", 5)]
    start = time.perf_counter()
    handles = [
        client.submit_component(
            implementation=impl, attributes={"size": size}, use_cache=False
        )
        for impl, size in specs
    ]
    print(f"submitted {len(handles)} slow jobs: "
          f"{[handle.job_id for handle in handles]}")
    results = [handle.result(timeout=60) for handle in handles]
    elapsed = time.perf_counter() - start
    for summary in results:
        print(f"  {summary['instance']:<12} area={summary['area_um2']:>10,.0f} um^2")
    print(f"3 generations, ~{TOOL_DELAY:.1f}s of tool time each, "
          f"finished in {elapsed:.1f}s wall-clock (overlapped)\n")

    # -- 2. progress streaming ----------------------------------------------
    watched = client.submit_component(
        implementation="alu", attributes={"size": 4}, use_cache=False
    )
    watched.result(timeout=60)
    print("event stream of", watched.job_id)
    for event in watched.events():
        print(f"  #{event.seq}  {event.state:<9} {event.stage:<14} "
              f"{event.progress * 100:5.1f}%")
    print()

    # -- 3. cooperative cancellation ----------------------------------------
    registered_before = set(service.instances.names())
    doomed = client.submit_component(
        implementation="alu", attributes={"size": 8}, use_cache=False
    )
    while doomed.status()["state"] == "queued":
        time.sleep(0.01)
    doomed.cancel()
    doomed.wait(timeout=60)
    response = doomed.response()
    print(f"cancelled {doomed.job_id}: state={doomed.state}, "
          f"error code {response.error.code}")
    no_orphan = set(service.instances.names()) == registered_before
    print(f"no orphan instance registered: {no_orphan}\n")

    # -- 4. disconnect / attach resume --------------------------------------
    survivor = client.submit_component(
        implementation="counter", attributes={"size": 6}, use_cache=False
    )
    token = client.session_token
    job_id = survivor.job_id
    client.transport.close()  # simulate a crash: no goodbye
    print(f"connection killed with {job_id} in flight; session token kept")

    resumed = attach(server.host, server.port, token, client="async-demo-2")
    summary = resumed.job_handle(job_id).result(timeout=60)
    print(f"attached as {resumed.session_id}; job survived: "
          f"{summary['instance']}")

    resumed.close()
    server.stop()
    service.jobs.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()
