"""The Figure 13 experiment: two floorplans of a simple computer.

ICDB generates every datapath component (ALU, registers, program counter,
operand multiplexer) and the control logic.  The floorplanner then composes
the component shape functions in two styles: control logic tall-and-thin on
the left of the datapath stack (roughly square chip) versus short-and-wide
under the datapath row (roughly 2:1 chip), exactly the comparison shown in
Figure 13 of the paper.

Run with::

    python examples/simple_computer.py
"""

from __future__ import annotations

from repro import ICDB
from repro.netlist import floorplan_to_cif
from repro.synthesis import build_simple_computer


def main() -> None:
    icdb = ICDB()
    cpu = build_simple_computer(icdb, width=8)

    print("Generated components:")
    for label, instance in cpu.datapath_parts.items():
        print(f"  {label:18s} {instance.summary()}")
    print(f"  {'control':18s} {cpu.control.summary()}")
    print(f"Sum of component areas: {cpu.total_component_area():,.0f} um^2")
    print()

    left = cpu.floorplan_control_left()
    bottom = cpu.floorplan_control_bottom()

    print("Floorplan A - control logic on the left (tall and thin):")
    print(left.render())
    print()
    print("Floorplan B - control logic on the bottom (short and wide):")
    print(bottom.render())
    print()

    print(f"{'floorplan':22s} {'width x height (um)':>22s} {'area (um^2)':>14s} {'aspect':>8s}")
    for name, result in (("control on the left", left), ("control on the bottom", bottom)):
        print(
            f"{name:22s} {result.width:9.0f} x {result.height:-9.0f} "
            f"{result.area:14,.0f} {result.aspect_ratio:8.2f}"
        )
    print()

    cif = floorplan_to_cif(bottom, name="simple_computer")
    print(f"CIF of the 2:1 floorplan: {len(cif.splitlines())} lines "
          f"(first line: {cif.splitlines()[0]!r})")


if __name__ == "__main__":
    main()
