"""Surviving server restarts and a faulty network, without losing writes.

The paper's ICDB sits between many synthesis tools and one component
server, so every network hiccup and server restart is someone's failed
synthesis run.  This example drives a :class:`~repro.net.resilience.ResilientClient`
through both failure modes, live:

1. **Server restart.**  Components are registered over TCP, the server
   is stopped and a fresh one boots on the same port (sessions gone, as
   after a crash).  The same client object keeps working: it reconnects,
   falls back to a fresh ``hello`` when its resume token is refused, and
   the next request just succeeds.
2. **A faulty network.**  The same traffic runs through a seeded
   :class:`~repro.net.chaos.ChaosProxy` injecting connection resets,
   torn frames and delays.  Every mutating request carries a
   ``request_id`` the server deduplicates, so despite retries after
   ambiguous failures each write lands **exactly once** -- the row count
   proves it.

Retry semantics, breaker states and the drain protocol are documented in
``docs/resilience.md``.  Run with::

    python examples/resilient_client.py
"""

from __future__ import annotations

from repro.api import ComponentService
from repro.net import serve
from repro.net.chaos import ChaosConfig, ChaosProxy
from repro.net.resilience import CircuitBreaker, ResilientClient, RetryPolicy

#: Snappy schedule for a demo: 8 attempts, jittered backoff from 5 ms,
#: give up after 15 s.  Production defaults are gentler.
POLICY = RetryPolicy(
    max_attempts=8, base_backoff_s=0.005, max_backoff_s=0.1,
    deadline_s=15.0, seed=42,
)


def counters(client: ResilientClient) -> str:
    snap = client.resilience.snapshot()["counters"]
    resilience = {k.split(".", 1)[1]: v for k, v in sorted(snap.items())
                  if k.startswith("resilience.")}
    return ", ".join(f"{k}={v}" for k, v in resilience.items()) or "none"


def main() -> None:
    # --- 1. the same client across a server restart ------------------------
    server = serve(service=ComponentService(), port=0)
    host, port = server.host, server.port
    client = ResilientClient.connect(
        host, port, client="resilient-demo", timeout=10.0, policy=POLICY
    )
    first = client.request_component(implementation="register",
                                     attributes={"size": 4})
    print(f"registered {first.name} on icdb://{host}:{port}")

    server.stop()
    server = serve(service=ComponentService(), host=host, port=port)
    print("server restarted on the same port; sessions are gone")

    # Same client object: reconnect + fresh hello happen inside this call.
    second = client.request_component(implementation="counter",
                                      attributes={"size": 6})
    print(f"registered {second.name} after the restart "
          f"({counters(client)})")
    client.close()
    server.stop()

    # --- 2. exactly-once writes through a faulty network -------------------
    service = ComponentService()
    server = serve(service=service, port=0)
    chaos = ChaosConfig(seed=7, reset_rate=0.05, torn_rate=0.03,
                        delay_rate=0.10, delay_s=0.002)
    with ChaosProxy(server.host, server.port, chaos) as proxy:
        client = ResilientClient.connect(
            proxy.host, proxy.port, client="chaos-demo", timeout=10.0,
            policy=POLICY, breaker=CircuitBreaker(failure_threshold=100),
        )
        names = [
            client.request_component(
                implementation="register", attributes={"size": 2 + i}
            ).name
            for i in range(25)
        ]
        print(f"\n{len(names)} writes through a faulty proxy "
              f"(injected: {dict(proxy.faults)})")
        print(f"client work: {counters(client)}")
        client.close()

    # Count rows over a clean connection, straight to the server.
    auditor = ResilientClient.connect(server.host, server.port,
                                      client="auditor", timeout=10.0)
    rows = auditor.meta("db_rows", table="instances")
    auditor.close()
    stored = sorted(row["name"] for row in rows)
    assert stored == sorted(names), (stored, names)
    print(f"database holds exactly the {len(stored)} acknowledged rows -- "
          f"no write lost, none duplicated")
    server.stop()


if __name__ == "__main__":
    main()
