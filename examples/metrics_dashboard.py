"""The observability surface, end to end: metrics, logs, dashboard.

Starts a real ICDB server with a structured request log and a periodic
JSON snapshot exporter, drives mixed cached / uncached / asynchronous
traffic at it, then observes the result three ways:

* ``client.metrics()`` -- the typed ``GetMetrics`` request over TCP
  (cache invariants checked through the export);
* the request log -- one JSON line per request with latency, error code
  and cache deltas (plus the ``--slow-ms``-style slow flag);
* a rendered frame of the ``python -m repro.obs.admin`` dashboard.

Everything here is the same machinery the live console uses -- see
``docs/observability.md``.  Run with::

    python examples/metrics_dashboard.py
"""

from __future__ import annotations

import io
import json
import tempfile
from pathlib import Path

from repro.api import ComponentRequest, ComponentService
from repro.components import standard_catalog
from repro.net import connect, serve
from repro.obs import MetricsExporter, RequestLog, validate_snapshot
from repro.obs.admin import render_dashboard


def main() -> None:
    # --- a server with the full operability surface ------------------------
    request_log = io.StringIO()
    service = ComponentService(
        catalog=standard_catalog(fresh=True),
        request_log=RequestLog(stream=request_log, slow_ms=50.0),
    )
    exporter_path = Path(tempfile.mkdtemp()) / "metrics.json"
    exporter = MetricsExporter(service.metrics, exporter_path, interval=5.0).start()
    server = serve(service=service, port=0)
    client = connect(server.host, server.port, client="dashboard-example")
    print(f"server up on icdb://{server.address}")

    # --- mixed traffic: cached, pipelined, async, and one failure ----------
    signature = ComponentRequest(
        implementation="register", attributes={"size": 4}, detail="summary"
    )
    client.execute(signature)                       # cold: generates
    for response in client.execute_batch([signature], repeat=8):
        assert response.cached                      # warm: result cache
    handle = client.submit(
        ComponentRequest(
            implementation="alu", attributes={"size": 4}, detail="summary"
        ),
        label="async-alu",
    )
    handle.result(60)
    failed = client.execute(ComponentRequest(implementation="no_such_thing"))
    assert not failed.ok

    # --- observe through the typed GetMetrics request ----------------------
    snap = client.metrics()
    counters = snap["counters"]
    print("\nGetMetrics over TCP:")
    print(f"  requests.total        {counters['requests.total']:>6}")
    print(f"  requests.cached       {counters['requests.cached']:>6}")
    print(f"  requests.errors       {counters['requests.errors']:>6}")
    print(f"  cache.result.hits     {counters['cache.result.hits']:>6}")
    print(f"  cache.result.lookups  {counters['cache.result.lookups']:>6}")
    print(f"  jobs.done             {counters['jobs.done']:>6}")
    # The export IS the in-process accounting -- same invariants.
    assert (
        counters["cache.result.hits"] + counters["cache.result.misses"]
        == counters["cache.result.lookups"]
    )
    assert (
        counters["cache.result.entries"]
        == counters["cache.result.stores"] - counters["cache.result.evictions"]
    )

    # --- the structured request log ----------------------------------------
    service.request_log.flush()  # lines are batch-buffered off the hot path
    lines = [json.loads(line) for line in request_log.getvalue().splitlines()]
    slow = [line for line in lines if line["slow"]]
    print(f"\nrequest log: {len(lines)} lines, {len(slow)} over the 50 ms "
          f"slow threshold; last line:")
    print("  " + json.dumps(lines[-1], sort_keys=True))

    # --- one frame of the admin dashboard ----------------------------------
    print("\n" + render_dashboard(snap, address=server.address, req_per_s=None))

    # --- the exporter's on-disk snapshot (what CI schema-validates) --------
    exporter.stop(write_final=True)
    on_disk = validate_snapshot(json.loads(exporter_path.read_text()))
    print(f"\nexporter wrote a valid v{on_disk['version']} snapshot "
          f"to {exporter_path}")

    client.close()
    server.stop()


if __name__ == "__main__":
    main()
