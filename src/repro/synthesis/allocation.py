"""Resource allocation and binding against ICDB components.

Section 2.1: "When doing resource allocation, ICDB informs the synthesis
tool which components perform the requested functions.  Thus, the tools can
select appropriate components according to the delay requirements."  The
allocator here asks ICDB which implementations perform each function,
requests one component instance per functional unit, and binds operations
to units such that operations busy in the same control step never share a
unit.  Multi-function components (an ALU performing ADD and SUB) are reused
across functions whenever possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..constraints import Constraints
from ..core.icdb import ICDB
from ..core.instances import ComponentInstance
from .dfg import DataFlowGraph, Operation
from .scheduling import Schedule


class AllocationError(RuntimeError):
    """Raised when operations cannot be bound to components."""


@dataclass
class FunctionalUnit:
    """One allocated component instance and the operations bound to it."""

    name: str
    instance: ComponentInstance
    functions: Tuple[str, ...]
    bound_operations: List[str] = field(default_factory=list)
    busy_steps: Set[int] = field(default_factory=set)

    @property
    def area(self) -> float:
        return self.instance.area


@dataclass
class Allocation:
    """The result of binding a schedule to ICDB component instances."""

    schedule: Schedule
    units: List[FunctionalUnit] = field(default_factory=list)
    binding: Dict[str, str] = field(default_factory=dict)  # operation -> unit name

    def unit(self, name: str) -> FunctionalUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise AllocationError(f"no functional unit named {name!r}")

    def unit_of(self, operation_name: str) -> FunctionalUnit:
        return self.unit(self.binding[operation_name])

    def total_area(self) -> float:
        return sum(unit.area for unit in self.units)

    def units_for_function(self, function: str) -> List[FunctionalUnit]:
        return [unit for unit in self.units if function in unit.functions]

    def sharing_factor(self) -> float:
        """Average number of operations per functional unit."""
        if not self.units:
            return 0.0
        return len(self.binding) / len(self.units)

    def render(self) -> str:
        lines = [f"allocation for {self.schedule.dfg.name}: {len(self.units)} units"]
        for unit in self.units:
            operations = ", ".join(unit.bound_operations) or "-"
            lines.append(
                f"  {unit.name:24s} [{'/'.join(unit.functions)}] "
                f"area={unit.area:,.0f} um^2 ops: {operations}"
            )
        return "\n".join(lines)


def _steps_of(schedule: Schedule, operation: Operation) -> Set[int]:
    entry = schedule.entry(operation.name)
    return set(range(entry.start_step, entry.end_step + 1))


def allocate(
    icdb: ICDB,
    schedule: Schedule,
    width: int = 8,
    constraints: Optional[Constraints] = None,
    prefer_multifunction: bool = True,
) -> Allocation:
    """Bind every scheduled operation to an ICDB component instance.

    Operations are processed in schedule order.  An operation is bound to an
    existing unit when the unit performs the operation's function and is not
    busy in any of the operation's control steps; otherwise a new component
    instance is requested from ICDB.  With ``prefer_multifunction`` the
    request asks for a component covering *all* functions still unbound in
    the graph (so an ALU gets picked over separate adders and subtractors
    when one exists).
    """
    allocation = Allocation(schedule=schedule)
    dfg = schedule.dfg
    ordered = sorted(
        dfg.topological_order(), key=lambda op: schedule.entry(op.name).start_step
    )
    remaining_functions = [op.function for op in ordered]

    for operation in ordered:
        steps = _steps_of(schedule, operation)
        remaining_functions.remove(operation.function)
        unit = _find_free_unit(allocation, operation.function, steps)
        if unit is None:
            functions = [operation.function]
            if prefer_multifunction:
                # Ask for a component that also covers other pending functions
                # if a single implementation exists for the combination.
                extras = [
                    function
                    for function in dict.fromkeys(remaining_functions)
                    if function != operation.function
                ]
                for extra in extras:
                    if icdb.function_query(functions + [extra]):
                        functions.append(extra)
            instance = icdb.request_component(
                functions=functions,
                attributes={"size": width},
                constraints=constraints,
                instance_name=icdb.instances.new_name(
                    f"fu_{'_'.join(f.lower() for f in functions)}"
                ),
            )
            unit = FunctionalUnit(
                name=instance.name,
                instance=instance,
                functions=tuple(instance.functions),
            )
            allocation.units.append(unit)
        unit.bound_operations.append(operation.name)
        unit.busy_steps |= steps
        allocation.binding[operation.name] = unit.name
    return allocation


def _find_free_unit(
    allocation: Allocation, function: str, steps: Set[int]
) -> Optional[FunctionalUnit]:
    for unit in allocation.units:
        if function in unit.functions and not (unit.busy_steps & steps):
            return unit
    return None


def storage_requirements(schedule: Schedule) -> Dict[str, Tuple[int, int]]:
    """Values that must be registered: produced in one step, used in a later one.

    Returns ``value -> (producing step, last consuming step)``; the datapath
    builder allocates a register (an ICDB STORAGE component) per entry.
    """
    dfg = schedule.dfg
    lifetime: Dict[str, Tuple[int, int]] = {}
    for operation in dfg.operations:
        entry = schedule.entry(operation.name)
        produced = entry.end_step
        for consumer in dfg.successors(operation):
            consumer_entry = schedule.entry(consumer.name)
            if consumer_entry.start_step > produced or operation.result in dfg.outputs:
                first = lifetime.get(operation.result, (produced, produced))
                lifetime[operation.result] = (
                    produced,
                    max(first[1], consumer_entry.start_step),
                )
        if operation.result in dfg.outputs and operation.result not in lifetime:
            lifetime[operation.result] = (produced, produced + 1)
    return lifetime
