"""Data-flow graphs for the behavioral synthesis client.

ICDB itself is a component server; to demonstrate its role in a behavioral
synthesis system (Figure 1 of the paper) the repository includes a small
high-level-synthesis client.  Behaviour is captured as a data-flow graph of
GENUS function nodes; the scheduler and allocator in the sibling modules
turn it into a microarchitecture using components requested from ICDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..components import genus


class DfgError(ValueError):
    """Raised on malformed data-flow graphs."""


@dataclass
class Operation:
    """One operation node: a GENUS function applied to named values."""

    name: str
    function: str
    operands: Tuple[str, ...]
    result: str
    width: int = 8

    def __post_init__(self) -> None:
        self.function = genus.normalize_function(self.function)


@dataclass
class DataFlowGraph:
    """A behavioural description: primary values and operations over them."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    operations: List[Operation] = field(default_factory=list)
    widths: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ build

    def add_input(self, name: str, width: int = 8) -> str:
        if name in self.inputs:
            raise DfgError(f"input {name!r} already declared")
        self.inputs.append(name)
        self.widths[name] = width
        return name

    def add_output(self, name: str) -> str:
        if name not in self.widths:
            raise DfgError(f"output {name!r} is not produced by any operation or input")
        if name not in self.outputs:
            self.outputs.append(name)
        return name

    def add_operation(
        self,
        name: str,
        function: str,
        operands: Sequence[str],
        result: Optional[str] = None,
        width: Optional[int] = None,
    ) -> Operation:
        if any(op.name == name for op in self.operations):
            raise DfgError(f"operation {name!r} already exists")
        for operand in operands:
            if operand not in self.widths:
                raise DfgError(f"operand {operand!r} of {name!r} is not defined yet")
        result_name = result or f"{name}_out"
        if result_name in self.widths:
            raise DfgError(f"value {result_name!r} already produced")
        if width is None:
            width = max(self.widths[operand] for operand in operands)
        operation = Operation(
            name=name,
            function=function,
            operands=tuple(operands),
            result=result_name,
            width=width,
        )
        self.operations.append(operation)
        self.widths[result_name] = width
        return operation

    # ------------------------------------------------------------------ query

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise DfgError(f"no operation named {name!r}")

    def producer_of(self, value: str) -> Optional[Operation]:
        for operation in self.operations:
            if operation.result == value:
                return operation
        return None

    def predecessors(self, operation: Operation) -> List[Operation]:
        preds = []
        for operand in operation.operands:
            producer = self.producer_of(operand)
            if producer is not None:
                preds.append(producer)
        return preds

    def successors(self, operation: Operation) -> List[Operation]:
        return [
            candidate
            for candidate in self.operations
            if operation.result in candidate.operands
        ]

    def functions_used(self) -> List[str]:
        seen: List[str] = []
        for operation in self.operations:
            if operation.function not in seen:
                seen.append(operation.function)
        return seen

    def topological_order(self) -> List[Operation]:
        """Operations in dependency order (raises on cycles)."""
        order: List[Operation] = []
        placed: Set[str] = set()
        remaining = list(self.operations)
        guard = len(remaining) + 1
        while remaining and guard:
            guard -= 1
            progress = False
            for operation in list(remaining):
                ready = all(
                    self.producer_of(operand) is None or operand in placed
                    for operand in operation.operands
                )
                if ready:
                    order.append(operation)
                    placed.add(operation.result)
                    remaining.remove(operation)
                    progress = True
            if not progress:
                raise DfgError(f"data-flow graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        self.topological_order()
        for output in self.outputs:
            if output not in self.widths:
                raise DfgError(f"output {output!r} is never produced")


def expression_dfg(name: str = "sample") -> DataFlowGraph:
    """A small example DFG: ``y = (a + b) * (c - d); flag = (a + b) > c``.

    Used by the quickstart example and the Figure 1 benchmark.
    """
    dfg = DataFlowGraph(name)
    for value in ("a", "b", "c", "d"):
        dfg.add_input(value, width=4)
    dfg.add_operation("add1", "ADD", ("a", "b"), result="sum")
    dfg.add_operation("sub1", "SUB", ("c", "d"), result="diff")
    dfg.add_operation("mul1", "MUL", ("sum", "diff"), result="y")
    dfg.add_operation("cmp1", "GT", ("sum", "c"), result="flag", width=1)
    dfg.add_output("y")
    dfg.add_output("flag")
    return dfg
