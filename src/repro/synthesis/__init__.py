"""Behavioral-synthesis client demonstrating ICDB's role (Figure 1)."""

from .allocation import Allocation, AllocationError, FunctionalUnit, allocate, storage_requirements
from .datapath import (
    Datapath,
    DatapathError,
    IcdbClient,
    SimpleComputer,
    build_datapath,
    build_simple_computer,
    control_logic_iif,
    generate_control_logic,
)
from .dfg import DataFlowGraph, DfgError, Operation, expression_dfg
from .scheduling import (
    Schedule,
    ScheduledOperation,
    SchedulingError,
    choose_clock_width,
    function_delay_table,
    schedule_asap,
)

__all__ = [
    "Allocation",
    "AllocationError",
    "DataFlowGraph",
    "Datapath",
    "DatapathError",
    "DfgError",
    "FunctionalUnit",
    "IcdbClient",
    "Operation",
    "Schedule",
    "ScheduledOperation",
    "SchedulingError",
    "SimpleComputer",
    "allocate",
    "build_datapath",
    "build_simple_computer",
    "choose_clock_width",
    "control_logic_iif",
    "expression_dfg",
    "function_delay_table",
    "generate_control_logic",
    "schedule_asap",
    "storage_requirements",
]
