"""Operation scheduling using ICDB delay information.

Section 2.1: "During operator scheduling, a synthesis tool can use the
component delay time to determine the proper clock width ...  A behavioral
synthesis tool can also use the information to decide whether to chain two
operations together in a single clock, or whether to place an operation in
a multiple clock step."  The list scheduler here does exactly that: it asks
ICDB for the worst delay of a component executing each function, chains
operations while the accumulated path delay fits in the clock width, and
spills an operation into several clock steps when its delay exceeds one
clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..constraints import Constraints
from ..core.icdb import ICDB
from .dfg import DataFlowGraph, Operation


class SchedulingError(RuntimeError):
    """Raised when a schedule cannot be built."""


@dataclass
class ScheduledOperation:
    """One operation with its control-step assignment."""

    operation: Operation
    start_step: int
    end_step: int
    delay: float
    chained_after: Tuple[str, ...] = ()

    @property
    def steps(self) -> int:
        return self.end_step - self.start_step + 1


@dataclass
class Schedule:
    """The result of scheduling a data-flow graph."""

    dfg: DataFlowGraph
    clock_width: float
    entries: List[ScheduledOperation] = field(default_factory=list)
    function_delays: Dict[str, float] = field(default_factory=dict)

    @property
    def steps(self) -> int:
        return max((entry.end_step for entry in self.entries), default=0) + 1

    def entry(self, operation_name: str) -> ScheduledOperation:
        for entry in self.entries:
            if entry.operation.name == operation_name:
                return entry
        raise SchedulingError(f"operation {operation_name!r} is not scheduled")

    def operations_in_step(self, step: int) -> List[ScheduledOperation]:
        return [e for e in self.entries if e.start_step <= step <= e.end_step]

    def functions_per_step(self) -> List[Dict[str, int]]:
        """How many units of each function are busy in every step."""
        usage: List[Dict[str, int]] = [dict() for _ in range(self.steps)]
        for entry in self.entries:
            for step in range(entry.start_step, entry.end_step + 1):
                function = entry.operation.function
                usage[step][function] = usage[step].get(function, 0) + 1
        return usage

    def render(self) -> str:
        lines = [
            f"schedule of {self.dfg.name}: {self.steps} control steps at "
            f"{self.clock_width:.1f} ns"
        ]
        for step in range(self.steps):
            names = [
                f"{e.operation.name}({e.operation.function})"
                for e in self.entries
                if e.start_step == step
            ]
            lines.append(f"  step {step}: " + (", ".join(names) if names else "-"))
        return "\n".join(lines)


def function_delay_table(
    icdb: ICDB,
    functions: Sequence[str],
    width: int,
    constraints: Optional[Constraints] = None,
) -> Dict[str, float]:
    """Worst output delay of an ICDB component for each function.

    One component instance is generated per function (at the requested bit
    width) and its worst input-to-output delay recorded; the instances are
    regular ICDB instances and stay available for the allocation phase.
    """
    table: Dict[str, float] = {}
    for function in functions:
        instance = icdb.request_component(
            functions=[function],
            attributes={"size": width},
            constraints=constraints,
            instance_name=icdb.instances.new_name(f"sched_{function.lower()}"),
        )
        table[function] = instance.worst_delay()
    return table


def schedule_asap(
    dfg: DataFlowGraph,
    clock_width: float,
    function_delays: Mapping[str, float],
    allow_chaining: bool = True,
) -> Schedule:
    """ASAP list scheduling with optional operation chaining.

    Every operation starts as early as its operands allow.  When chaining is
    enabled an operation may share the control step of its predecessors as
    long as the accumulated combinational delay stays within the clock
    width; multi-cycle operations occupy ``ceil(delay / clock_width)``
    steps.
    """
    if clock_width <= 0:
        raise SchedulingError("clock width must be positive")
    schedule = Schedule(dfg=dfg, clock_width=clock_width, function_delays=dict(function_delays))
    #: per produced value: (step it becomes available in, accumulated delay inside that step)
    available: Dict[str, Tuple[int, float]] = {name: (0, 0.0) for name in dfg.inputs}

    for operation in dfg.topological_order():
        delay = float(function_delays.get(operation.function, clock_width))
        earliest_step = 0
        start_offset = 0.0
        chained: List[str] = []
        for operand in operation.operands:
            step, offset = available.get(operand, (0, 0.0))
            if step > earliest_step or (step == earliest_step and offset > start_offset):
                earliest_step, start_offset = step, offset
        if not allow_chaining:
            start_offset = 0.0
            producers = [dfg.producer_of(op) for op in operation.operands]
            if any(p is not None for p in producers):
                earliest_step = max(
                    schedule.entry(p.name).end_step + 1 for p in producers if p is not None
                )
        elif start_offset > 0 and start_offset + delay > clock_width:
            # Cannot chain: move to the next step boundary.
            earliest_step += 1
            start_offset = 0.0
        else:
            chained = [
                operand
                for operand in operation.operands
                if available.get(operand, (0, 0.0))[0] == earliest_step
                and available.get(operand, (0, 0.0))[1] > 0
            ]

        total = start_offset + delay
        extra_steps = max(0, int(math.ceil(total / clock_width)) - 1)
        end_step = earliest_step + extra_steps
        end_offset = total - extra_steps * clock_width
        if extra_steps:
            chained = []
        schedule.entries.append(
            ScheduledOperation(
                operation=operation,
                start_step=earliest_step,
                end_step=end_step,
                delay=delay,
                chained_after=tuple(chained),
            )
        )
        available[operation.result] = (end_step, max(end_offset, 0.0))
    return schedule


def choose_clock_width(function_delays: Mapping[str, float], slack: float = 1.1) -> float:
    """Pick a clock width from component delays (Section 2.1's use case).

    The slowest single-function delay times a small slack factor; this is
    the simplest of the clock-selection policies the paper alludes to.
    """
    if not function_delays:
        raise SchedulingError("no function delays supplied")
    return max(function_delays.values()) * slack
