"""Microarchitecture (datapath + control) construction on top of ICDB.

Two builders live here:

* :func:`build_datapath` turns a schedule + allocation into a structural
  netlist of ICDB component instances (functional units, registers for
  values that cross control steps, multiplexers for shared units) plus a
  control-logic IIF description that ICDB turns into a component -- the
  control-generation path of Section 3.2.2.

* :func:`build_simple_computer` assembles the "simple computer" of
  Figure 13: an ALU, two operand registers, an accumulator, a program
  counter, an operand multiplexer and generated control logic, and returns
  the pieces the floorplanning benchmark composes in the two styles shown
  in the paper (control logic tall-and-thin on the left vs. short-and-wide
  on the bottom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING, Tuple, Union

from ..components.counters import counter_parameters, TYPE_SYNCHRONOUS, UP_ONLY
from ..api.service import Session
from ..constraints import Constraints
from ..core.icdb import ICDB
from ..core.instances import ComponentInstance
from ..estimation.shape import ShapeFunction
from ..layout.floorplan import Block, FloorplanResult, floorplan, row, stack
from ..netlist.structural import StructuralNetlist
from .allocation import Allocation, storage_requirements
from .dfg import DataFlowGraph
from .scheduling import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.client import RemoteClient

#: Builders accept the legacy facade, one client's service session, or a
#: network :class:`~repro.net.client.RemoteClient`; all three expose
#: ``request_component`` and the shared instance registry's naming surface.
IcdbClient = Union[ICDB, Session, "RemoteClient"]


def _generate_components(
    icdb: IcdbClient,
    specs: Sequence[Tuple[str, Dict[str, object]]],
    parallel: bool = False,
) -> Dict[str, ComponentInstance]:
    """Generate the named component specs, optionally as concurrent jobs.

    ``specs`` is an ordered ``(key, request_component kwargs)`` list; every
    spec must carry an explicit ``instance_name`` so the result is
    identical whichever path runs.  With ``parallel`` and a client that
    exposes ``submit_component`` (sessions and remote clients -- the
    legacy facade falls back to sequential calls), all specs are submitted
    to the job scheduler first and collected in order afterwards, so
    independent generations overlap while the answer dict keeps the spec
    order.
    """
    submit = getattr(icdb, "submit_component", None) if parallel else None
    if submit is None:
        return {key: icdb.request_component(**kwargs) for key, kwargs in specs}
    handles = [(key, submit(**kwargs)) for key, kwargs in specs]
    return {key: handle.instance() for key, handle in handles}


class DatapathError(RuntimeError):
    """Raised when a microarchitecture cannot be assembled."""


@dataclass
class Datapath:
    """A built microarchitecture: instances, structure and control logic."""

    name: str
    structure: StructuralNetlist
    functional_units: List[ComponentInstance] = field(default_factory=list)
    registers: List[ComponentInstance] = field(default_factory=list)
    multiplexers: List[ComponentInstance] = field(default_factory=list)
    control: Optional[ComponentInstance] = None

    def all_instances(self) -> List[ComponentInstance]:
        parts = list(self.functional_units) + list(self.registers) + list(self.multiplexers)
        if self.control is not None:
            parts.append(self.control)
        return parts

    def total_area(self) -> float:
        return sum(instance.area for instance in self.all_instances())

    def render(self) -> str:
        lines = [f"datapath {self.name}: {len(self.all_instances())} components"]
        for instance in self.all_instances():
            lines.append(f"  {instance.summary()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Control logic generation
# ---------------------------------------------------------------------------


def control_logic_iif(
    name: str,
    steps: int,
    command_bits: int,
) -> str:
    """IIF for a one-hot control sequencer.

    ``steps`` one-hot state flip-flops advance on every clock (wrapping
    around); each state drives ``command_bits`` command outputs through a
    small decode plane.  This is the kind of control logic the paper's
    control synthesis tool hands to ICDB as boolean equations plus a
    register list.
    """
    if steps < 2:
        raise DatapathError("a control sequencer needs at least two steps")
    return f"""
NAME: {name};
PARAMETER: steps, cbits;
INORDER: CLK, RESET;
OUTORDER: CMD[cbits], STATE[steps];
PIIFVARIABLE: NEXT[steps];
VARIABLE: i, j;
{{
    #for(i=0; i<steps; i++)
    {{
        #if (i == 0)
            NEXT[i] = STATE[steps-1] + RESET;
        #else
            NEXT[i] = STATE[i-1] * !RESET;
        STATE[i] = (NEXT[i]) @(~r CLK);
    }}
    #for(j=0; j<cbits; j++)
    {{
        #for(i=0; i<steps; i++)
        {{
            #if ((i + j) % 3 != 0)
                CMD[j] += STATE[i];
        }}
    }}
}}
"""


def generate_control_logic(
    icdb: IcdbClient,
    name: str,
    steps: int,
    command_bits: int,
    constraints: Optional[Constraints] = None,
) -> ComponentInstance:
    """Ask ICDB to generate the control-logic component from IIF."""
    source = control_logic_iif(name.upper(), steps, command_bits)
    return icdb.request_component(
        iif=source,
        parameters={"steps": steps, "cbits": command_bits},
        constraints=constraints,
        instance_name=icdb.instances.new_name(name),
    )


# ---------------------------------------------------------------------------
# Datapath from schedule + allocation
# ---------------------------------------------------------------------------


def build_datapath(
    icdb: IcdbClient,
    schedule: Schedule,
    allocation: Allocation,
    width: int = 8,
    name: Optional[str] = None,
    constraints: Optional[Constraints] = None,
    parallel: bool = False,
) -> Datapath:
    """Assemble the microarchitecture for a scheduled, allocated DFG.

    With ``parallel`` (and a job-capable client) the independent register
    and multiplexer generations are submitted as concurrent jobs and
    collected in order -- same instances, overlapped generation time.
    """
    dfg = schedule.dfg
    datapath_name = name or f"{dfg.name}_datapath"
    structure = StructuralNetlist(
        name=datapath_name,
        inputs=list(dfg.inputs) + ["CLK", "RESET"],
        outputs=list(dfg.outputs),
    )
    datapath = Datapath(name=datapath_name, structure=structure)

    for unit in allocation.units:
        datapath.functional_units.append(unit.instance)
        operand_nets = {
            f"I{i}": f"{unit.name}_in{i}" for i in range(2)
        }
        structure.add(unit.name, unit.instance.name, {**operand_nets, "O0": f"{unit.name}_out"})

    # Registers for values that live across control steps (and the
    # outputs), plus a multiplexer in front of every functional unit that
    # serves more than one operation (operand steering).  All of these
    # generations are independent, so they fan out as concurrent jobs on
    # the parallel path; names are allocated up front either way, keeping
    # the result identical.
    lifetimes = storage_requirements(schedule)
    specs: List[Tuple[str, Dict[str, object]]] = []
    for value, (produced, last_use) in sorted(lifetimes.items()):
        specs.append(
            (
                f"reg_{value}",
                dict(
                    component_name="Register",
                    functions=["STORAGE"],
                    attributes={"size": width},
                    constraints=constraints,
                    instance_name=icdb.instances.new_name(f"reg_{value}"),
                ),
            )
        )
    shared_units = [
        unit for unit in allocation.units if len(unit.bound_operations) > 1
    ]
    for unit in shared_units:
        specs.append(
            (
                f"mux_{unit.name}",
                dict(
                    component_name="Mux_scl",
                    functions=["MUX_SCL"],
                    attributes={"size": width},
                    constraints=constraints,
                    instance_name=icdb.instances.new_name(f"mux_{unit.name}"),
                ),
            )
        )
    generated = _generate_components(icdb, specs, parallel=parallel)

    for value, (produced, last_use) in sorted(lifetimes.items()):
        register = generated[f"reg_{value}"]
        datapath.registers.append(register)
        structure.add(
            f"reg_{value}",
            register.name,
            {"I": value, "Q": f"{value}_q", "CLK": "CLK", "LOAD": f"load_{value}"},
        )
    for unit in shared_units:
        mux = generated[f"mux_{unit.name}"]
        datapath.multiplexers.append(mux)
        structure.add(
            f"mux_{unit.name}",
            mux.name,
            {"I0": f"{unit.name}_src0", "I1": f"{unit.name}_src1",
             "SEL": f"sel_{unit.name}", "O": f"{unit.name}_in0"},
        )

    # Control logic: one command bit per register load plus per mux select.
    command_bits = max(1, len(datapath.registers) + len(datapath.multiplexers))
    control = generate_control_logic(
        icdb,
        f"{datapath_name}_control",
        steps=max(2, schedule.steps),
        command_bits=command_bits,
        constraints=constraints,
    )
    datapath.control = control
    structure.add(
        "control",
        control.name,
        {"CLK": "CLK", "RESET": "RESET", "CMD[0]": "cmd0"},
    )
    return datapath


# ---------------------------------------------------------------------------
# The Figure 13 simple computer
# ---------------------------------------------------------------------------


@dataclass
class SimpleComputer:
    """The components of the Figure 13 example and its floorplans."""

    datapath_parts: Dict[str, ComponentInstance]
    control: ComponentInstance
    width: int

    def part_block(self, label: str) -> Block:
        instance = self.datapath_parts[label]
        return Block.from_shape_function(label, instance.shape)

    def control_block(self) -> Block:
        return Block.from_shape_function("control", self.control.shape)

    def datapath_blocks(self) -> List[Block]:
        return [self.part_block(label) for label in self.datapath_parts]

    def floorplan_control_left(self) -> FloorplanResult:
        """Control logic placed tall-and-thin on the left of the datapath."""
        datapath = stack(*self.datapath_blocks())
        return floorplan(row(self.control_block(), datapath), target_aspect=1.0)

    def floorplan_control_bottom(self) -> FloorplanResult:
        """Control logic placed short-and-wide under the datapath."""
        datapath = row(*self.datapath_blocks())
        return floorplan(stack(self.control_block(), datapath), target_aspect=2.0)

    def total_component_area(self) -> float:
        total = sum(inst.area for inst in self.datapath_parts.values())
        return total + self.control.area


def build_simple_computer(
    icdb: IcdbClient,
    width: int = 8,
    constraints: Optional[Constraints] = None,
    parallel: bool = False,
) -> SimpleComputer:
    """Generate the components of the Figure 13 simple computer.

    With ``parallel`` (and a job-capable client) the five datapath parts
    are submitted as concurrent jobs; instance names are pre-allocated, so
    the resulting computer is identical to the sequential build.
    """
    constraints = constraints or Constraints()
    specs = [
        (
            "alu",
            dict(
                implementation="alu", attributes={"size": width},
                constraints=constraints,
                instance_name=icdb.instances.new_name("cpu_alu"),
            ),
        ),
        (
            "accumulator",
            dict(
                implementation="register", attributes={"size": width},
                constraints=constraints,
                instance_name=icdb.instances.new_name("cpu_acc"),
            ),
        ),
        (
            "operand_register",
            dict(
                implementation="register", attributes={"size": width},
                constraints=constraints,
                instance_name=icdb.instances.new_name("cpu_opreg"),
            ),
        ),
        (
            "program_counter",
            dict(
                implementation="counter",
                parameters=counter_parameters(size=width, style=TYPE_SYNCHRONOUS,
                                              load=True, enable=True,
                                              up_or_down=UP_ONLY),
                constraints=constraints,
                instance_name=icdb.instances.new_name("cpu_pc"),
            ),
        ),
        (
            "operand_mux",
            dict(
                implementation="mux2", attributes={"size": width},
                constraints=constraints,
                instance_name=icdb.instances.new_name("cpu_mux"),
            ),
        ),
    ]
    parts = _generate_components(icdb, specs, parallel=parallel)
    control = generate_control_logic(
        icdb, "cpu_control", steps=8, command_bits=12, constraints=constraints
    )
    return SimpleComputer(datapath_parts=parts, control=control, width=width)
