"""ICDB relational schema (Section 4.1 of the paper).

The ICDB data stored in the database comprises: component types, the
functions a component performs, component implementations (with parameter
descriptions and the file names of the design data), component generators
and their tool steps, generated component instances, and the per-designer
component lists / design transactions.
"""

from __future__ import annotations

from typing import Dict

from .engine import Column, Database

#: Table names.
FUNCTIONS = "functions"
COMPONENT_TYPES = "component_types"
IMPLEMENTATIONS = "implementations"
IMPLEMENTATION_FUNCTIONS = "implementation_functions"
GENERATORS = "generators"
TOOLS = "tools"
INSTANCES = "instances"
DESIGNS = "designs"
DESIGN_INSTANCES = "design_instances"
DESIGN_FILES = "design_files"


def create_schema(database: Database) -> Database:
    """Create every ICDB table in ``database`` (idempotent)."""
    if not database.has_table(FUNCTIONS):
        database.create_table(
            FUNCTIONS,
            [
                Column("name", "str", required=True),
                Column("group", "str"),
            ],
            key="name",
        )
    if not database.has_table(COMPONENT_TYPES):
        database.create_table(
            COMPONENT_TYPES,
            [
                Column("name", "str", required=True),
                Column("description", "str"),
                Column("functions", "json", default=[]),
            ],
            key="name",
        )
    if not database.has_table(IMPLEMENTATIONS):
        database.create_table(
            IMPLEMENTATIONS,
            [
                Column("name", "str", required=True),
                Column("component_type", "str", required=True),
                Column("description", "str"),
                Column("format", "str", default="iif"),
                Column("parameters", "json", default={}),
                Column("iif_file", "str"),
                Column("fixed", "bool", default=False),
            ],
            key="name",
        )
    if not database.has_table(IMPLEMENTATION_FUNCTIONS):
        database.create_table(
            IMPLEMENTATION_FUNCTIONS,
            [
                Column("implementation", "str", required=True),
                Column("function", "str", required=True),
            ],
        )
    if not database.has_table(GENERATORS):
        database.create_table(
            GENERATORS,
            [
                Column("name", "str", required=True),
                Column("description", "str"),
                Column("input_format", "str", default="iif"),
                Column("steps", "json", default=[]),
            ],
            key="name",
        )
    if not database.has_table(TOOLS):
        database.create_table(
            TOOLS,
            [
                Column("name", "str", required=True),
                Column("description", "str"),
                Column("step", "str"),
                Column("input_format", "str"),
                Column("output_format", "str"),
            ],
            key="name",
        )
    if not database.has_table(INSTANCES):
        database.create_table(
            INSTANCES,
            [
                Column("name", "str", required=True),
                Column("implementation", "str", required=True),
                Column("component_type", "str"),
                Column("parameters", "json", default={}),
                Column("functions", "json", default=[]),
                Column("target", "str", default="logic"),
                Column("clock_width", "float", default=0.0),
                Column("area", "float", default=0.0),
                Column("width", "float", default=0.0),
                Column("height", "float", default=0.0),
                Column("strips", "int", default=1),
                Column("cells", "int", default=0),
                Column("transistors", "float", default=0.0),
                Column("design", "str", default=""),
            ],
            key="name",
        )
    if not database.has_table(DESIGNS):
        database.create_table(
            DESIGNS,
            [
                Column("name", "str", required=True),
                Column("status", "str", default="open"),
                Column("transaction_open", "bool", default=False),
            ],
            key="name",
        )
    if not database.has_table(DESIGN_INSTANCES):
        database.create_table(
            DESIGN_INSTANCES,
            [
                Column("design", "str", required=True),
                Column("instance", "str", required=True),
                Column("kept", "bool", default=False),
            ],
        )
    if not database.has_table(DESIGN_FILES):
        database.create_table(
            DESIGN_FILES,
            [
                Column("instance", "str", required=True),
                Column("kind", "str", required=True),
                Column("path", "str", required=True),
            ],
        )
    return database


def new_database(name: str = "icdb") -> Database:
    """A fresh database with the ICDB schema installed."""
    return create_schema(Database(name))
