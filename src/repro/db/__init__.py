"""Relational engine, ICDB schema and design-data file store."""

from .engine import Column, Database, DatabaseError, Table
from .schema import (
    COMPONENT_TYPES,
    DESIGNS,
    DESIGN_FILES,
    DESIGN_INSTANCES,
    FUNCTIONS,
    GENERATORS,
    IMPLEMENTATIONS,
    IMPLEMENTATION_FUNCTIONS,
    INSTANCES,
    TOOLS,
    create_schema,
    new_database,
)
from .store import ARTIFACT_EXTENSIONS, DesignDataStore, StoreError

__all__ = [
    "ARTIFACT_EXTENSIONS",
    "COMPONENT_TYPES",
    "Column",
    "DESIGNS",
    "DESIGN_FILES",
    "DESIGN_INSTANCES",
    "Database",
    "DatabaseError",
    "DesignDataStore",
    "FUNCTIONS",
    "GENERATORS",
    "IMPLEMENTATIONS",
    "IMPLEMENTATION_FUNCTIONS",
    "INSTANCES",
    "StoreError",
    "TOOLS",
    "Table",
    "create_schema",
    "new_database",
]
