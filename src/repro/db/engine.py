"""A small relational engine (the INGRES substitute).

The paper stores ICDB's component metadata in the INGRES DBMS and the
design data (IIF, VHDL, CIF files) in the UNIX file system.  This module
provides the relational half: typed tables with insert / select / update /
delete, simple predicates, unique keys, and JSON persistence so a knowledge
base survives between sessions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


class DatabaseError(ValueError):
    """Raised on schema violations and bad queries."""


#: Column types supported by the engine.
COLUMN_TYPES = {"str": str, "int": int, "float": float, "bool": bool, "json": object}

Predicate = Union[Mapping[str, Any], Callable[[Dict[str, Any]], bool], None]


@dataclass(frozen=True)
class Column:
    """A typed table column."""

    name: str
    type: str = "str"
    required: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise DatabaseError(f"unknown column type {self.type!r} for {self.name!r}")

    def coerce(self, value: Any) -> Any:
        if value is None:
            if self.required:
                raise DatabaseError(f"column {self.name!r} is required")
            return self.default
        if self.type == "json":
            return value
        expected = COLUMN_TYPES[self.type]
        if isinstance(value, expected):
            return value
        try:
            return expected(value)
        except (TypeError, ValueError) as exc:
            raise DatabaseError(
                f"cannot store {value!r} in {self.type} column {self.name!r}"
            ) from exc


class Table:
    """A single relation: named, typed columns and a list of rows."""

    def __init__(self, name: str, columns: Sequence[Column], key: Optional[str] = None):
        self.name = name
        self.columns: Dict[str, Column] = {column.name: column for column in columns}
        if key is not None and key not in self.columns:
            raise DatabaseError(f"key column {key!r} is not a column of {name!r}")
        self.key = key
        self.rows: List[Dict[str, Any]] = []
        # Key-uniqueness index: without it every keyed insert scans the
        # whole relation, which turns a long-lived server's instance table
        # into a quadratic hot spot.
        self._key_index: set = set()

    def __len__(self) -> int:
        return len(self.rows)

    def _rebuild_key_index(self) -> None:
        if self.key is not None:
            self._key_index = {row[self.key] for row in self.rows}

    # ------------------------------------------------------------------ write

    def insert(self, **values: Any) -> Dict[str, Any]:
        unknown = [name for name in values if name not in self.columns]
        if unknown:
            raise DatabaseError(f"table {self.name!r} has no columns {unknown}")
        row = {
            name: column.coerce(values.get(name))
            for name, column in self.columns.items()
        }
        if self.key is not None:
            key_value = row[self.key]
            if key_value in self._key_index:
                raise DatabaseError(
                    f"duplicate key {key_value!r} in table {self.name!r}"
                )
            self._key_index.add(key_value)
        self.rows.append(row)
        return dict(row)

    def update(self, where: Predicate, **changes: Any) -> int:
        count = 0
        for row in self.rows:
            if self._matches(row, where):
                for name, value in changes.items():
                    if name not in self.columns:
                        raise DatabaseError(f"table {self.name!r} has no column {name!r}")
                    row[name] = self.columns[name].coerce(value)
                count += 1
        if count and self.key is not None and self.key in changes:
            self._rebuild_key_index()
        return count

    def delete(self, where: Predicate) -> int:
        if self.key is None:
            before = len(self.rows)
            self.rows = [row for row in self.rows if not self._matches(row, where)]
            return before - len(self.rows)
        kept: List[Dict[str, Any]] = []
        removed = 0
        for row in self.rows:
            if self._matches(row, where):
                # Discarding the removed keys keeps deletion O(n) instead
                # of an O(n) index rebuild per call (which made bulk
                # per-instance teardown quadratic).  Key-changing updates
                # are the one path that can unbalance this; update()
                # rebuilds the index exactly for that case.
                self._key_index.discard(row[self.key])
                removed += 1
            else:
                kept.append(row)
        self.rows = kept
        return removed

    # ------------------------------------------------------------------- read

    def select(self, where: Predicate = None, order_by: Optional[str] = None) -> List[Dict[str, Any]]:
        rows = [dict(row) for row in self.rows if self._matches(row, where)]
        if order_by is not None:
            rows.sort(key=lambda row: row.get(order_by))
        return rows

    def get(self, **key_values: Any) -> Optional[Dict[str, Any]]:
        matches = self.select(key_values)
        if not matches:
            return None
        if len(matches) > 1:
            raise DatabaseError(
                f"expected at most one row matching {key_values!r} in {self.name!r}"
            )
        return matches[0]

    def count(self, where: Predicate = None) -> int:
        return len(self.select(where))

    @staticmethod
    def _matches(row: Mapping[str, Any], where: Predicate) -> bool:
        if where is None:
            return True
        if callable(where):
            return bool(where(dict(row)))
        return all(row.get(name) == value for name, value in where.items())

    # ------------------------------------------------------------ persistence

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type,
                    "required": column.required,
                    "default": column.default,
                }
                for column in self.columns.values()
            ],
            "rows": self.rows,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Table":
        columns = [
            Column(
                name=item["name"],
                type=item.get("type", "str"),
                required=item.get("required", False),
                default=item.get("default"),
            )
            for item in data["columns"]
        ]
        table = Table(data["name"], columns, key=data.get("key"))
        for row in data.get("rows", []):
            table.rows.append(dict(row))
        table._rebuild_key_index()
        return table


class Database:
    """A named collection of tables with JSON persistence."""

    def __init__(self, name: str = "icdb"):
        self.name = name
        self.tables: Dict[str, Table] = {}

    def create_table(
        self, name: str, columns: Sequence[Column], key: Optional[str] = None
    ) -> Table:
        if name in self.tables:
            raise DatabaseError(f"table {name!r} already exists")
        table = Table(name, columns, key=key)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise DatabaseError(f"no table named {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)

    def table_names(self) -> List[str]:
        return list(self.tables)

    # ------------------------------------------------------------ persistence

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        payload = {
            "name": self.name,
            "tables": {name: table.to_dict() for name, table in self.tables.items()},
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "Database":
        payload = json.loads(Path(path).read_text())
        database = Database(payload.get("name", "icdb"))
        for name, table_data in payload.get("tables", {}).items():
            database.tables[name] = Table.from_dict(table_data)
        return database
