"""A small relational engine (the INGRES substitute).

The paper stores ICDB's component metadata in the INGRES DBMS and the
design data (IIF, VHDL, CIF files) in the UNIX file system.  This module
provides the relational half: typed tables with insert / select / update /
delete, simple predicates, unique keys, and JSON persistence so a knowledge
base survives between sessions.

Durability seam: a :class:`Database` can carry an *observer* -- a callable
handed one JSON-safe event dict per mutation (table create/drop, insert,
update, delete), invoked **before** the mutation is applied but after all
validation, under a shared re-entrant lock.  :mod:`repro.store` attaches a
write-ahead journal through this hook; while the same lock is held, the
database state and the event stream are mutually consistent, which is what
makes atomic snapshots possible.  With no observer attached the mutators
take no lock and pay nothing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


class DatabaseError(ValueError):
    """Raised on schema violations and bad queries."""


#: Column types supported by the engine.
COLUMN_TYPES = {"str": str, "int": int, "float": float, "bool": bool, "json": object}

Predicate = Union[Mapping[str, Any], Callable[[Dict[str, Any]], bool], None]


@dataclass(frozen=True)
class Column:
    """A typed table column."""

    name: str
    type: str = "str"
    required: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise DatabaseError(f"unknown column type {self.type!r} for {self.name!r}")

    def coerce(self, value: Any) -> Any:
        if value is None:
            if self.required:
                raise DatabaseError(f"column {self.name!r} is required")
            return self.default
        if self.type == "json":
            return value
        expected = COLUMN_TYPES[self.type]
        if isinstance(value, expected):
            return value
        try:
            return expected(value)
        except (TypeError, ValueError) as exc:
            raise DatabaseError(
                f"cannot store {value!r} in {self.type} column {self.name!r}"
            ) from exc


class Table:
    """A single relation: named, typed columns and a list of rows."""

    def __init__(self, name: str, columns: Sequence[Column], key: Optional[str] = None):
        self.name = name
        self.columns: Dict[str, Column] = {column.name: column for column in columns}
        if key is not None and key not in self.columns:
            raise DatabaseError(f"key column {key!r} is not a column of {name!r}")
        self.key = key
        self.rows: List[Dict[str, Any]] = []
        # Key-uniqueness index: without it every keyed insert scans the
        # whole relation, which turns a long-lived server's instance table
        # into a quadratic hot spot.
        self._key_index: set = set()
        #: Mutation observer (the write-ahead journal hook) and the lock
        #: all observed mutations share; both set by
        #: :meth:`Database.attach_observer`, ``None`` when detached.
        self.observer: Optional[Callable[[Dict[str, Any]], None]] = None
        self.observer_lock: Optional[threading.RLock] = None

    def __len__(self) -> int:
        return len(self.rows)

    def _rebuild_key_index(self) -> None:
        if self.key is not None:
            self._key_index = {row[self.key] for row in self.rows}

    # ------------------------------------------------------------------ write

    def insert(self, **values: Any) -> Dict[str, Any]:
        unknown = [name for name in values if name not in self.columns]
        if unknown:
            raise DatabaseError(f"table {self.name!r} has no columns {unknown}")
        row = {
            name: column.coerce(values.get(name))
            for name, column in self.columns.items()
        }
        lock = self.observer_lock
        if lock is None:
            return self._insert_observed(row)
        with lock:
            return self._insert_observed(row)

    def _insert_observed(self, row: Dict[str, Any]) -> Dict[str, Any]:
        if self.key is not None and row[self.key] in self._key_index:
            raise DatabaseError(
                f"duplicate key {row[self.key]!r} in table {self.name!r}"
            )
        if self.observer is not None:
            self.observer(
                {"op": "insert", "table": self.name, "row": dict(row)}
            )
        self.apply_insert(row)
        return dict(row)

    def update(self, where: Predicate, **changes: Any) -> int:
        # Validate names and coerce every change value up front: a
        # coercion error on a later column must leave no row mutated
        # (the row-by-row in-place loop used to leave earlier rows --
        # and earlier columns of the failing row -- already changed).
        for name in changes:
            if name not in self.columns:
                raise DatabaseError(f"table {self.name!r} has no column {name!r}")
        coerced = {
            name: self.columns[name].coerce(value)
            for name, value in changes.items()
        }
        lock = self.observer_lock
        if lock is None:
            return self._update_observed(where, coerced)
        with lock:
            return self._update_observed(where, coerced)

    def _update_observed(self, where: Predicate, coerced: Dict[str, Any]) -> int:
        indexes = [
            index for index, row in enumerate(self.rows)
            if self._matches(row, where)
        ]
        if not indexes:
            return 0
        if self.observer is not None:
            self.observer(
                {
                    "op": "update",
                    "table": self.name,
                    "indexes": list(indexes),
                    "changes": dict(coerced),
                }
            )
        return self.apply_update(indexes, coerced)

    def delete(self, where: Predicate) -> int:
        lock = self.observer_lock
        if lock is None:
            return self._delete_observed(where)
        with lock:
            return self._delete_observed(where)

    def _delete_observed(self, where: Predicate) -> int:
        doomed = [
            index for index, row in enumerate(self.rows)
            if self._matches(row, where)
        ]
        if not doomed:
            return 0
        if self.observer is not None:
            self.observer(
                {"op": "delete", "table": self.name, "indexes": list(doomed)}
            )
        return self.apply_delete(doomed)

    # ------------------------------------------------------------------ replay
    #
    # The apply_* methods below are the *physical* halves of the mutators:
    # no validation, no coercion, no observer -- exactly what a journal
    # replay re-executes.  The mutators themselves call them after
    # validating and emitting, so live execution and replay share one
    # application path and cannot drift.

    def apply_insert(self, row: Dict[str, Any]) -> None:
        """Append an already-coerced row (journal replay seam)."""
        if self.key is not None:
            self._key_index.add(row[self.key])
        self.rows.append(row)

    def apply_update(self, indexes: Sequence[int], changes: Mapping[str, Any]) -> int:
        """Apply coerced changes to the rows at ``indexes`` (replay seam)."""
        for index in indexes:
            self.rows[index].update(changes)
        if self.key is not None and self.key in changes:
            self._rebuild_key_index()
        return len(indexes)

    def apply_delete(self, indexes: Sequence[int]) -> int:
        """Remove the rows at ``indexes`` (journal replay seam)."""
        doomed = set(indexes)
        if self.key is not None:
            # Discarding the removed keys keeps deletion O(n) instead
            # of an O(n) index rebuild per call (which made bulk
            # per-instance teardown quadratic).  Key-changing updates
            # are the one path that can unbalance this; update()
            # rebuilds the index exactly for that case.
            for index in doomed:
                self._key_index.discard(self.rows[index][self.key])
        self.rows = [
            row for index, row in enumerate(self.rows) if index not in doomed
        ]
        return len(doomed)

    # ------------------------------------------------------------------- read

    def select(self, where: Predicate = None, order_by: Optional[str] = None) -> List[Dict[str, Any]]:
        rows = [dict(row) for row in self.rows if self._matches(row, where)]
        if order_by is not None:
            rows.sort(key=lambda row: row.get(order_by))
        return rows

    def get(self, **key_values: Any) -> Optional[Dict[str, Any]]:
        matches = self.select(key_values)
        if not matches:
            return None
        if len(matches) > 1:
            raise DatabaseError(
                f"expected at most one row matching {key_values!r} in {self.name!r}"
            )
        return matches[0]

    def count(self, where: Predicate = None) -> int:
        return len(self.select(where))

    @staticmethod
    def _matches(row: Mapping[str, Any], where: Predicate) -> bool:
        if where is None:
            return True
        if callable(where):
            return bool(where(dict(row)))
        return all(row.get(name) == value for name, value in where.items())

    # ------------------------------------------------------------ persistence

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type,
                    "required": column.required,
                    "default": column.default,
                }
                for column in self.columns.values()
            ],
            "rows": self.rows,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Table":
        columns = [
            Column(
                name=item["name"],
                type=item.get("type", "str"),
                required=item.get("required", False),
                default=item.get("default"),
            )
            for item in data["columns"]
        ]
        table = Table(data["name"], columns, key=data.get("key"))
        for row in data.get("rows", []):
            table.rows.append(dict(row))
        table._rebuild_key_index()
        return table


class Database:
    """A named collection of tables with JSON persistence."""

    def __init__(self, name: str = "icdb"):
        self.name = name
        self.tables: Dict[str, Table] = {}
        #: Mutation observer and shared lock; see :meth:`attach_observer`.
        self.observer: Optional[Callable[[Dict[str, Any]], None]] = None
        self.observer_lock: Optional[threading.RLock] = None

    # -------------------------------------------------------------- observer

    def attach_observer(
        self,
        observer: Callable[[Dict[str, Any]], None],
        lock: Optional[threading.RLock] = None,
    ) -> threading.RLock:
        """Route every future mutation event through ``observer``.

        The observer is called *before* each mutation is applied (after
        validation), under ``lock`` -- a re-entrant lock shared by every
        table, so a caller holding it (a snapshotter) observes the
        database only between whole mutations, never between an emitted
        event and its application.  Returns the lock in use.
        """
        self.observer_lock = lock if lock is not None else threading.RLock()
        self.observer = observer
        for table in self.tables.values():
            table.observer = observer
            table.observer_lock = self.observer_lock
        return self.observer_lock

    def detach_observer(self) -> None:
        """Stop observing mutations (tables included)."""
        self.observer = None
        self.observer_lock = None
        for table in self.tables.values():
            table.observer = None
            table.observer_lock = None

    # ---------------------------------------------------------------- tables

    def create_table(
        self, name: str, columns: Sequence[Column], key: Optional[str] = None
    ) -> Table:
        table = Table(name, columns, key=key)
        lock = self.observer_lock
        if lock is None:
            return self._create_table_observed(table)
        with lock:
            return self._create_table_observed(table)

    def _create_table_observed(self, table: Table) -> Table:
        if table.name in self.tables:
            raise DatabaseError(f"table {table.name!r} already exists")
        if self.observer is not None:
            schema = table.to_dict()
            schema.pop("rows", None)
            self.observer({"op": "create_table", "schema": schema})
            table.observer = self.observer
            table.observer_lock = self.observer_lock
        self.tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise DatabaseError(f"no table named {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def drop_table(self, name: str) -> None:
        lock = self.observer_lock
        if lock is None:
            self._drop_table_observed(name)
            return
        with lock:
            self._drop_table_observed(name)

    def _drop_table_observed(self, name: str) -> None:
        if name not in self.tables:
            return
        if self.observer is not None:
            self.observer({"op": "drop_table", "table": name})
        table = self.tables.pop(name)
        table.observer = None
        table.observer_lock = None

    def table_names(self) -> List[str]:
        return list(self.tables)

    # ------------------------------------------------------------ persistence

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe persisted form (what :meth:`save` writes)."""
        return {
            "name": self.name,
            "tables": {name: table.to_dict() for name, table in self.tables.items()},
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "Database":
        """Rebuild a database from its :meth:`to_payload` form."""
        database = Database(payload.get("name", "icdb"))
        for name, table_data in payload.get("tables", {}).items():
            database.tables[name] = Table.from_dict(table_data)
        return database

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Serialize first, then write-to-temp and rename: a process dying
        # mid-write (or a failing serialization) must never leave a
        # truncated JSON file where a loadable knowledge base used to be.
        data = json.dumps(self.to_payload(), indent=2, sort_keys=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(data)
        os.replace(tmp, path)
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "Database":
        return Database.from_payload(json.loads(Path(path).read_text()))
