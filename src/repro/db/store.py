"""Design-data file store (the UNIX file system half of ICDB's storage).

The paper keeps component design data (IIF descriptions, VHDL netlists, CIF
layouts, delay / shape reports) in plain files; tools retrieve the file
names from ICDB and do their own I/O so that ICDB never becomes a data
bottleneck.  :class:`DesignDataStore` reproduces that: it writes text
artifacts under a root directory (a temporary directory by default) and
returns their paths, which the database records per instance.
"""

from __future__ import annotations

import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


class StoreError(ValueError):
    """Raised on bad file-store requests."""


#: Artifact kinds and the file extension used for each.
ARTIFACT_EXTENSIONS = {
    "iif": ".iif",
    "flat_iif": ".piif",
    "vhdl": ".vhd",
    "vhdl_head": ".cmp.vhd",
    "cif": ".cif",
    "delay": ".delay",
    "shape": ".shape",
    "area": ".area",
    "connect": ".connect",
    "report": ".txt",
}


_SAFE_NAME_RE = re.compile(r"[A-Za-z0-9.-][A-Za-z0-9_.-]*")


def _safe_name(name: str) -> str:
    # Fast path: typical instance names (alnum + underscores, no leading /
    # trailing underscore) pass through without the regex substitution.
    # All-dot names ("." / "..") must never pass: instance names reach
    # this from remote clients, and ".." as a path component would write
    # artifacts outside the store root.
    if _SAFE_NAME_RE.fullmatch(name) and not name.endswith("_") and name.strip("."):
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
    if not cleaned.strip("."):
        return "unnamed"
    return cleaned


class DesignDataStore:
    """Writes and retrieves per-instance design-data files."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="icdb_store_")
            self.root = Path(self._tempdir.name)
        else:
            self._tempdir = None
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
        self._root_str = str(self.root)

    # ------------------------------------------------------------------ write

    def path_for(self, instance: str, kind: str) -> Path:
        """The path an artifact would be written to, whether it exists yet.

        Lazily persisted artifacts record this path before any bytes hit
        the disk; :meth:`write` materializes the same path later.
        """
        if kind not in ARTIFACT_EXTENSIONS:
            raise StoreError(f"unknown artifact kind {kind!r}")
        return self.root / _safe_name(instance) / (
            _safe_name(instance) + ARTIFACT_EXTENSIONS[kind]
        )

    def paths_for(self, instance: str, kinds: Iterable[str]) -> Dict[str, str]:
        """Path strings of several would-be artifacts at once.

        The bulk form of :meth:`path_for`: one name sanitization, plain
        string joins, no filesystem access -- this sits on the cached
        request hot path where every microsecond counts.
        """
        safe = _safe_name(instance)
        base = f"{self._root_str}{os.sep}{safe}{os.sep}{safe}"
        paths: Dict[str, str] = {}
        for kind in kinds:
            extension = ARTIFACT_EXTENSIONS.get(kind)
            if extension is None:
                raise StoreError(f"unknown artifact kind {kind!r}")
            paths[kind] = base + extension
        return paths

    def write(self, instance: str, kind: str, text: str) -> Path:
        """Store one artifact; returns the file path."""
        if kind not in ARTIFACT_EXTENSIONS:
            raise StoreError(
                f"unknown artifact kind {kind!r}; expected one of {sorted(ARTIFACT_EXTENSIONS)}"
            )
        directory = self.root / _safe_name(instance)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{_safe_name(instance)}{ARTIFACT_EXTENSIONS[kind]}"
        path.write_text(text)
        return path

    # ------------------------------------------------------------------- read

    def read(self, instance: str, kind: str) -> str:
        path = self.path_of(instance, kind)
        if path is None or not path.exists():
            raise StoreError(f"instance {instance!r} has no stored {kind!r} artifact")
        return path.read_text()

    def path_of(self, instance: str, kind: str) -> Optional[Path]:
        path = self.path_for(instance, kind)
        return path if path.exists() else None

    def artifacts_of(self, instance: str) -> Dict[str, Path]:
        """All stored artifacts of an instance, keyed by kind."""
        directory = self.root / _safe_name(instance)
        found: Dict[str, Path] = {}
        if not directory.exists():
            return found
        for kind, extension in ARTIFACT_EXTENSIONS.items():
            path = directory / (_safe_name(instance) + extension)
            if path.exists():
                found[kind] = path
        return found

    def remove_instance(self, instance: str) -> int:
        """Delete every artifact of an instance; returns the file count."""
        directory = self.root / _safe_name(instance)
        if not directory.exists():
            return 0
        count = 0
        for path in sorted(directory.iterdir()):
            if path.is_file():
                path.unlink()
                count += 1
        try:
            directory.rmdir()
        except OSError:
            pass
        return count

    def instances(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())
