"""Design-data file store (the UNIX file system half of ICDB's storage).

The paper keeps component design data (IIF descriptions, VHDL netlists, CIF
layouts, delay / shape reports) in plain files; tools retrieve the file
names from ICDB and do their own I/O so that ICDB never becomes a data
bottleneck.  :class:`DesignDataStore` reproduces that: it writes text
artifacts under a root directory (a temporary directory by default) and
returns their paths, which the database records per instance.
"""

from __future__ import annotations

import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union


class StoreError(ValueError):
    """Raised on bad file-store requests."""


#: Artifact kinds and the file extension used for each.
ARTIFACT_EXTENSIONS = {
    "iif": ".iif",
    "flat_iif": ".piif",
    "vhdl": ".vhd",
    "vhdl_head": ".cmp.vhd",
    "cif": ".cif",
    "delay": ".delay",
    "shape": ".shape",
    "area": ".area",
    "connect": ".connect",
    "report": ".txt",
}


def _safe_name(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
    return cleaned or "unnamed"


class DesignDataStore:
    """Writes and retrieves per-instance design-data files."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="icdb_store_")
            self.root = Path(self._tempdir.name)
        else:
            self._tempdir = None
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ write

    def write(self, instance: str, kind: str, text: str) -> Path:
        """Store one artifact; returns the file path."""
        if kind not in ARTIFACT_EXTENSIONS:
            raise StoreError(
                f"unknown artifact kind {kind!r}; expected one of {sorted(ARTIFACT_EXTENSIONS)}"
            )
        directory = self.root / _safe_name(instance)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{_safe_name(instance)}{ARTIFACT_EXTENSIONS[kind]}"
        path.write_text(text)
        return path

    # ------------------------------------------------------------------- read

    def read(self, instance: str, kind: str) -> str:
        path = self.path_of(instance, kind)
        if path is None or not path.exists():
            raise StoreError(f"instance {instance!r} has no stored {kind!r} artifact")
        return path.read_text()

    def path_of(self, instance: str, kind: str) -> Optional[Path]:
        if kind not in ARTIFACT_EXTENSIONS:
            raise StoreError(f"unknown artifact kind {kind!r}")
        path = self.root / _safe_name(instance) / (
            _safe_name(instance) + ARTIFACT_EXTENSIONS[kind]
        )
        return path if path.exists() else None

    def artifacts_of(self, instance: str) -> Dict[str, Path]:
        """All stored artifacts of an instance, keyed by kind."""
        directory = self.root / _safe_name(instance)
        found: Dict[str, Path] = {}
        if not directory.exists():
            return found
        for kind, extension in ARTIFACT_EXTENSIONS.items():
            path = directory / (_safe_name(instance) + extension)
            if path.exists():
                found[kind] = path
        return found

    def remove_instance(self, instance: str) -> int:
        """Delete every artifact of an instance; returns the file count."""
        directory = self.root / _safe_name(instance)
        if not directory.exists():
            return 0
        count = 0
        for path in sorted(directory.iterdir()):
            if path.is_file():
                path.unlink()
                count += 1
        try:
            directory.rmdir()
        except OSError:
            pass
        return count

    def instances(self) -> List[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())
