"""Area estimation (Section 4.4.2 of the paper).

Two properties of every basic cell drive the estimate: the cell's width and
the number of routing tracks it uses.  The strip width is estimated as
``(X + Y) / 2`` where ``X`` is the maximum strip width of a *count-balanced*
placement (each strip gets the same number of cells, order as given) and
``Y`` is the maximum strip width of the *best* (width-balanced) placement
found.  The component height is the number of strips times the transistor
height plus the routing-track estimate, which is obtained from the total
horizontal wire length divided by a track-utilization constant that depends
on the number of cells in a strip (the paper obtained that function from
experiments on its layout tool; here it is a fitted synthetic curve).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist.gates import GateInstance, GateNetlist
from ..techlib import BASE_STRIP_HEIGHT_UM, TRACK_PITCH_UM


@dataclass(frozen=True)
class AreaRecord:
    """One layout alternative: the component laid out in ``strips`` strips."""

    strips: int
    width: float
    height: float

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        """Width divided by height."""
        return self.width / self.height if self.height else math.inf

    def render(self) -> str:
        return (
            f"strip = {self.strips} width = {self.width:.0f} "
            f"height = {self.height:.0f} area = {self.area:.0f}"
        )


def track_utilization(cells_per_strip: float) -> float:
    """Track-utilization constant as a function of cells per strip.

    Short strips route almost everything over the cells (high utilization);
    long strips need more dedicated tracks.  The curve is synthetic but
    monotone, which is all the estimator's behaviour depends on.
    """
    if cells_per_strip <= 0:
        return 1.0
    return 0.85 - 0.35 * min(1.0, cells_per_strip / 40.0)


def _strip_widths_round_robin(widths: Sequence[float], strips: int) -> List[float]:
    """Count-balanced placement: deal cells to strips in the given order."""
    totals = [0.0] * strips
    for index, width in enumerate(widths):
        totals[index % strips] += width
    return totals


def _strip_widths_balanced(widths: Sequence[float], strips: int) -> List[float]:
    """Width-balanced placement (longest-processing-time greedy)."""
    totals = [0.0] * strips
    for width in sorted(widths, reverse=True):
        index = totals.index(min(totals))
        totals[index] += width
    return totals


class AreaEstimator:
    """Estimates strip-layout width, height and shape alternatives."""

    def __init__(
        self,
        netlist: GateNetlist,
        strip_height: float = BASE_STRIP_HEIGHT_UM,
        track_pitch: float = TRACK_PITCH_UM,
    ):
        self.netlist = netlist
        self.strip_height = strip_height
        self.track_pitch = track_pitch
        instances = netlist.all_instances()
        self._widths = [inst.width_um() for inst in instances]
        self._cell_tracks = [inst.cell.tracks for inst in instances]
        #: Widths pre-sorted for the width-balanced (LPT) placement, the
        #: per-strip width estimates, and the multi-pin net counts: every
        #: shape alternative re-uses them, so they are computed once per
        #: estimator instead of once per strip count.
        self._widths_sorted = sorted(self._widths, reverse=True)
        self._strip_width_cache: Dict[int, float] = {}
        self._net_pin_counts: Optional[List[int]] = None

    # ----------------------------------------------------------------- width

    def strip_width(self, strips: int) -> float:
        """The paper's ``(X + Y) / 2`` strip-width estimate (memoized)."""
        if not self._widths:
            return 0.0
        strips = max(1, strips)
        cached = self._strip_width_cache.get(strips)
        if cached is not None:
            return cached
        x_width = max(_strip_widths_round_robin(self._widths, strips))
        # _strip_widths_balanced sorts internally; feed it the pre-sorted
        # list (sorting an already-sorted list is O(n) in timsort).
        y_width = max(_strip_widths_balanced(self._widths_sorted, strips))
        width = (x_width + y_width) / 2.0
        self._strip_width_cache[strips] = width
        return width

    def random_width(self, strips: int) -> float:
        """The X term alone (count-balanced placement), used by ablations."""
        if not self._widths:
            return 0.0
        return max(_strip_widths_round_robin(self._widths, max(1, strips)))

    def best_width(self, strips: int) -> float:
        """The Y term alone (width-balanced placement), used by ablations."""
        if not self._widths:
            return 0.0
        return max(_strip_widths_balanced(self._widths, max(1, strips)))

    # ---------------------------------------------------------------- height

    def _multi_pin_counts(self) -> List[int]:
        """Pin counts of the nets with two or more connection points
        (computed once: the net table does not change under estimation)."""
        if self._net_pin_counts is None:
            counts: List[int] = []
            for info in self.netlist.nets().values():
                pins = info.fanout + (0 if info.driver_instance is None else 1)
                if pins >= 2:
                    counts.append(pins)
            self._net_pin_counts = counts
        return self._net_pin_counts

    def wire_length(self, strips: int) -> float:
        """Total estimated horizontal wire length for a ``strips``-strip layout."""
        width = self.strip_width(strips)
        # Expected span of `pins` connection points spread over the strip
        # width; nets with more pins stretch across more of the strip.
        return width * sum(
            (pins - 1) / (pins + 1) for pins in self._multi_pin_counts()
        )

    def routing_tracks(self, strips: int) -> int:
        """Routing tracks needed per strip."""
        strips = max(1, strips)
        width = self.strip_width(strips)
        if width <= 0:
            return 0
        cells_per_strip = len(self._widths) / strips
        utilization = track_utilization(cells_per_strip)
        total_tracks = self.wire_length(strips) / (width * utilization)
        per_strip = total_tracks / strips
        cell_internal = max(self._cell_tracks, default=0)
        return int(math.ceil(per_strip)) + cell_internal

    def strip_height_with_routing(self, strips: int) -> float:
        return self.strip_height + self.routing_tracks(strips) * self.track_pitch

    # ------------------------------------------------------------------ area

    def estimate(self, strips: int) -> AreaRecord:
        """Area record for a given strip count."""
        strips = max(1, strips)
        width = self.strip_width(strips)
        height = strips * self.strip_height_with_routing(strips)
        return AreaRecord(strips=strips, width=width, height=height)

    def max_strips(self) -> int:
        """Largest sensible strip count (at least one cell per strip)."""
        count = len(self._widths)
        if count == 0:
            return 1
        return max(1, min(count, int(math.ceil(math.sqrt(count))) + 4))

    def alternatives(self, max_strips: Optional[int] = None) -> List[AreaRecord]:
        """Area records for every strip count from 1 to ``max_strips``."""
        limit = max_strips or self.max_strips()
        return [self.estimate(strips) for strips in range(1, limit + 1)]

    def best(self, max_strips: Optional[int] = None) -> AreaRecord:
        """The minimum-area alternative."""
        return min(self.alternatives(max_strips), key=lambda record: record.area)


def estimate_area(netlist: GateNetlist, strips: Optional[int] = None) -> AreaRecord:
    """Convenience wrapper: best-area estimate (or a specific strip count)."""
    estimator = AreaEstimator(netlist)
    if strips is not None:
        return estimator.estimate(strips)
    return estimator.best()


def render_area_records(records: Sequence[AreaRecord]) -> str:
    """Render records in the ``strip = ... width = ...`` format of Appendix B."""
    return "\n".join(record.render() for record in records)
