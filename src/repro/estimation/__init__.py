"""Delay, area and shape-function estimators (Section 4.4 of the paper)."""

from .area import AreaEstimator, AreaRecord, estimate_area, render_area_records, track_utilization
from .delay import DelayAnalysis, DelayReport, estimate_delay
from .shape import ShapeFunction, pareto_filter, shape_function

__all__ = [
    "AreaEstimator",
    "AreaRecord",
    "DelayAnalysis",
    "DelayReport",
    "ShapeFunction",
    "estimate_area",
    "estimate_delay",
    "pareto_filter",
    "render_area_records",
    "shape_function",
    "track_utilization",
]
