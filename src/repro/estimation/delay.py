"""Delay estimation (Section 4.4.1 of the paper).

For each basic cell the library stores three numbers: ``X`` (delay increase
per unit of transistor load), ``Y`` (input-to-output delay) and ``Z`` (delay
increase per fanout).  The delay of a cell output driving ``Trans_no`` unit
transistors with ``fanout_no`` sink pins is::

    delay = Trans_no * X + Y + fanout_no * Z

and the delay of a component is the sum of the estimated cell delays along
the path.  This module computes, for a mapped gate netlist:

* ``WD`` -- worst clock-to-output delay of every output port;
* ``SD`` -- worst set-up time of every input port (path to any register D
  input plus the register's set-up requirement);
* ``CW`` -- the minimum clock width (worst register-to-register path plus
  set-up, bounded below by the cells' minimum pulse widths);
* combinational input-to-output delays (for purely combinational
  components such as adders and ALUs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..constraints import Constraints
from ..netlist.gates import GateInstance, GateNetlist
from ..netlist.graph import combinational_order

_NEG_INF = float("-inf")


@dataclass
class DelayReport:
    """The result of delay estimation for one component instance."""

    component: str
    clock_width: float
    clock_to_output: Dict[str, float] = field(default_factory=dict)
    setup_times: Dict[str, float] = field(default_factory=dict)
    comb_delays: Dict[str, float] = field(default_factory=dict)
    min_pulse_width: float = 0.0
    is_sequential: bool = False

    def worst_output_delay(self) -> float:
        """Worst delay to any output (clock-to-output, else combinational)."""
        values = list(self.clock_to_output.values()) + list(self.comb_delays.values())
        return max(values) if values else 0.0

    def delay_to(self, output: str) -> float:
        """Delay to a specific output (clock-to-output preferred)."""
        if output in self.clock_to_output:
            return self.clock_to_output[output]
        return self.comb_delays.get(output, 0.0)

    def render(self) -> str:
        """Render in the paper's instance-query delay format."""
        lines: List[str] = []
        if self.is_sequential:
            lines.append(f"CW {self.clock_width:.1f}")
        for port in sorted(self.clock_to_output, key=_port_key, reverse=True):
            lines.append(f"WD {port} {self.clock_to_output[port]:.1f}")
        for port in sorted(self.comb_delays, key=_port_key, reverse=True):
            if port not in self.clock_to_output:
                lines.append(f"WD {port} {self.comb_delays[port]:.1f}")
        for port in sorted(self.setup_times, key=_port_key, reverse=True):
            lines.append(f"SD {port} {self.setup_times[port]:.1f}")
        return "\n".join(lines)

    def violations(self, constraints: Constraints) -> List[str]:
        """Human-readable list of constraint violations (empty when met)."""
        problems: List[str] = []
        target_cw = constraints.effective_clock_width()
        if (
            self.is_sequential
            and target_cw is not None
            and target_cw > 0
            and self.clock_width > target_cw + 1e-9
        ):
            problems.append(
                f"clock width {self.clock_width:.2f} exceeds constraint {target_cw:.2f}"
            )
        for output, delay_value in {**self.comb_delays, **self.clock_to_output}.items():
            bound = constraints.comb_delay_for(output)
            if bound is not None and bound > 0 and delay_value > bound + 1e-9:
                problems.append(
                    f"delay to {output} is {delay_value:.2f}, constraint {bound:.2f}"
                )
        if constraints.setup_time is not None:
            for port, setup in self.setup_times.items():
                if setup > constraints.setup_time + 1e-9:
                    problems.append(
                        f"set-up time of {port} is {setup:.2f}, constraint "
                        f"{constraints.setup_time:.2f}"
                    )
        return problems


def _port_key(port: str) -> Tuple[str, int]:
    if "[" in port and port.endswith("]"):
        base, _, index = port.partition("[")
        try:
            return (base, int(index[:-1]))
        except ValueError:
            return (port, 0)
    return (port, 0)


class DelayAnalysis:
    """Forward / backward timing analysis of a gate netlist."""

    def __init__(
        self,
        netlist: GateNetlist,
        external_loads: Optional[Mapping[str, float]] = None,
    ):
        self.netlist = netlist
        self.external_loads = dict(external_loads or {})
        self.loads = netlist.net_load_units(self.external_loads)
        self.net_table = netlist.nets()
        self.order = combinational_order(netlist)
        #: worst arrival time at each net for paths starting at primary inputs
        self.arrival_from_inputs: Dict[str, float] = {}
        #: worst arrival time at each net for paths starting at register outputs
        self.arrival_from_registers: Dict[str, float] = {}
        #: predecessor net on the worst path (for critical-path extraction)
        self._predecessor: Dict[str, Tuple[Optional[str], Optional[str]]] = {}
        #: worst delay from each net forward to any register D pin (plus set-up)
        self.required_to_register: Dict[str, float] = {}
        self._run()

    # ----------------------------------------------------------------- passes

    def gate_delay(self, instance: GateInstance) -> float:
        """Delay through ``instance`` using the paper's X/Y/Z formula."""
        out_net = instance.output_net()
        load = self.loads.get(out_net, 0.0)
        fanout = self.net_table[out_net].fanout if out_net in self.net_table else 0
        return instance.cell.output_delay(load, fanout, instance.size)

    def register_output_delay(self, instance: GateInstance) -> float:
        """Clock-to-Q delay of a sequential cell including its output load."""
        out_net = instance.output_net()
        load = self.loads.get(out_net, 0.0)
        fanout = self.net_table[out_net].fanout if out_net in self.net_table else 0
        return instance.cell.clock_to_q + instance.cell.output_delay(
            load, fanout, instance.size
        )

    def _run(self) -> None:
        # The clock-to-output arrival of a register depends on when its clock
        # arrives, and clock nets can themselves be driven by other sequential
        # cells (the ripple counter clocks bit i+1 with Q[i], the enable option
        # gates the clock through a latch).  Launch times are therefore
        # computed by iterating the forward pass until they stabilize; the
        # sequential dependency graph is acyclic, so at most one extra pass per
        # sequential cell is needed.
        sequential = self.netlist.sequential_instances()
        launch: Dict[str, float] = {inst.name: inst.cell.clock_to_q for inst in sequential}
        passes = max(1, len(sequential) + 1)
        for _ in range(passes):
            self._forward_pass(launch)
            changed = False
            for instance in sequential:
                clock_net = instance.clock_net()
                clock_arrival = self._clock_arrival(clock_net)
                new_launch = clock_arrival + instance.cell.clock_to_q
                if abs(new_launch - launch[instance.name]) > 1e-9:
                    launch[instance.name] = new_launch
                    changed = True
            if not changed:
                break
        self._forward_pass(launch)

        # Backward pass: worst delay from a net to any register data pin.
        back = self.required_to_register
        data_pins: Dict[str, float] = {}
        for instance in sequential:
            for pin in ("D", "S", "R"):
                if pin in instance.pins and pin in instance.cell.inputs:
                    net = instance.pins[pin]
                    requirement = (
                        instance.cell.setup_time
                        if pin == "D"
                        else instance.cell.setup_time * 0.5
                    )
                    data_pins[net] = max(data_pins.get(net, _NEG_INF), requirement)
        for net, value in data_pins.items():
            back[net] = value
        for instance in reversed(self.order):
            delay_here = self.gate_delay(instance)
            out_net = instance.output_net()
            downstream = back.get(out_net, _NEG_INF)
            if downstream <= _NEG_INF:
                continue
            for net in instance.input_nets():
                candidate = delay_here + downstream
                if candidate > back.get(net, _NEG_INF):
                    back[net] = candidate

    def _clock_arrival(self, clock_net: Optional[str]) -> float:
        """Arrival time of a clock net (0 for primary-input clocks)."""
        if clock_net is None:
            return 0.0
        candidates = [
            self.arrival_from_inputs.get(clock_net, _NEG_INF),
            self.arrival_from_registers.get(clock_net, _NEG_INF),
        ]
        if clock_net in self.netlist.inputs:
            candidates.append(0.0)
        best = max(candidates)
        return best if best > _NEG_INF else 0.0

    def _forward_pass(self, launch: Mapping[str, float]) -> None:
        a_in: Dict[str, float] = {}
        a_reg: Dict[str, float] = {}
        for net in self.netlist.inputs:
            a_in[net] = 0.0
            a_reg[net] = _NEG_INF
        for instance in self.netlist.sequential_instances():
            out_net = instance.output_net()
            load = self.loads.get(out_net, 0.0)
            fanout = self.net_table[out_net].fanout if out_net in self.net_table else 0
            output_term = instance.cell.output_delay(load, fanout, instance.size)
            a_in.setdefault(out_net, _NEG_INF)
            a_reg[out_net] = launch[instance.name] + output_term
        self._predecessor = {}
        for instance in self.order:
            delay_here = self.gate_delay(instance)
            out_net = instance.output_net()
            best_in, best_in_src = _NEG_INF, None
            best_reg, best_reg_src = _NEG_INF, None
            for net in instance.input_nets():
                value = a_in.get(net, _NEG_INF)
                if value > best_in:
                    best_in, best_in_src = value, net
                value = a_reg.get(net, _NEG_INF)
                if value > best_reg:
                    best_reg, best_reg_src = value, net
            a_in[out_net] = best_in + delay_here if best_in > _NEG_INF else _NEG_INF
            a_reg[out_net] = best_reg + delay_here if best_reg > _NEG_INF else _NEG_INF
            self._predecessor[out_net] = (best_in_src, best_reg_src)
        self.arrival_from_inputs = a_in
        self.arrival_from_registers = a_reg
        # The backward (register set-up) pass runs once in _run: gate delays
        # depend only on loads and fanout, never on launch times, so
        # recomputing it per forward pass repeated identical work.

    # ------------------------------------------------------------------ query

    def minimum_clock_width(self) -> float:
        """Worst register-to-register path plus set-up (>= min pulse widths)."""
        worst = 0.0
        for instance in self.netlist.sequential_instances():
            out_net = instance.output_net()
            launch = self.register_output_delay(instance)
            capture = self.required_to_register.get(out_net, _NEG_INF)
            if capture > _NEG_INF:
                worst = max(worst, launch + capture)
            worst = max(worst, instance.cell.min_pulse_width)
        return worst

    def clock_to_output(self, output: str) -> Optional[float]:
        value = self.arrival_from_registers.get(output, _NEG_INF)
        return None if value <= _NEG_INF else value

    def input_to_output(self, output: str) -> Optional[float]:
        value = self.arrival_from_inputs.get(output, _NEG_INF)
        return None if value <= _NEG_INF else value

    def setup_time_of_input(self, input_net: str) -> Optional[float]:
        value = self.required_to_register.get(input_net, _NEG_INF)
        return None if value <= _NEG_INF else value

    def critical_path(self) -> List[str]:
        """Nets along the worst register-to-register or input-to-output path."""
        # Choose the terminal net with the worst arrival (either tag).
        best_net, best_value, use_reg = None, _NEG_INF, False
        candidates: List[Tuple[str, float, bool]] = []
        for output in self.netlist.outputs:
            for value, tag in (
                (self.arrival_from_registers.get(output, _NEG_INF), True),
                (self.arrival_from_inputs.get(output, _NEG_INF), False),
            ):
                candidates.append((output, value, tag))
        for instance in self.netlist.sequential_instances():
            net = instance.pins.get("D")
            if net is None:
                continue
            for value, tag in (
                (self.arrival_from_registers.get(net, _NEG_INF), True),
                (self.arrival_from_inputs.get(net, _NEG_INF), False),
            ):
                candidates.append((net, value, tag))
        for net, value, tag in candidates:
            if value > best_value:
                best_net, best_value, use_reg = net, value, tag
        if best_net is None:
            return []
        path = [best_net]
        current = best_net
        while current in self._predecessor:
            pred_in, pred_reg = self._predecessor[current]
            nxt = pred_reg if use_reg else pred_in
            if nxt is None:
                break
            path.append(nxt)
            current = nxt
        path.reverse()
        return path

    def critical_instances(self) -> List[GateInstance]:
        """Instances (combinational and sequential) driving the critical path.

        Sequential cells are included because upsizing the flip-flop that
        drives a heavily loaded output is often the only way to meet an
        output-load constraint (Figure 10 of the paper).
        """
        path = set(self.critical_path())
        instances: List[GateInstance] = []
        for instance in self.netlist.sequential_instances():
            if instance.output_net() in path:
                instances.append(instance)
        for instance in self.order:
            if instance.output_net() in path:
                instances.append(instance)
        return instances


def estimate_delay(
    netlist: GateNetlist,
    constraints: Optional[Constraints] = None,
    external_loads: Optional[Mapping[str, float]] = None,
) -> DelayReport:
    """Run delay estimation and package the result as a :class:`DelayReport`."""
    loads: Dict[str, float] = dict(external_loads or {})
    if constraints is not None:
        for output in netlist.outputs:
            load = constraints.load_for(output)
            if load:
                loads[output] = loads.get(output, 0.0) + load
    analysis = DelayAnalysis(netlist, loads)

    report = DelayReport(
        component=netlist.name,
        clock_width=analysis.minimum_clock_width(),
        is_sequential=bool(netlist.sequential_instances()),
    )
    report.min_pulse_width = max(
        (inst.cell.min_pulse_width for inst in netlist.sequential_instances()),
        default=0.0,
    )
    for output in netlist.outputs:
        reg_delay = analysis.clock_to_output(output)
        if reg_delay is not None:
            report.clock_to_output[output] = reg_delay
        comb = analysis.input_to_output(output)
        if comb is not None:
            report.comb_delays[output] = comb
    for input_net in netlist.inputs:
        setup = analysis.setup_time_of_input(input_net)
        if setup is not None:
            report.setup_times[input_net] = setup
    return report
