"""Shape functions: the set of (width, height) layout alternatives.

A shape function (Figure 6 of the paper) lists the aspect-ratio
alternatives a component can be laid out in -- one alternative per strip
count.  The floorplanner picks the alternative that best fits the space
available; ICDB returns the whole list from an instance query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..netlist.gates import GateNetlist
from .area import AreaEstimator, AreaRecord


@dataclass
class ShapeFunction:
    """An ordered list of layout alternatives for one component."""

    component: str
    alternatives: Tuple[AreaRecord, ...]

    def __post_init__(self) -> None:
        self.alternatives = tuple(
            sorted(self.alternatives, key=lambda record: record.strips)
        )

    def __len__(self) -> int:
        return len(self.alternatives)

    def __iter__(self):
        return iter(self.alternatives)

    def alternative(self, index: int) -> AreaRecord:
        """1-based lookup, matching the paper's ``alternative:3`` queries."""
        if not 1 <= index <= len(self.alternatives):
            raise IndexError(
                f"{self.component} has {len(self.alternatives)} shape alternatives, "
                f"requested {index}"
            )
        return self.alternatives[index - 1]

    def widths(self) -> List[float]:
        return [record.width for record in self.alternatives]

    def heights(self) -> List[float]:
        return [record.height for record in self.alternatives]

    def min_area(self) -> AreaRecord:
        return min(self.alternatives, key=lambda record: record.area)

    def best_for_aspect_ratio(self, target: float) -> AreaRecord:
        """Alternative whose width/height ratio is closest to ``target``."""
        return min(
            self.alternatives,
            key=lambda record: abs(math.log(max(record.aspect_ratio, 1e-9) / target)),
        )

    def best_for_bounding_box(self, max_width: float, max_height: float) -> Optional[AreaRecord]:
        """Smallest-area alternative fitting inside the bounding box, if any."""
        fitting = [
            record
            for record in self.alternatives
            if record.width <= max_width and record.height <= max_height
        ]
        if not fitting:
            return None
        return min(fitting, key=lambda record: record.area)

    def render(self) -> str:
        """Render in the paper's ``Alternative=k width=... height=...`` format."""
        return "\n".join(
            f"Alternative={index} width={record.width:.0f} height={record.height:.0f}"
            for index, record in enumerate(self.alternatives, start=1)
        )

    def is_monotone(self) -> bool:
        """True if the alternatives trade width against height monotonically.

        With more strips the component gets narrower and taller, so ordered
        by strip count the widths must not increase and the heights must not
        decrease.  This is the qualitative property Figure 6 shows (plotted
        there from wide/short to narrow/tall); the tests assert it for the
        generated counters.
        """
        widths = self.widths()
        heights = self.heights()
        return all(w2 <= w1 + 1e-9 for w1, w2 in zip(widths, widths[1:])) and all(
            h2 >= h1 - 1e-9 for h1, h2 in zip(heights, heights[1:])
        )


def pareto_filter(records: Sequence[AreaRecord]) -> List[AreaRecord]:
    """Drop alternatives dominated in both width and height by another one.

    The floorplanner only benefits from Pareto-optimal shapes; the points of
    Figure 6 form such a front.
    """
    kept: List[AreaRecord] = []
    for record in records:
        dominated = any(
            other is not record
            and other.width <= record.width + 1e-9
            and other.height <= record.height + 1e-9
            and (other.width < record.width - 1e-9 or other.height < record.height - 1e-9)
            for other in records
        )
        if not dominated:
            kept.append(record)
    return kept


def shape_function(
    netlist: GateNetlist,
    max_strips: Optional[int] = None,
    pareto_only: bool = True,
) -> ShapeFunction:
    """Compute the shape function of a mapped netlist.

    With ``pareto_only`` (the default) alternatives dominated in both width
    and height are dropped, which also makes the width/height tradeoff
    monotone in the strip count.
    """
    estimator = AreaEstimator(netlist)
    records = estimator.alternatives(max_strips)
    if pareto_only:
        records = pareto_filter(records)
    return ShapeFunction(component=netlist.name, alternatives=tuple(records))
