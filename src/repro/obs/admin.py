"""``python -m repro.obs.admin``: a live terminal dashboard for one server.

Polls the typed ``GetMetrics`` request over the normal wire protocol --
the console is just another client, needing no server-side privileges or
side channels -- and renders sessions, in-flight jobs, cache hit rates
and a rolling req/s computed from successive ``requests.total`` deltas.
Modeled on the gridworks-admin live ``DataTable`` views, but stdlib-only:
full-screen :mod:`curses` when the terminal supports it, plain repainted
text otherwise (``--plain``), one-shot mode for scripts and tests
(``--once``), raw snapshot JSON for piping (``--json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Mapping, Optional

from ..net.client import connect

#: Generation-cache stages shown as dashboard rows (matches
#: :attr:`repro.core.gencache.GenerationCache.STAGES` plus the aggregate).
_GEN_STAGES = ("expand", "synth", "flows", "optimize", "total")


def _rate(hits: float, lookups: float) -> str:
    if lookups <= 0:
        return "   --"
    return f"{100.0 * hits / lookups:4.1f}%"


def _quantile_ms(hist: Mapping[str, Any], q: float) -> Optional[float]:
    """Upper-bound estimate of the q-quantile from fixed buckets."""
    count = hist.get("count") or 0
    if not count:
        return None
    target = q * count
    cumulative = 0
    bounds = hist.get("bounds") or []
    for index, bucket in enumerate(hist.get("counts") or []):
        cumulative += bucket
        if cumulative >= target:
            if index < len(bounds):
                return float(bounds[index])
            return float(hist.get("max") or bounds[-1])
    return float(hist.get("max") or 0.0)


def render_dashboard(
    snapshot: Mapping[str, Any],
    address: str = "",
    req_per_s: Optional[float] = None,
) -> str:
    """One frame of the dashboard as plain text (pure, testable).

    ``req_per_s`` is the caller-computed rolling rate (the renderer is
    stateless); ``None`` renders as warming-up dashes.
    """
    counters: Mapping[str, Any] = snapshot.get("counters") or {}
    gauges: Mapping[str, Any] = snapshot.get("gauges") or {}
    histograms: Mapping[str, Any] = snapshot.get("histograms") or {}

    def c(name: str, default: float = 0) -> float:
        value = counters.get(name, default)
        return value if isinstance(value, (int, float)) else default

    lines: List[str] = []
    stamp = snapshot.get("time")
    when = (
        time.strftime("%H:%M:%S", time.localtime(stamp))
        if isinstance(stamp, (int, float))
        else "--:--:--"
    )
    lines.append(f"ICDB admin console -- {address or 'server'} @ {when}")
    lines.append("=" * 64)

    rate_text = "   --" if req_per_s is None else f"{req_per_s:8.1f}"
    errors = c("requests.errors")
    lines.append(
        f"requests   total {c('requests.total'):>10,.0f}   "
        f"req/s {rate_text}   errors {errors:,.0f}"
    )
    latency = histograms.get("request.latency_ms")
    if latency and latency.get("count"):
        avg = latency["sum"] / latency["count"]
        p50 = _quantile_ms(latency, 0.50)
        p95 = _quantile_ms(latency, 0.95)
        lines.append(
            f"latency    avg {avg:8.2f} ms   p50 <= {p50:8.2f} ms   "
            f"p95 <= {p95:8.2f} ms   max {latency.get('max') or 0:.2f} ms"
        )
    lines.append("")

    sessions = gauges.get("net.sessions", 0)
    attached = gauges.get("net.sessions_attached", 0)
    lines.append(
        f"sessions   live {sessions:>6,.0f}   attached {attached:>6,.0f}   "
        f"created {c('net.sessions_created'):>8,.0f}"
    )
    lines.append(
        f"jobs       running {c('jobs.running'):>4,.0f}   "
        f"queued {c('jobs.queued'):>4,.0f}   "
        f"workers {c('jobs.workers'):>3,.0f}   "
        f"submitted {c('jobs.submitted'):>8,.0f}   "
        f"done {c('jobs.done'):>6,.0f}   failed {c('jobs.failed'):>4,.0f}   "
        f"inline {c('jobs.inline_overflows'):>4,.0f}"
    )
    if "fleet.workers_live" in counters:
        lines.append(
            f"fleet      workers {c('fleet.workers_live'):>3,.0f}"
            f"/{c('fleet.workers_connected'):,.0f}   "
            f"dead {c('fleet.workers_dead'):>3,.0f}   "
            f"dispatched {c('fleet.dispatched'):>7,.0f}   "
            f"done {c('fleet.completed'):>7,.0f}   "
            f"steals {c('fleet.steals'):>5,.0f}"
        )
        lines.append(
            f"           requeues {c('fleet.requeues'):>4,.0f}   "
            f"fallbacks {c('fleet.fallbacks'):>5,.0f}   "
            f"installs {c('fleet.installs'):>7,.0f}   "
            f"coalesced {c('fleet.coalesced'):>5,.0f}   "
            f"warm fanouts {c('fleet.warm_fanouts'):>4,.0f}"
        )
    lines.append("")

    lines.append(
        f"result cache    hit {_rate(c('cache.result.hits'), c('cache.result.lookups'))}   "
        f"hits {c('cache.result.hits'):>8,.0f}   "
        f"lookups {c('cache.result.lookups'):>8,.0f}   "
        f"entries {c('cache.result.entries'):>6,.0f}"
    )
    for stage in _GEN_STAGES:
        lookups = c(f"gencache.{stage}.lookups")
        if not lookups and stage != "total":
            continue
        lines.append(
            f"gen {stage:<10}  hit {_rate(c(f'gencache.{stage}.hits'), lookups)}   "
            f"hits {c(f'gencache.{stage}.hits'):>8,.0f}   "
            f"lookups {lookups:>8,.0f}   "
            f"entries {c(f'gencache.{stage}.entries'):>6,.0f}"
        )
    lines.append("")
    if "store.journal.appends" in counters:
        lines.append(
            f"store      appends {c('store.journal.appends'):>8,.0f}   "
            f"fsyncs {c('store.journal.fsyncs'):>8,.0f}   "
            f"snapshots {c('store.snapshot.count'):>4,.0f}   "
            f"last seq {c('store.last_seq'):>8,.0f}"
        )
        lines.append(
            f"recovery   replayed {c('store.recovery.events_replayed'):>7,.0f}   "
            f"from snapshot seq {c('store.recovery.snapshot_seq'):>8,.0f}"
        )
        append_hist = histograms.get("store.journal.append_ms")
        if append_hist and append_hist.get("count"):
            avg = append_hist["sum"] / append_hist["count"]
            p95 = _quantile_ms(append_hist, 0.95)
            lines.append(
                f"journal    append avg {avg:6.3f} ms   p95 <= {p95:6.3f} ms   "
                f"max {append_hist.get('max') or 0:.3f} ms"
            )
        lines.append("")
    lines.append(
        f"net        push drops {c('net.push_drops'):,.0f}   "
        f"shutdown errors {c('net.shutdown_errors'):,.0f}   "
        f"job event drops {c('jobs.event_drops'):,.0f}"
    )
    return "\n".join(lines)


class _Poller:
    """Owns the connection and the rolling-rate state between frames."""

    def __init__(self, host: str, port: int):
        self.address = f"{host}:{port}"
        self._client = connect(host, port, client="obs-admin")
        self._prev_total: Optional[float] = None
        self._prev_mono: Optional[float] = None

    def frame(self) -> str:
        snapshot = self._client.metrics()
        now = time.monotonic()
        total = snapshot.get("counters", {}).get("requests.total")
        req_per_s: Optional[float] = None
        if (
            isinstance(total, (int, float))
            and self._prev_total is not None
            and self._prev_mono is not None
            and now > self._prev_mono
        ):
            req_per_s = max(0.0, (total - self._prev_total) / (now - self._prev_mono))
        if isinstance(total, (int, float)):
            self._prev_total = total
            self._prev_mono = now
        return render_dashboard(snapshot, address=self.address, req_per_s=req_per_s)

    def raw(self) -> Dict[str, Any]:
        return self._client.metrics()

    def close(self) -> None:
        self._client.close()


def _curses_loop(poller: _Poller, interval: float) -> None:  # pragma: no cover - tty only
    import curses

    def loop(screen) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        while True:
            text = poller.frame()
            screen.erase()
            height, width = screen.getmaxyx()
            for row, line in enumerate(text.splitlines()[: height - 1]):
                screen.addnstr(row, 0, line, width - 1)
            screen.addnstr(
                height - 1, 0, "q to quit", width - 1, curses.A_REVERSE
            )
            screen.refresh()
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                key = screen.getch()
                if key in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    curses.wrapper(loop)


def _plain_loop(poller: _Poller, interval: float) -> None:  # pragma: no cover - interactive
    try:
        while True:
            print("\x1b[2J\x1b[H" + poller.frame(), flush=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.admin",
        description="Live terminal dashboard for an ICDB server (polls GetMetrics).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=7361, help="server TCP port")
    parser.add_argument(
        "--interval", type=float, default=1.0, help="poll interval in seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    parser.add_argument(
        "--json", action="store_true", help="print one raw snapshot as JSON and exit"
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="repainted plain text instead of the curses screen",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")

    poller = _Poller(args.host, args.port)
    try:
        if args.json:
            print(json.dumps(poller.raw(), indent=2, sort_keys=True))
            return 0
        if args.once:
            print(poller.frame())
            return 0
        use_curses = not args.plain and sys.stdout.isatty()
        if use_curses:
            try:
                _curses_loop(poller, args.interval)
            except Exception:  # noqa: BLE001 - no curses? degrade, don't die
                _plain_loop(poller, args.interval)
        else:
            _plain_loop(poller, args.interval)
        return 0
    finally:
        poller.close()


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
