"""Structured logging: per-request JSON lines and typed server events.

Two consumers, one discipline (machine-parseable lines, never free
text -- the proactor event style of the gridworks exemplar):

* :class:`RequestLog` -- the per-request log the service emits from its
  envelope path: one JSON object per line with the request kind, session
  id, latency, error code and result-cache deltas, plus a slow-query
  threshold that escalates matching lines (and can run in slow-only
  mode, the ``--slow-ms``-without-``--log-requests`` server setup);
* :func:`get_logger` / :class:`StructuredLogger` -- JSON event records
  routed through the stdlib :mod:`logging` tree (``repro.net.server``
  etc.), used where errors were previously swallowed silently: dropped
  job-event pushes, shutdown failures.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Dict, IO, List, Optional, TextIO, Tuple, Union

from .metrics import Clock, SYSTEM_CLOCK


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class StructuredLogger:
    """JSON event records through a stdlib logger.

    ``logger.debug("push_drop", peer="1.2.3.4:99", error="...")`` emits
    one line ``{"event": "push_drop", "peer": ..., "error": ...}`` at
    DEBUG level on the named stdlib logger, so deployments keep their
    existing handler / level configuration while every record stays
    machine-parseable.
    """

    def __init__(self, name: str):
        self.name = name
        self._logger = logging.getLogger(name)

    def _emit(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if not self._logger.isEnabledFor(level):
            return
        record = {"event": event}
        record.update({key: _jsonable(value) for key, value in fields.items()})
        self._logger.log(level, json.dumps(record, sort_keys=True))

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, event, fields)


_LOGGERS: Dict[str, StructuredLogger] = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """The process-wide structured logger for ``name`` (cached)."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = StructuredLogger(name)
        return logger


#: One buffered record: (ts, kind, session_id, ok, elapsed_ms,
#: error_code, cached, hits_delta, misses_delta, extra-or-None, slow).
_Record = Tuple[
    float, str, str, bool, float, Optional[str], bool, int, int,
    Optional[Dict[str, Any]], bool,
]


class RequestLog:
    """One JSON line per request, with a slow-query threshold.

    Give it an open ``stream`` or a ``path`` (opened append-mode, so a
    restarted server extends its log).  ``slow_ms`` marks any request at
    or above the threshold with ``"slow": true``; with ``slow_only=True``
    everything below the threshold is dropped -- the cheap production
    setup that logs only the outliers.

    The hot path (:meth:`record`) only captures the raw fields; lines
    are formatted and written in batches of ``flush_every`` records so
    the per-request tax stays small (see
    ``benchmarks/bench_obs_overhead.py``).  Slow lines drain -- and the
    sink flushes -- immediately, so the outliers an operator tails the
    log for are never stuck in the buffer; everything else becomes
    visible at the next batch boundary, :meth:`flush` or :meth:`close`.
    A lock serializes the buffer (the connection fast path and the job
    workers share one log).
    """

    def __init__(
        self,
        stream: Optional[Union[TextIO, "IO[str]"]] = None,
        path: Optional[str] = None,
        slow_ms: Optional[float] = None,
        slow_only: bool = False,
        clock: Optional[Clock] = None,
        flush_every: int = 64,
    ):
        if (stream is None) == (path is None):
            raise ValueError("RequestLog needs exactly one of 'stream' or 'path'")
        if slow_only and slow_ms is None:
            raise ValueError("slow_only needs a slow_ms threshold")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self._owns_stream = stream is None
        self._stream = stream if stream is not None else open(
            path, "a", encoding="utf-8"
        )
        self.slow_ms = slow_ms
        self.slow_only = slow_only
        self.flush_every = flush_every
        self._clock = clock or SYSTEM_CLOCK
        # Bound once -- record() is hot; the stock clock goes straight
        # to time.time (skipping a Python-level wrapper call).
        self._now = (
            time.time if type(self._clock) is Clock else self._clock.time
        )
        self._lock = threading.Lock()
        self._pending: List[_Record] = []
        #: Escaped-string memo for the hot fields (request kinds and
        #: session ids repeat heavily); bounded so a hostile stream of
        #: unique ids cannot grow it without limit.
        self._escaped: Dict[str, str] = {}
        #: Per-(kind, session, flags) printf templates: only four
        #: numbers vary between lines of the same shape, so one cached
        #: ``%`` application replaces the whole field-by-field assembly.
        self._templates: Dict[tuple, str] = {}

    def _escape(self, value: str) -> str:
        escaped = self._escaped.get(value)
        if escaped is None:
            if len(self._escaped) >= 4096:
                self._escaped.clear()
            escaped = self._escaped[value] = json.dumps(value)
        return escaped

    def _template(self, key: tuple) -> str:
        kind, session_id, ok, error_code, cached, slow = key
        if len(self._templates) >= 1024:
            self._templates.clear()
        # The escaped strings are spliced into a %-format template, so
        # any literal percent they carry must be doubled.
        kind_json = self._escape(kind).replace("%", "%%")
        session_json = self._escape(session_id).replace("%", "%%")
        error_json = (
            json.dumps(error_code).replace("%", "%%")
            if error_code is not None else "null"
        )
        template = self._templates[key] = (
            '{"ts": %.6f, "event": "request"'
            f', "kind": {kind_json}'
            f', "session": {session_json}'
            f', "ok": {"true" if ok else "false"}'
            f', "error": {error_json}'
            ', "elapsed_ms": %.4f'
            f', "cached": {"true" if cached else "false"}'
            ', "cache_hits_delta": %d, "cache_misses_delta": %d'
            f', "slow": {"true" if slow else "false"}'
        )
        return template

    def record(
        self,
        kind: str,
        session_id: str,
        ok: bool,
        elapsed_ms: float,
        error_code: Optional[str] = None,
        cached: bool = False,
        cache_hits_delta: int = 0,
        cache_misses_delta: int = 0,
        **extra: Any,
    ) -> None:
        """Buffer one request record; never raises into the request path."""
        slow = self.slow_ms is not None and elapsed_ms >= self.slow_ms
        if self.slow_only and not slow:
            return
        # Lock-free buffering: list.append is atomic under the GIL, and
        # the drain swaps the whole list out under the lock, so records
        # keep their append order.  Two threads racing past the length
        # check just means one drain finds the buffer already empty.
        pending = self._pending
        pending.append((
            self._now(), kind, session_id, ok, elapsed_ms, error_code,
            cached, cache_hits_delta, cache_misses_delta,
            extra or None, slow,
        ))
        if slow or len(pending) >= self.flush_every:
            with self._lock:
                self._drain_locked(flush=slow)

    def _drain_locked(self, flush: bool) -> None:
        """Format and write every buffered record (caller holds the lock)."""
        if not self._pending:
            if flush:
                try:
                    self._stream.flush()
                except (OSError, ValueError):
                    pass
            return
        records, self._pending = self._pending, []
        templates_get = self._templates.get
        lines = []
        append_line = lines.append
        # Hand-assembled JSON: json.dumps over an intermediate dict
        # measures ~3x slower; string fields still go through json.dumps
        # (memoized inside the per-shape templates), so escaping stays
        # correct.
        for (ts, kind, session_id, ok, elapsed_ms, error_code,
                cached, hits_delta, misses_delta, extra, slow) in records:
            shape = (kind, session_id, ok, error_code, cached, slow)
            template = templates_get(shape)
            if template is None:
                template = self._template(shape)
            text = template % (ts, elapsed_ms, hits_delta, misses_delta)
            if extra:
                parts = []
                for key, value in extra.items():
                    try:
                        encoded = json.dumps(value)
                    except (TypeError, ValueError):
                        encoded = json.dumps(repr(value))
                    parts.append(f"{json.dumps(key)}: {encoded}")
                text += ", " + ", ".join(parts)
            append_line(text + "}\n")
        try:
            self._stream.write("".join(lines))
            if flush:
                self._stream.flush()
        except (OSError, ValueError):
            pass  # a closed or full log sink must not fail the request

    def flush(self) -> None:
        """Drain the buffer and flush the sink (lines become readable)."""
        with self._lock:
            self._drain_locked(flush=True)

    def close(self) -> None:
        self.flush()
        if self._owns_stream:
            try:
                self._stream.close()
            except OSError:
                pass


__all__ = ["RequestLog", "StructuredLogger", "get_logger"]
