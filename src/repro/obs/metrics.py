"""Thread-safe metrics: counters, gauges, histograms, collectors, export.

The registry is deliberately *pull-oriented* where the stack already
keeps counters: the result cache and the generation cache move their
counters atomically under their own locks (the stress suite asserts
``hits + misses == lookups`` and ``entries == stores - evictions``), so
the registry reads them through registered *collectors* at snapshot time
instead of duplicating the accounting -- the exported numbers ARE the
in-process numbers, not a parallel set that can drift.

Counters and histograms the stack did not already keep (per-request
totals, latency distributions, push drops) live in the registry itself;
each instrument carries its own lock, so the hot request path pays two
short uncontended acquisitions, never a registry-wide one.

:class:`Clock` is the seam between wall time (display timestamps) and
monotonic time (every duration and histogram observation): an NTP step
moves ``time.time()`` but not ``time.monotonic()``, so durations derived
from wall-clock pairs can come out negative or huge.
:class:`ManualClock` makes both axes scriptable for deterministic tests.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: Fixed latency bucket upper bounds, in milliseconds.  Chosen around the
#: measured request profile: cached hits sit well under 1 ms, pipelined
#: batches in the tens, cold generations in the hundreds to seconds.
DEFAULT_LATENCY_BOUNDS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Version stamp of the snapshot schema (see :func:`validate_snapshot`).
SNAPSHOT_VERSION = 1

Number = Union[int, float]


class Clock:
    """Wall time for timestamps, monotonic time for durations.

    Everything in the service that *displays* a moment reads
    :meth:`time`; everything that *measures* an interval subtracts two
    :meth:`monotonic` readings.  Tests inject a :class:`ManualClock` to
    make both axes deterministic (and to prove wall-clock steps cannot
    poison durations).
    """

    def time(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A scriptable clock for deterministic tests.

    ``advance()`` moves both axes; ``step_wall()`` moves only the wall
    axis (an NTP step), which must never affect measured durations.
    ``auto_tick`` advances the monotonic axis by that much on every
    reading, so code that computes a duration without sleeping still
    observes strictly increasing time.
    """

    def __init__(self, wall: float = 1_000_000.0, mono: float = 50.0,
                 auto_tick: float = 0.0):
        self._lock = threading.Lock()
        self._wall = wall
        self._mono = mono
        self.auto_tick = auto_tick

    def time(self) -> float:
        with self._lock:
            return self._wall

    def monotonic(self) -> float:
        with self._lock:
            value = self._mono
            self._mono += self.auto_tick
            return value

    def advance(self, seconds: float) -> None:
        with self._lock:
            self._wall += seconds
            self._mono += seconds

    def step_wall(self, seconds: float) -> None:
        """Jump the wall clock (either direction) without touching the
        monotonic axis -- what an NTP correction does."""
        with self._lock:
            self._wall += seconds


#: The default clock every production component shares.
SYSTEM_CLOCK = Clock()


class Counter:
    """A monotonically increasing integer (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either set directly or read via a callback."""

    __slots__ = ("name", "_lock", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Number]] = None):
        self.name = name
        self._lock = threading.Lock()
        self._value: Number = 0
        self._fn = fn

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Number:
        fn = self._fn
        if fn is not None:
            try:
                return fn()
            except Exception:  # noqa: BLE001 - a dying gauge must not kill an export
                return 0
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution of observations (thread-safe).

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last bound.  The snapshot carries cumulative
    ``count`` / ``sum`` plus ``min`` / ``max``, enough for rate and
    quantile estimates without per-observation storage.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS_MS):
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


def _flatten(prefix: str, data: Mapping[str, Any], into: Dict[str, Number]) -> None:
    for key, value in data.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten(name, value, into)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            into[name] = value


class MetricsRegistry:
    """The process-wide metric namespace (thread-safe, get-or-create).

    Three instrument families plus *collectors*: a collector is a
    zero-argument callable returning a (possibly nested) mapping of
    numbers -- the existing ``stats()`` surfaces of the result cache,
    generation cache and job manager plug in unchanged.  Collector output
    is flattened into the ``counters`` section of the snapshot under the
    registered prefix, so the export always equals the authoritative
    in-process state at snapshot time.
    """

    def __init__(self, clock: Optional[Clock] = None):
        self._clock = clock or SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: "Dict[str, Callable[[], Mapping[str, Any]]]" = {}

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str, fn: Optional[Callable[[], Number]] = None) -> Gauge:
        """Get or create a gauge; passing ``fn`` (re)binds its callback.

        Re-registration replaces the callback rather than erroring: a
        service can outlive several session registries, and the newest
        owner of a name is the live one.
        """
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None or fn is not None:
                instrument = self._gauges[name] = Gauge(name, fn)
            return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS_MS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    def register_collector(
        self, prefix: str, fn: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Pull ``fn()`` into the snapshot under ``prefix.`` (replaces)."""
        with self._lock:
            self._collectors[prefix] = fn

    # --------------------------------------------------------------- snapshot

    def snapshot(
        self,
        prefixes: Tuple[str, ...] = (),
        include_histograms: bool = True,
    ) -> Dict[str, Any]:
        """The JSON-safe state of every instrument and collector.

        ``prefixes`` filters metric names (keep those starting with any
        given prefix); empty means everything.  ``include_histograms=False``
        answers with an empty histogram section -- the cheap polling mode
        for dashboards that only chart counters.  The counters section
        merges owned counters with flattened collector output; a failing
        collector is skipped (an export must never take the service down).

        Collectors run *after* the registry lock is released: a collector
        like ``JobManager.stats`` takes its own subsystem lock, and code
        holding a subsystem lock is allowed to touch instruments (which
        take only the registry or per-instrument lock) -- keeping the two
        lock orders from ever nesting in opposite directions.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values()) if include_histograms else []
            collectors = list(self._collectors.items())
        counter_values: Dict[str, Number] = {c.name: c.value for c in counters}
        for prefix, fn in collectors:
            try:
                data = fn()
            except Exception:  # noqa: BLE001 - see docstring
                continue
            if isinstance(data, Mapping):
                _flatten(prefix, data, counter_values)
        gauge_values: Dict[str, Number] = {g.name: g.value for g in gauges}
        histogram_values = {h.name: h.snapshot() for h in histograms}
        if prefixes:
            def keep(name: str) -> bool:
                return any(name.startswith(p) for p in prefixes)

            counter_values = {k: v for k, v in counter_values.items() if keep(k)}
            gauge_values = {k: v for k, v in gauge_values.items() if keep(k)}
            histogram_values = {
                k: v for k, v in histogram_values.items() if keep(k)
            }
        return {
            "version": SNAPSHOT_VERSION,
            "time": self._clock.time(),
            "counters": counter_values,
            "gauges": gauge_values,
            "histograms": histogram_values,
        }


def validate_snapshot(snapshot: Any) -> Dict[str, Any]:
    """Schema-check one exported snapshot; returns it or raises ValueError.

    The contract the CI artifact (and any external scraper) relies on:
    top-level ``version`` / ``time`` / ``counters`` / ``gauges`` /
    ``histograms``, numeric leaves, and internally consistent histogram
    bucket arrays (``len(counts) == len(bounds) + 1``,
    ``sum(counts) == count``).
    """
    if not isinstance(snapshot, Mapping):
        raise ValueError(f"snapshot must be a mapping, got {type(snapshot).__name__}")
    for key in ("version", "time", "counters", "gauges", "histograms"):
        if key not in snapshot:
            raise ValueError(f"snapshot is missing the {key!r} section")
    if snapshot["version"] != SNAPSHOT_VERSION:
        raise ValueError(f"unknown snapshot version {snapshot['version']!r}")
    if not isinstance(snapshot["time"], (int, float)):
        raise ValueError("snapshot 'time' must be a number")
    for section in ("counters", "gauges"):
        values = snapshot[section]
        if not isinstance(values, Mapping):
            raise ValueError(f"snapshot {section!r} must be a mapping")
        for name, value in values.items():
            if not isinstance(name, str):
                raise ValueError(f"{section} key {name!r} is not a string")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{section}[{name!r}] is not a number: {value!r}")
    histograms = snapshot["histograms"]
    if not isinstance(histograms, Mapping):
        raise ValueError("snapshot 'histograms' must be a mapping")
    for name, hist in histograms.items():
        if not isinstance(hist, Mapping):
            raise ValueError(f"histogram {name!r} must be a mapping")
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            raise ValueError(f"histogram {name!r} needs 'bounds' and 'counts' lists")
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"histogram {name!r}: {len(counts)} counts for "
                f"{len(bounds)} bounds (want bounds + 1)"
            )
        if sum(counts) != hist.get("count"):
            raise ValueError(f"histogram {name!r}: bucket counts do not sum to count")
    return dict(snapshot)


class MetricsExporter:
    """Periodically writes registry snapshots as JSON to a file.

    Writes go to ``<path>.tmp`` then :func:`os.replace`, so a reader
    (dashboard, scraper, CI validation) never observes a torn file.  The
    thread is a daemon and wakes early on :meth:`stop`; ``write_once``
    is the synchronous core the tests and the CI schema check call
    directly.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Union[str, "os.PathLike[str]"],
        interval: float = 10.0,
    ):
        if interval <= 0:
            raise ValueError(f"exporter interval must be > 0, got {interval}")
        self.registry = registry
        self.path = os.fspath(path)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def write_once(self) -> Dict[str, Any]:
        snapshot = self.registry.snapshot()
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)
        return snapshot

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.write_once()
            except OSError:
                pass  # a full disk must not kill the exporter; retried next tick
            self._stop.wait(self.interval)

    def start(self) -> "MetricsExporter":
        if self._thread is not None:
            raise RuntimeError("exporter is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="icdb-metrics-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, write_final: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if write_final:
            try:
                self.write_once()
            except OSError:
                pass


__all__: List[str] = [
    "Clock",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsExporter",
    "MetricsRegistry",
    "SNAPSHOT_VERSION",
    "SYSTEM_CLOCK",
    "validate_snapshot",
]
