"""Operability surface: metrics, structured request logs, admin console.

The serving stack keeps rich internal counters (result-cache and
generation-cache accounting, job states, session counts) but until this
package none of them were observable from outside the process.  Three
pieces make them so:

* :mod:`repro.obs.metrics` -- a thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket latency histograms, pull-style
  collectors over the existing cache/job counters), the periodic JSON
  :class:`MetricsExporter`, and the :class:`Clock` seam that separates
  wall-clock timestamps (display) from monotonic durations (histograms);
* :mod:`repro.obs.reqlog` -- structured logging: one JSON line per
  request (kind, session, latency, error code, cache deltas) with a
  slow-query threshold, plus :func:`get_logger` for machine-parseable
  server events (push drops, shutdown errors);
* :mod:`repro.obs.admin` -- ``python -m repro.obs.admin``, a live
  terminal dashboard polling the ``GetMetrics`` request over the wire
  protocol (sessions, in-flight jobs, cache hit rates, rolling req/s).

The registry is exported end-to-end as the typed
:class:`~repro.api.messages.GetMetrics` request:
``RemoteClient.metrics()`` over TCP / loopback, ``command: metrics`` in
CQL, and ``--metrics-interval`` / ``--metrics-path`` snapshot files on
``python -m repro.net.server``.  See ``docs/observability.md``.
"""

from .metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    SNAPSHOT_VERSION,
    Clock,
    Counter,
    Gauge,
    Histogram,
    ManualClock,
    MetricsExporter,
    MetricsRegistry,
    SYSTEM_CLOCK,
    validate_snapshot,
)
from .reqlog import RequestLog, StructuredLogger, get_logger

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsExporter",
    "MetricsRegistry",
    "RequestLog",
    "SNAPSHOT_VERSION",
    "SYSTEM_CLOCK",
    "StructuredLogger",
    "get_logger",
    "validate_snapshot",
]
