"""Interface / wiring component implementations.

These are the GENUS interface, wire and switch-box functions: buffer,
tri-state driver, schmitt trigger, clock driver, wired-or, delay element,
bit-field concatenation / extraction, plus the selectable bitwise logic
unit.
"""

from __future__ import annotations

from .catalog import (
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)

BUFFER_IIF = """
NAME: BUFFER;
FUNCTIONS: BUF;
PARAMETER: size;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = ~b I[i];
}
"""

TRI_STATE_IIF = """
NAME: TRI_STATE;
FUNCTIONS: TRI_STATE;
PARAMETER: size;
INORDER: I[size], EN;
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = I[i] ~t EN;
}
"""

SCHMITT_TRIGGER_IIF = """
NAME: SCHMITT_TRIGGER;
FUNCTIONS: SCHM_TGR;
PARAMETER: size;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = ~s I[i];
}
"""

CLOCK_DRIVER_IIF = """
NAME: CLOCK_DRIVER;
FUNCTIONS: CLK_DR;
PARAMETER: fanout;
INORDER: CLK;
OUTORDER: O[fanout];
VARIABLE: i;
{
    #for(i=0; i<fanout; i++)
        O[i] = ~b CLK;
}
"""

WIRE_OR_IIF = """
NAME: WIRE_OR;
FUNCTIONS: WIRE_OR;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = A[i] ~w B[i];
}
"""

DELAY_IIF = """
NAME: DELAY_ELEMENT;
FUNCTIONS: DELAY;
PARAMETER: size, amount;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = I[i] ~d amount;
}
"""

CONCAT_IIF = """
NAME: CONCAT;
FUNCTIONS: CONCAT;
PARAMETER: high_size, low_size;
INORDER: H[high_size], L[low_size];
OUTORDER: O[high_size+low_size];
VARIABLE: i;
{
    #for(i=0; i<low_size; i++)
        O[i] = L[i];
    #for(i=0; i<high_size; i++)
        O[low_size+i] = H[i];
}
"""

EXTRACT_IIF = """
NAME: EXTRACT;
FUNCTIONS: EXTRACT;
PARAMETER: size, offset, width;
INORDER: I[size];
OUTORDER: O[width];
VARIABLE: i;
{
    #for(i=0; i<width; i++)
        O[i] = I[offset+i];
}
"""

LOGIC_UNIT_IIF = """
NAME: LOGIC_UNIT;
FUNCTIONS: AND, OR, XOR, NOT;
PARAMETER: size;
INORDER: A[size], B[size], S0, S1;
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = !S1*!S0*(A[i]*B[i]) + !S1*S0*(A[i]+B[i])
             + S1*!S0*(A[i](+)B[i]) + S1*S0*(!A[i]);
}
"""


def register(catalog: ComponentCatalog) -> None:
    """Register the interface / wiring implementations in ``catalog``."""
    catalog.add(
        ComponentImplementation(
            name="buffer",
            component_type="Buffer",
            functions=("BUF",),
            iif_source=BUFFER_IIF,
            default_parameters={"size": 1},
            bindings=(FunctionBinding("BUF", (("I0", "I"), ("O0", "O")), ()),),
            description="Non-inverting buffer",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="tri_state",
            component_type="Tri_state",
            functions=("TRI_STATE",),
            iif_source=TRI_STATE_IIF,
            default_parameters={"size": 1},
            bindings=(
                FunctionBinding(
                    "TRI_STATE",
                    (("I0", "I"), ("C0", "EN"), ("O0", "O")),
                    (ControlSetting("EN", 1),),
                ),
            ),
            description="Tri-state bus driver",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="schmitt_trigger",
            component_type="Schmitt_trigger",
            functions=("SCHM_TGR",),
            iif_source=SCHMITT_TRIGGER_IIF,
            default_parameters={"size": 1},
            bindings=(FunctionBinding("SCHM_TGR", (("I0", "I"), ("O0", "O")), ()),),
            description="Schmitt-trigger input conditioner",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="clock_driver",
            component_type="Clock_driver",
            functions=("CLK_DR",),
            iif_source=CLOCK_DRIVER_IIF,
            default_parameters={"fanout": 4},
            bindings=(FunctionBinding("CLK_DR", (("I0", "CLK"), ("O0", "O")), ()),),
            description="Clock distribution driver",
            attribute_parameters={"fanout": "fanout"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="wire_or",
            component_type="Wire_or",
            functions=("WIRE_OR",),
            iif_source=WIRE_OR_IIF,
            default_parameters={"size": 1},
            bindings=(
                FunctionBinding("WIRE_OR", (("I0", "A"), ("I1", "B"), ("O0", "O")), ()),
            ),
            description="Wired-or of two driven nets",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="delay_element",
            component_type="Delay",
            functions=("DELAY",),
            iif_source=DELAY_IIF,
            default_parameters={"size": 1, "amount": 10},
            bindings=(FunctionBinding("DELAY", (("I0", "I"), ("O0", "O")), ()),),
            description="Pure delay element",
            attribute_parameters={"size": "size", "amount": "amount"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="concat",
            component_type="Concat",
            functions=("CONCAT",),
            iif_source=CONCAT_IIF,
            default_parameters={"high_size": 4, "low_size": 4},
            bindings=(
                FunctionBinding("CONCAT", (("I0", "H"), ("I1", "L"), ("O0", "O")), ()),
            ),
            description="Bit-field concatenation switch box",
            attribute_parameters={"high_size": "high_size", "low_size": "low_size"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="extract",
            component_type="Extract",
            functions=("EXTRACT",),
            iif_source=EXTRACT_IIF,
            default_parameters={"size": 8, "offset": 0, "width": 4},
            bindings=(FunctionBinding("EXTRACT", (("I0", "I"), ("O0", "O")), ()),),
            description="Bit-field extraction switch box",
            attribute_parameters={"size": "size", "offset": "offset", "width": "width"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="logic_unit",
            component_type="Logic_unit",
            functions=("AND", "OR", "XOR", "NOT"),
            iif_source=LOGIC_UNIT_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "AND",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S1", 0), ControlSetting("S0", 0)),
                ),
                FunctionBinding(
                    "OR",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S1", 0), ControlSetting("S0", 1)),
                ),
                FunctionBinding(
                    "XOR",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S1", 1), ControlSetting("S0", 0)),
                ),
                FunctionBinding(
                    "NOT",
                    (("I0", "A"), ("O0", "O")),
                    (ControlSetting("S1", 1), ControlSetting("S0", 1)),
                ),
            ),
            description="Bitwise logic unit with a two-bit operation select",
        )
    )
