"""Storage component implementations: registers, shift register, register file.

The parallel-load register follows Appendix A example 1; the universal shift
register is a 74194-style component (hold / shift-left / shift-right /
parallel load); the register file exercises the IIF aggregate-assignment
operators for its read multiplexer and the ``**`` C-expression operator for
its address decode.
"""

from __future__ import annotations

from .catalog import (
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)

REGISTER_IIF = """
NAME: REGISTER;
FUNCTIONS: STORAGE;
PARAMETER: size;
INORDER: I[size], LOAD, CLK;
OUTORDER: Q[size];
PIIFVARIABLE: NL, LD, CP;
VARIABLE: i;
{
    CP = ~b CLK;
    NL = !LOAD;
    LD = !NL;
    #for(i=0; i<size; i++)
    {
        Q[i] = (I[i]*LD + Q[i]*NL) @(~r CP);
    }
}
"""

SHIFT_REGISTER_IIF = """
NAME: SHIFT_REGISTER;
FUNCTIONS: SHL1, SHR1, STORAGE;
PARAMETER: size;
INORDER: I[size], SIN_L, SIN_R, S0, S1, CLK;
OUTORDER: Q[size];
PIIFVARIABLE: D[size], LEFT_IN[size], RIGHT_IN[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
    {
        #if (i == 0)
            LEFT_IN[i] = SIN_L;
        #else
            LEFT_IN[i] = Q[i-1];
        #if (i == size-1)
            RIGHT_IN[i] = SIN_R;
        #else
            RIGHT_IN[i] = Q[i+1];
        D[i] = !S1*!S0*Q[i] + !S1*S0*LEFT_IN[i] + S1*!S0*RIGHT_IN[i] + S1*S0*I[i];
        Q[i] = (D[i]) @(~r CLK);
    }
}
"""

#: ``awidth`` address bits select one of ``2**awidth`` words of ``size`` bits.
REGISTER_FILE_IIF = """
NAME: REGISTER_FILE;
FUNCTIONS: READ, WRITE, STORAGE;
PARAMETER: size, awidth;
INORDER: WD[size], WA[awidth], RA[awidth], WE, CLK;
OUTORDER: RD[size];
PIIFVARIABLE: R[(2**awidth)*size], WSEL[2**awidth], RSEL[2**awidth];
VARIABLE: w, j, k;
{
    #for(w=0; w<2**awidth; w++)
    {
        #for(k=0; k<awidth; k++)
        {
            #if ((w / (2**k)) % 2)
            {
                WSEL[w] *= WA[k];
                RSEL[w] *= RA[k];
            }
            #else
            {
                WSEL[w] *= !WA[k];
                RSEL[w] *= !RA[k];
            }
        }
        #for(j=0; j<size; j++)
        {
            R[w*size+j] = (WD[j]*WSEL[w]*WE + R[w*size+j]*!(WSEL[w]*WE)) @(~r CLK);
        }
    }
    #for(j=0; j<size; j++)
    {
        #for(w=0; w<2**awidth; w++)
            RD[j] += RSEL[w] * R[w*size+j];
    }
}
"""


def register(catalog: ComponentCatalog) -> None:
    """Register the storage implementations in ``catalog``."""
    catalog.add(
        ComponentImplementation(
            name="register",
            component_type="Register",
            functions=("STORAGE", "LOAD", "STORE"),
            iif_source=REGISTER_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "STORAGE",
                    (("I0", "I"), ("O0", "Q")),
                    (ControlSetting("LOAD", 1), ControlSetting("CLK", 1, "edge_trigger")),
                ),
                FunctionBinding(
                    "LOAD",
                    (("I0", "I"), ("O0", "Q")),
                    (ControlSetting("LOAD", 1), ControlSetting("CLK", 1, "edge_trigger")),
                ),
                FunctionBinding(
                    "STORE",
                    (("I0", "I"), ("O0", "Q")),
                    (ControlSetting("LOAD", 1), ControlSetting("CLK", 1, "edge_trigger")),
                ),
            ),
            description="Parallel-load register (Appendix A example 1)",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="shift_register",
            component_type="Register",
            functions=("SHL1", "SHR1", "STORAGE"),
            iif_source=SHIFT_REGISTER_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "SHL1",
                    (("I0", "Q"), ("O0", "Q")),
                    (ControlSetting("S1", 0), ControlSetting("S0", 1),
                     ControlSetting("CLK", 1, "edge_trigger")),
                ),
                FunctionBinding(
                    "SHR1",
                    (("I0", "Q"), ("O0", "Q")),
                    (ControlSetting("S1", 1), ControlSetting("S0", 0),
                     ControlSetting("CLK", 1, "edge_trigger")),
                ),
                FunctionBinding(
                    "STORAGE",
                    (("I0", "I"), ("O0", "Q")),
                    (ControlSetting("S1", 1), ControlSetting("S0", 1),
                     ControlSetting("CLK", 1, "edge_trigger")),
                ),
            ),
            description="Universal shift register (74194-style)",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="register_file",
            component_type="Register_file",
            functions=("READ", "WRITE", "STORAGE"),
            iif_source=REGISTER_FILE_IIF,
            default_parameters={"size": 4, "awidth": 2},
            bindings=(
                FunctionBinding(
                    "WRITE",
                    (("I0", "WD"), ("I1", "WA")),
                    (ControlSetting("WE", 1), ControlSetting("CLK", 1, "edge_trigger")),
                ),
                FunctionBinding(
                    "READ",
                    (("I0", "RA"), ("O0", "RD")),
                    (),
                ),
                FunctionBinding(
                    "STORAGE",
                    (("I0", "WD"), ("O0", "RD")),
                    (ControlSetting("WE", 0),),
                ),
            ),
            description="Small register file with decoded write enable and read multiplexer",
            attribute_parameters={"size": "size", "awidth": "awidth"},
        )
    )
