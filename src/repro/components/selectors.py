"""Selection / routing component implementations: multiplexers, decoder,
priority encoder, constant-distance shifter and barrel shifter."""

from __future__ import annotations

from .catalog import (
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)

#: Two-input multiplexer selected by an encoded control line (MUX_SCL).
MUX2_IIF = """
NAME: MUX2;
FUNCTIONS: MUX_SCL;
PARAMETER: size;
INORDER: I0[size], I1[size], SEL;
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = !SEL*I0[i] + SEL*I1[i];
}
"""

#: Four-input multiplexer with a two-bit encoded select.
MUX4_IIF = """
NAME: MUX4;
FUNCTIONS: MUX_SCL;
PARAMETER: size;
INORDER: I0[size], I1[size], I2[size], I3[size], S0, S1;
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = !S1*!S0*I0[i] + !S1*S0*I1[i] + S1*!S0*I2[i] + S1*S0*I3[i];
}
"""

#: Guard-select multiplexer (MUX_SCG): one-hot guards, wired as AND-OR.
MUX_SCG_IIF = """
NAME: MUX_SCG2;
FUNCTIONS: MUX_SCG;
PARAMETER: size;
INORDER: I0[size], I1[size], G0, G1;
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
        O[i] = G0*I0[i] + G1*I1[i];
}
"""

DECODER_IIF = """
NAME: DECODER;
FUNCTIONS: DECODE;
PARAMETER: size;
INORDER: I[size], EN;
OUTORDER: O[2**size];
VARIABLE: w, k;
{
    #for(w=0; w<2**size; w++)
    {
        #for(k=0; k<size; k++)
        {
            #if ((w / (2**k)) % 2)
                O[w] *= I[k];
            #else
                O[w] *= !I[k];
        }
        O[w] *= EN;
    }
}
"""

#: Constant-distance left shifter with zero fill (Appendix A example 4).
SHIFTER_IIF = """
NAME: SHLO;
FUNCTIONS: SHL1;
PARAMETER: size, shift_distance;
INORDER: I[size];
OUTORDER: O[size];
VARIABLE: i;
{
    #for(i=0; i<size; i++)
    {
        #if (i <= shift_distance - 1)
            O[i] = 0;
        #else
            O[i] = I[i - shift_distance];
    }
}
"""

#: Priority encoder: highest-numbered asserted input wins; V flags validity.
ENCODER_IIF = """
NAME: ENCODER;
FUNCTIONS: ENCODE;
PARAMETER: size;
INORDER: I[2**size];
OUTORDER: O[size], V;
PIIFVARIABLE: HIGH[2**size], H[2**size];
VARIABLE: w, k;
{
    HIGH[2**size - 1] = 0;
    #for(w=2**size - 2; w>=0; w--)
        HIGH[w] = HIGH[w+1] + I[w+1];
    #for(w=0; w<2**size; w++)
    {
        H[w] = I[w] * !HIGH[w];
        V += I[w];
    }
    #for(k=0; k<size; k++)
    {
        #for(w=0; w<2**size; w++)
        {
            #if ((w / (2**k)) % 2)
                O[k] += H[w];
        }
    }
}
"""

#: Logarithmic barrel shifter: left / right logical shift by SH, zero fill,
#: built from ``awidth`` stages of 2:1 multiplexers.
BARREL_SHIFTER_IIF = """
NAME: BARREL_SHIFTER;
FUNCTIONS: SHL, SHR;
PARAMETER: size, awidth;
INORDER: I[size], SH[awidth], DIR;
OUTORDER: O[size];
PIIFVARIABLE: L[(awidth+1)*size], R[(awidth+1)*size];
VARIABLE: s, i, d;
{
    #for(i=0; i<size; i++)
    {
        L[i] = I[i];
        R[i] = I[i];
    }
    #for(s=0; s<awidth; s++)
    {
        #c_line d = 2**s;
        #for(i=0; i<size; i++)
        {
            #if (i >= d)
                L[(s+1)*size+i] = !SH[s]*L[s*size+i] + SH[s]*L[s*size+i-d];
            #else
                L[(s+1)*size+i] = !SH[s]*L[s*size+i];
            #if (i < size-d)
                R[(s+1)*size+i] = !SH[s]*R[s*size+i] + SH[s]*R[s*size+i+d];
            #else
                R[(s+1)*size+i] = !SH[s]*R[s*size+i];
        }
    }
    #for(i=0; i<size; i++)
        O[i] = !DIR*L[awidth*size+i] + DIR*R[awidth*size+i];
}
"""


def register(catalog: ComponentCatalog) -> None:
    """Register the selection / routing implementations in ``catalog``."""
    catalog.add(
        ComponentImplementation(
            name="mux2",
            component_type="Mux_scl",
            functions=("MUX_SCL",),
            iif_source=MUX2_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "MUX_SCL",
                    (("I0", "I0"), ("I1", "I1"), ("C0", "SEL"), ("O0", "O")),
                    (),
                ),
            ),
            description="2-to-1 multiplexer with encoded select",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="mux4",
            component_type="Mux_scl",
            functions=("MUX_SCL",),
            iif_source=MUX4_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "MUX_SCL",
                    (("I0", "I0"), ("I1", "I1"), ("C0", "S0"), ("O0", "O")),
                    (),
                ),
            ),
            description="4-to-1 multiplexer with two-bit encoded select",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="mux_scg2",
            component_type="Mux_scg",
            functions=("MUX_SCG",),
            iif_source=MUX_SCG_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "MUX_SCG",
                    (("I0", "I0"), ("I1", "I1"), ("C0", "G0"), ("O0", "O")),
                    (),
                ),
            ),
            description="2-input guard-select multiplexer",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="decoder",
            component_type="Decode",
            functions=("DECODE",),
            iif_source=DECODER_IIF,
            default_parameters={"size": 2},
            bindings=(
                FunctionBinding(
                    "DECODE",
                    (("I0", "I"), ("O0", "O")),
                    (ControlSetting("EN", 1),),
                ),
            ),
            description="Binary decoder with enable",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="encoder",
            component_type="Encode",
            functions=("ENCODE",),
            iif_source=ENCODER_IIF,
            default_parameters={"size": 2},
            bindings=(
                FunctionBinding("ENCODE", (("I0", "I"), ("O0", "O")), ()),
            ),
            description="Priority encoder (highest asserted input wins)",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="shifter",
            component_type="Shifter",
            functions=("SHL1",),
            iif_source=SHIFTER_IIF,
            default_parameters={"size": 4, "shift_distance": 1},
            bindings=(
                FunctionBinding("SHL1", (("I0", "I"), ("O0", "O")), ()),
            ),
            description="Constant-distance left shifter with zero fill (Appendix A example 4)",
            attribute_parameters={"size": "size", "shift_distance": "shift_distance"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="barrel_shifter",
            component_type="Barrel_shifter",
            functions=("SHL", "SHR"),
            iif_source=BARREL_SHIFTER_IIF,
            default_parameters={"size": 4, "awidth": 2},
            bindings=(
                FunctionBinding(
                    "SHL",
                    (("I0", "I"), ("I1", "SH"), ("O0", "O")),
                    (ControlSetting("DIR", 0),),
                ),
                FunctionBinding(
                    "SHR",
                    (("I0", "I"), ("I1", "SH"), ("O0", "O")),
                    (ControlSetting("DIR", 1),),
                ),
            ),
            description="Logarithmic barrel shifter (left / right, zero fill)",
            attribute_parameters={"size": "size", "awidth": "awidth"},
        )
    )
