"""Generic component library: GENUS-style taxonomy plus parameterized IIF
component implementations and the catalog that indexes them."""

from . import genus
from .catalog import (
    CatalogError,
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
    standard_catalog,
)
from .counters import (
    COUNTER_IIF,
    FIGURE5_CONFIGURATIONS,
    RIPPLE_COUNTER_IIF,
    TYPE_RIPPLE,
    TYPE_SYNCHRONOUS,
    UP_DOWN,
    UP_ONLY,
    counter_parameters,
)

__all__ = [
    "CatalogError",
    "ComponentCatalog",
    "ComponentImplementation",
    "ControlSetting",
    "COUNTER_IIF",
    "FIGURE5_CONFIGURATIONS",
    "FunctionBinding",
    "RIPPLE_COUNTER_IIF",
    "TYPE_RIPPLE",
    "TYPE_SYNCHRONOUS",
    "UP_DOWN",
    "UP_ONLY",
    "counter_parameters",
    "genus",
    "standard_catalog",
]
