"""Counter implementations (the running example of the paper).

The parameterized ``COUNTER`` description below follows Section 3.1 of the
paper: a ``#for`` loop builds an n-bit counter from a one-bit cell, and
``#if`` structures select the architecture style (ripple vs synchronous) and
the options (ENABLE control, asynchronous parallel load, up / down / updown
counting).  The TTL 74191-style four-bit up/down counter of Figure 4 is the
expansion with ``size=4, type=2, load=1, enable=1, up_or_down=3``.
"""

from __future__ import annotations

from .catalog import (
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)

#: Architecture-style parameter values.
TYPE_RIPPLE = 1
TYPE_SYNCHRONOUS = 2

#: ``up_or_down`` parameter values.
UP_ONLY = 1
DOWN_ONLY = 2
UP_DOWN = 3


RIPPLE_COUNTER_IIF = """
NAME: RIPPLE_COUNTER;
PARAMETER: size;
INORDER: CLK;
OUTORDER: Q[size], MINMAX, RCLK;
PIIFVARIABLE: CK[size];
VARIABLE: i;
{
    CK[0] = CLK;
    #for(i=0; i<size; i++)
    {
        Q[i] = (!Q[i]) @(~f CK[i]);
        #if (i < size - 1)
            CK[i+1] = Q[i];
    }
    MINMAX = Q[size-1];
    RCLK = CLK;
}
"""


COUNTER_IIF = """
NAME: COUNTER;
FUNCTIONS: INC;
PARAMETER: size, type, load, enable, up_or_down;
INORDER: D[size], CLK, LOAD, ENA, DWUP;
OUTORDER: Q[size], MINMAX, RCLK;
PIIFVARIABLE: C[size+1], OVFUNF, CLKO;
VARIABLE: i, ripple_type;
SUBFUNCTION: RIPPLE_COUNTER;
{
    #c_line ripple_type = 1;
    #if (type == ripple_type)
        #RIPPLE_COUNTER(size);
    #else
    {
        C[0] = 1;
        #if (enable)
            CLKO = CLK @(~h ENA);
        #else
            CLKO = CLK;
        #for(i=0; i<size; i++)
        {
            #if (up_or_down == 1)
                C[i+1] = C[i] * Q[i];
            #else
            #if (up_or_down == 2)
                C[i+1] = C[i] * !Q[i];
            #else
                C[i+1] = C[i] * (Q[i] (+) DWUP);
            #if (load)
                Q[i] = (Q[i] (+) C[i]) @(~r CLKO) ~a(0/(!LOAD*!D[i]), 1/(!LOAD*D[i]));
            #else
                Q[i] = (Q[i] (+) C[i]) @(~r CLKO);
        }
        OVFUNF = C[size];
        MINMAX = CLK * OVFUNF;
        RCLK = CLK * OVFUNF + !OVFUNF;
    }
}
"""


def counter_parameters(
    size: int = 4,
    style: int = TYPE_SYNCHRONOUS,
    load: bool = False,
    enable: bool = False,
    up_or_down: int = UP_ONLY,
) -> dict:
    """Convenience builder for the COUNTER parameter dictionary."""
    return {
        "size": int(size),
        "type": int(style),
        "load": 1 if load else 0,
        "enable": 1 if enable else 0,
        "up_or_down": int(up_or_down),
    }


#: The five counter configurations plotted in Figure 5 of the paper.
FIGURE5_CONFIGURATIONS = (
    ("ripple", counter_parameters(size=5, style=TYPE_RIPPLE)),
    ("synchronous_up", counter_parameters(size=5, up_or_down=UP_ONLY)),
    ("synchronous_up_enable", counter_parameters(size=5, up_or_down=UP_ONLY, enable=True)),
    ("synchronous_updown", counter_parameters(size=5, up_or_down=UP_DOWN)),
    (
        "synchronous_updown_load",
        counter_parameters(size=5, up_or_down=UP_DOWN, load=True, enable=True),
    ),
)


def _counter_bindings() -> tuple:
    """Connection information matching the paper's INC example."""
    inc = FunctionBinding(
        function="INC",
        operand_map=(("O0", "Q"),),
        controls=(
            ControlSetting("DWUP", 0),
            ControlSetting("ENA", 1),
            ControlSetting("LOAD", 1),
            ControlSetting("CLK", 1, "edge_trigger"),
        ),
    )
    dec = FunctionBinding(
        function="DEC",
        operand_map=(("O0", "Q"),),
        controls=(
            ControlSetting("DWUP", 1),
            ControlSetting("ENA", 1),
            ControlSetting("LOAD", 1),
            ControlSetting("CLK", 1, "edge_trigger"),
        ),
    )
    storage = FunctionBinding(
        function="STORAGE",
        operand_map=(("I0", "D"), ("O0", "Q")),
        controls=(
            ControlSetting("LOAD", 0),
            ControlSetting("ENA", 0),
        ),
    )
    counter = FunctionBinding(
        function="COUNTER",
        operand_map=(("O0", "Q"),),
        controls=(
            ControlSetting("ENA", 1),
            ControlSetting("CLK", 1, "edge_trigger"),
        ),
    )
    increment = FunctionBinding(
        function="INCREMENT",
        operand_map=(("O0", "Q"),),
        controls=(
            ControlSetting("DWUP", 0),
            ControlSetting("ENA", 1),
        ),
    )
    decrement = FunctionBinding(
        function="DECREMENT",
        operand_map=(("O0", "Q"),),
        controls=(
            ControlSetting("DWUP", 1),
            ControlSetting("ENA", 1),
        ),
    )
    return inc, dec, storage, counter, increment, decrement


def register(catalog: ComponentCatalog) -> None:
    """Register the counter implementations in ``catalog``."""
    bindings = _counter_bindings()
    catalog.add(
        ComponentImplementation(
            name="counter",
            component_type="Counter",
            functions=("INC", "DEC", "COUNTER", "INCREMENT", "DECREMENT", "STORAGE"),
            iif_source=COUNTER_IIF,
            subfunction_sources=(RIPPLE_COUNTER_IIF,),
            default_parameters=counter_parameters(size=4, up_or_down=UP_DOWN, load=True, enable=True),
            bindings=bindings,
            description=(
                "Parameterized counter: ripple or synchronous, optional enable, "
                "optional asynchronous parallel load, up / down / up-down"
            ),
            attribute_parameters={"size": "size"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="up_counter",
            component_type="Counter",
            functions=("INC", "COUNTER", "INCREMENT"),
            iif_source=COUNTER_IIF,
            subfunction_sources=(RIPPLE_COUNTER_IIF,),
            default_parameters=counter_parameters(size=4, up_or_down=UP_ONLY),
            bindings=bindings[:1] + bindings[3:5],
            description="Synchronous up-counter (fixed attribute preset of COUNTER)",
            attribute_parameters={"size": "size"},
        )
    )
    catalog.add(
        ComponentImplementation(
            name="ripple_counter",
            component_type="Counter",
            functions=("INC", "COUNTER", "INCREMENT"),
            iif_source=COUNTER_IIF,
            subfunction_sources=(RIPPLE_COUNTER_IIF,),
            default_parameters=counter_parameters(size=4, style=TYPE_RIPPLE),
            bindings=bindings[:1] + bindings[3:5],
            description="Asynchronous ripple counter (fixed attribute preset of COUNTER)",
            attribute_parameters={"size": "size"},
        )
    )
