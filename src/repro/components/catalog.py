"""Component implementation catalog (the generic component library).

An ICDB *component implementation* is a parameterized description of a
component (Section 4.1 of the paper).  Here every implementation carries:

* the IIF source text of the parameterized description (plus the sources of
  any sub-functions it calls);
* the component type and the functions the implementation performs;
* default parameter values and the mapping from GENUS attributes to IIF
  parameters;
* *connection information*: for every function, which control ports must be
  driven to which values and how the function's operands map onto component
  ports (the ``## function`` records returned by ``connect_component``).

:class:`ComponentCatalog` is the in-memory generic component library; the
ICDB core stores its records in the relational database and resolves back to
these objects for generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..fingerprint import stable_fingerprint
from ..iif import Expander, FlatComponent, IifModule, parse_module
from . import genus


class CatalogError(KeyError):
    """Raised when a catalog lookup fails."""


@dataclass(frozen=True)
class ControlSetting:
    """One ``** port value [qualifier]`` line of connection information."""

    port: str
    value: int
    qualifier: str = ""

    def render(self) -> str:
        text = f"** {self.port} {self.value}"
        if self.qualifier:
            text += f" {self.qualifier}"
        return text


@dataclass(frozen=True)
class FunctionBinding:
    """How a component executes one function.

    ``operand_map`` maps function operand names (``I0``, ``I1``, ``O0``,
    ``Cin`` ...) onto component port base names; ``controls`` lists the
    control-port values needed to invoke the function; ``polarity`` records
    whether the mapped output is active high or low.
    """

    function: str
    operand_map: Tuple[Tuple[str, str], ...] = ()
    controls: Tuple[ControlSetting, ...] = ()
    polarity: str = "high"

    def operands(self) -> Dict[str, str]:
        return dict(self.operand_map)

    def render(self) -> str:
        """Render in the paper's connection-information format."""
        lines = [f"## function {self.function}"]
        for operand, port in self.operand_map:
            lines.append(f"{operand} is {port} {self.polarity}")
        for control in self.controls:
            lines.append(control.render())
        return "\n".join(lines)


@dataclass
class ComponentImplementation:
    """A parameterized component implementation stored in the library."""

    name: str
    component_type: str
    functions: Tuple[str, ...]
    iif_source: str
    default_parameters: Dict[str, int] = field(default_factory=dict)
    bindings: Tuple[FunctionBinding, ...] = ()
    description: str = ""
    attribute_parameters: Dict[str, str] = field(default_factory=lambda: {"size": "size"})
    subfunction_sources: Tuple[str, ...] = ()
    fixed: bool = False

    def __post_init__(self) -> None:
        self._module: Optional[IifModule] = None
        self._subfunctions: Optional[Dict[str, IifModule]] = None
        self._fingerprint: Optional[int] = None
        self.functions = tuple(genus.normalize_function(f) for f in self.functions)

    def fingerprint(self) -> int:
        """A stable identity of everything expansion reads.

        Two implementations that share a name but differ in source (two
        services with different catalogs sharing one generation cache)
        must never serve each other's expansions; the fingerprint covers
        the IIF source, the sub-function sources, the functions list and
        the defaults.  It is a process-stable content digest (never the
        randomized built-in ``hash``), so cache keys carrying it match
        between a fleet worker and the server it ships entries to.
        """
        if self._fingerprint is None:
            self._fingerprint = stable_fingerprint(
                self.name,
                self.component_type,
                self.functions,
                self.iif_source,
                self.subfunction_sources,
                tuple(sorted(self.default_parameters.items())),
            )
        return self._fingerprint

    # ---------------------------------------------------------------- parsing

    def module(self) -> IifModule:
        """Parsed (and cached) IIF module of this implementation."""
        if self._module is None:
            self._module = parse_module(self.iif_source)
        return self._module

    def subfunction_modules(self) -> Dict[str, IifModule]:
        """Parsed modules of the sub-functions this implementation calls."""
        if self._subfunctions is None:
            modules: Dict[str, IifModule] = {}
            for source in self.subfunction_sources:
                module = parse_module(source)
                modules[module.name.upper()] = module
            self._subfunctions = modules
        return self._subfunctions

    def parameter_names(self) -> List[str]:
        return self.module().parameter_names()

    # --------------------------------------------------------------- expansion

    def resolve_parameters(
        self, overrides: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        """Default parameter values with ``overrides`` applied.

        Unknown override keys raise :class:`CatalogError` so that typos in
        attribute names are reported instead of silently ignored.
        """
        values = dict(self.default_parameters)
        if overrides:
            known = set(self.parameter_names())
            for key, value in overrides.items():
                if key not in known:
                    raise CatalogError(
                        f"{self.name} has no parameter {key!r} "
                        f"(parameters: {sorted(known)})"
                    )
                values[key] = int(value)
        missing = [p for p in self.parameter_names() if p not in values]
        if missing:
            raise CatalogError(
                f"{self.name} is missing values for parameters {missing}"
            )
        return values

    def expand(
        self,
        parameters: Optional[Mapping[str, int]] = None,
        name: Optional[str] = None,
        extra_library: Optional[Mapping[str, IifModule]] = None,
    ) -> FlatComponent:
        """Expand the implementation with the given parameter overrides."""
        library: Dict[str, IifModule] = dict(self.subfunction_modules())
        if extra_library:
            for key, module in extra_library.items():
                library[key.upper()] = module
        expander = Expander(library)
        values = self.resolve_parameters(parameters)
        flat = expander.expand(self.module(), values, name=name)
        if not flat.functions:
            flat.functions = list(self.functions)
        return flat

    # --------------------------------------------------------------- metadata

    def performs(self, functions: Iterable[str]) -> bool:
        """True if this implementation performs every function in the set."""
        wanted = {genus.normalize_function(f) for f in functions}
        return wanted.issubset(set(self.functions))

    def binding_for(self, function: str) -> FunctionBinding:
        canonical = genus.normalize_function(function)
        for binding in self.bindings:
            if binding.function == canonical:
                return binding
        raise CatalogError(f"{self.name} has no binding for function {function!r}")

    def connection_info(self) -> str:
        """Connection information for every function, paper format."""
        return "\n".join(binding.render() for binding in self.bindings)

    def supports_attributes(self, names: Iterable[str]) -> bool:
        """True if every named GENUS attribute maps onto an IIF parameter."""
        return all(name in self.attribute_parameters for name in names)

    def attributes_to_parameters(
        self, attributes: Optional[Mapping[str, object]] = None
    ) -> Dict[str, int]:
        """Translate GENUS attribute values into IIF parameter overrides."""
        overrides: Dict[str, int] = {}
        if not attributes:
            return overrides
        for attribute, value in attributes.items():
            parameter = self.attribute_parameters.get(attribute)
            if parameter is not None:
                overrides[parameter] = int(value)
        return overrides


class ComponentCatalog:
    """The generic component library: named parameterized implementations."""

    def __init__(self) -> None:
        self._implementations: Dict[str, ComponentImplementation] = {}

    def __len__(self) -> int:
        return len(self._implementations)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._implementations

    def add(self, implementation: ComponentImplementation) -> ComponentImplementation:
        key = implementation.name.lower()
        if key in self._implementations:
            raise CatalogError(f"implementation {implementation.name!r} already registered")
        self._implementations[key] = implementation
        return implementation

    def get(self, name: str) -> ComponentImplementation:
        try:
            return self._implementations[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"no implementation named {name!r}") from exc

    def implementations(self) -> List[ComponentImplementation]:
        return list(self._implementations.values())

    def names(self) -> List[str]:
        return [impl.name for impl in self._implementations.values()]

    def by_component_type(self, component_type: str) -> List[ComponentImplementation]:
        """Implementations of the given component type (case-insensitive)."""
        wanted = component_type.lower()
        return [
            impl
            for impl in self._implementations.values()
            if impl.component_type.lower() == wanted
        ]

    def by_functions(self, functions: Iterable[str]) -> List[ComponentImplementation]:
        """Implementations that perform *all* of the requested functions."""
        wanted = list(functions)
        return [impl for impl in self._implementations.values() if impl.performs(wanted)]

    def functions_of(self, name: str) -> List[str]:
        return list(self.get(name).functions)

    def known_attributes(self) -> List[str]:
        """Every attribute name some implementation maps (sorted).

        This is the attribute vocabulary of the catalog: queries naming an
        attribute outside it are rejected with ``E_INVALID`` instead of
        silently dropping the filter.
        """
        names = {
            attribute
            for impl in self._implementations.values()
            for attribute in impl.attribute_parameters
        }
        return sorted(names)

    def by_attributes(self, names: Iterable[str]) -> List[ComponentImplementation]:
        """Implementations supporting *all* of the named attributes."""
        wanted = list(names)
        return [
            impl
            for impl in self._implementations.values()
            if impl.supports_attributes(wanted)
        ]

    def component_types(self) -> List[str]:
        seen: List[str] = []
        for impl in self._implementations.values():
            if impl.component_type not in seen:
                seen.append(impl.component_type)
        return seen


_STANDARD: Optional[ComponentCatalog] = None


def standard_catalog(fresh: bool = False) -> ComponentCatalog:
    """Return the catalog populated with every built-in implementation.

    The catalog is built once and cached; pass ``fresh=True`` to get an
    independent copy (used by tests that mutate the catalog).
    """
    global _STANDARD
    if _STANDARD is None or fresh:
        catalog = ComponentCatalog()
        from . import arithmetic, counters, interface, selectors, storage

        counters.register(catalog)
        arithmetic.register(catalog)
        storage.register(catalog)
        selectors.register(catalog)
        interface.register(catalog)
        if fresh:
            return catalog
        _STANDARD = catalog
    return _STANDARD
