"""Arithmetic component implementations: adders, adder/subtractor, ALU,
comparator, incrementer and an array multiplier.

The ripple-carry adder and the adder/subtractor follow examples 2 and 3 of
Appendix A (the adder/subtractor is built from the adder through an IIF
sub-function call, exactly as in the paper).
"""

from __future__ import annotations

from .catalog import (
    ComponentCatalog,
    ComponentImplementation,
    ControlSetting,
    FunctionBinding,
)

RIPPLE_CARRY_ADDER_IIF = """
NAME: ADDER;
FUNCTIONS: ADD;
PARAMETER: size;
INORDER: I0[size], I1[size], Cin;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1];
VARIABLE: i;
{
    C[0] = Cin;
    #for(i=0; i<size; i++)
    {
        O[i] = I0[i] (+) I1[i] (+) C[i];
        C[i+1] = I0[i]*I1[i] + I0[i]*C[i] + I1[i]*C[i];
    }
    Cout = C[size];
}
"""

ADDER_SUBTRACTOR_IIF = """
NAME: ADDSUB;
FUNCTIONS: ADD, SUB;
PARAMETER: size;
INORDER: A[size], B[size], ADDSUB;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1], B1[size];
VARIABLE: i;
SUBFUNCTION: ADDER;
{
    #for(i=0; i<size; i++)
    {
        B1[i] = ADDSUB (+) B[i];
    }
    #ADDER(size, A, B1, ADDSUB, O, Cout, C);
}
"""

#: ALU function-select encoding (S2 S1 S0).
ALU_IIF = """
NAME: ALU;
FUNCTIONS: ADD, SUB, AND, OR, XOR, NOT;
PARAMETER: size;
INORDER: A[size], B[size], S0, S1, S2;
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1], BX[size], SUM[size], LOG[size], ARITH;
VARIABLE: i;
{
    ARITH = !S2;
    C[0] = S0;
    #for(i=0; i<size; i++)
    {
        BX[i] = B[i] (+) S0;
        SUM[i] = A[i] (+) BX[i] (+) C[i];
        C[i+1] = A[i]*BX[i] + A[i]*C[i] + BX[i]*C[i];
        LOG[i] = !S1*!S0*(A[i]*B[i]) + !S1*S0*(A[i]+B[i])
               + S1*!S0*(A[i](+)B[i]) + S1*S0*(!A[i]);
        O[i] = ARITH*SUM[i] + !ARITH*LOG[i];
    }
    Cout = C[size];
}
"""

INCREMENTER_IIF = """
NAME: INCREMENTER;
FUNCTIONS: INC;
PARAMETER: size;
INORDER: I0[size];
OUTORDER: O[size], Cout;
PIIFVARIABLE: C[size+1];
VARIABLE: i;
{
    C[0] = 1;
    #for(i=0; i<size; i++)
    {
        O[i] = I0[i] (+) C[i];
        C[i+1] = I0[i] * C[i];
    }
    Cout = C[size];
}
"""

COMPARATOR_IIF = """
NAME: COMPARATOR;
FUNCTIONS: EQ, NEQ, GT, GE, LT, LE;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: OEQ, ONEQ, OGT, OLT, OGEQ, OLEQ;
PIIFVARIABLE: EQB[size], G[size+1];
VARIABLE: i;
{
    G[0] = 0;
    #for(i=0; i<size; i++)
    {
        EQB[i] = A[i] (.) B[i];
        G[i+1] = A[i]*!B[i] + EQB[i]*G[i];
        OEQ *= EQB[i];
    }
    OGT = G[size];
    ONEQ = !OEQ;
    OLT = !G[size] * !OEQ;
    OGEQ = G[size] + OEQ;
    OLEQ = !G[size];
}
"""

#: Row-by-row ripple array multiplier.  Row 0 is the partial product of B[0];
#: every later row adds A*B[i] to the previous row's sum shifted one position
#: right, with the previous row's carry-out entering at the top bit.
MULTIPLIER_IIF = """
NAME: MULTIPLIER;
FUNCTIONS: MUL;
PARAMETER: size;
INORDER: A[size], B[size];
OUTORDER: P[2*size];
PIIFVARIABLE: S[size*size], C[size*(size+1)], T[size*size];
VARIABLE: i, j;
{
    #for(j=0; j<size; j++)
        S[j] = A[j] * B[0];
    P[0] = S[0];
    #for(i=1; i<size; i++)
    {
        C[i*(size+1)] = 0;
        #for(j=0; j<size; j++)
        {
            #if (j < size-1)
                T[i*size+j] = S[(i-1)*size + j + 1];
            #else
            #if (i == 1)
                T[i*size+j] = 0;
            #else
                T[i*size+j] = C[(i-1)*(size+1) + size];
            S[i*size+j] = (A[j]*B[i]) (+) T[i*size+j] (+) C[i*(size+1)+j];
            C[i*(size+1)+j+1] = (A[j]*B[i])*T[i*size+j]
                              + (A[j]*B[i])*C[i*(size+1)+j]
                              + T[i*size+j]*C[i*(size+1)+j];
        }
        P[i] = S[i*size];
    }
    #for(j=1; j<size; j++)
        P[size-1+j] = S[(size-1)*size + j];
    #if (size > 1)
        P[2*size-1] = C[(size-1)*(size+1) + size];
    #else
        P[1] = 0;
}
"""


def register(catalog: ComponentCatalog) -> None:
    """Register the arithmetic implementations in ``catalog``."""
    catalog.add(
        ComponentImplementation(
            name="ripple_carry_adder",
            component_type="Adder",
            functions=("ADD",),
            iif_source=RIPPLE_CARRY_ADDER_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    function="ADD",
                    operand_map=(("I0", "I0"), ("I1", "I1"), ("Cin", "Cin"), ("O0", "O"), ("Cout", "Cout")),
                    controls=(),
                ),
            ),
            description="Ripple-carry adder (Appendix A example 2)",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="adder_subtractor",
            component_type="Adder_Subtractor",
            functions=("ADD", "SUB"),
            iif_source=ADDER_SUBTRACTOR_IIF,
            subfunction_sources=(RIPPLE_CARRY_ADDER_IIF,),
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    function="ADD",
                    operand_map=(("I0", "A"), ("I1", "B"), ("Cin", "ADDSUB"), ("O0", "O"), ("Cout", "Cout")),
                    controls=(ControlSetting("ADDSUB", 0),),
                ),
                FunctionBinding(
                    function="SUB",
                    operand_map=(("I0", "A"), ("I1", "B"), ("Cin", "ADDSUB"), ("O0", "O"), ("Cout", "Cout")),
                    controls=(ControlSetting("ADDSUB", 1),),
                ),
            ),
            description="Adder / subtractor built from the adder sub-function (Appendix A example 3)",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="alu",
            component_type="ALU",
            functions=("ADD", "SUB", "AND", "OR", "XOR", "NOT"),
            iif_source=ALU_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding(
                    "ADD",
                    (("I0", "A"), ("I1", "B"), ("O0", "O"), ("Cout", "Cout")),
                    (ControlSetting("S2", 0), ControlSetting("S1", 0), ControlSetting("S0", 0)),
                ),
                FunctionBinding(
                    "SUB",
                    (("I0", "A"), ("I1", "B"), ("O0", "O"), ("Cout", "Cout")),
                    (ControlSetting("S2", 0), ControlSetting("S1", 0), ControlSetting("S0", 1)),
                ),
                FunctionBinding(
                    "AND",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S2", 1), ControlSetting("S1", 0), ControlSetting("S0", 0)),
                ),
                FunctionBinding(
                    "OR",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S2", 1), ControlSetting("S1", 0), ControlSetting("S0", 1)),
                ),
                FunctionBinding(
                    "XOR",
                    (("I0", "A"), ("I1", "B"), ("O0", "O")),
                    (ControlSetting("S2", 1), ControlSetting("S1", 1), ControlSetting("S0", 0)),
                ),
                FunctionBinding(
                    "NOT",
                    (("I0", "A"), ("O0", "O")),
                    (ControlSetting("S2", 1), ControlSetting("S1", 1), ControlSetting("S0", 1)),
                ),
            ),
            description="Ripple-carry ALU with three select lines",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="incrementer",
            component_type="Counter",
            functions=("INC", "INCREMENT"),
            iif_source=INCREMENTER_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding("INC", (("I0", "I0"), ("O0", "O")), ()),
            ),
            description="Combinational incrementer",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="comparator",
            component_type="Comparator",
            functions=("EQ", "NEQ", "GT", "GE", "LT", "LE"),
            iif_source=COMPARATOR_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding("EQ", (("I0", "A"), ("I1", "B"), ("O0", "OEQ")), ()),
                FunctionBinding("NEQ", (("I0", "A"), ("I1", "B"), ("O0", "ONEQ")), ()),
                FunctionBinding("GT", (("I0", "A"), ("I1", "B"), ("O0", "OGT")), ()),
                FunctionBinding("LT", (("I0", "A"), ("I1", "B"), ("O0", "OLT")), ()),
                FunctionBinding("GE", (("I0", "A"), ("I1", "B"), ("O0", "OGEQ")), ()),
                FunctionBinding("LE", (("I0", "A"), ("I1", "B"), ("O0", "OLEQ")), ()),
            ),
            description="Ripple magnitude comparator with all six relational outputs",
        )
    )
    catalog.add(
        ComponentImplementation(
            name="array_multiplier",
            component_type="Multiplier",
            functions=("MUL",),
            iif_source=MULTIPLIER_IIF,
            default_parameters={"size": 4},
            bindings=(
                FunctionBinding("MUL", (("I0", "A"), ("I1", "B"), ("O0", "P")), ()),
            ),
            description="Unsigned array multiplier (ripple rows)",
        )
    )
