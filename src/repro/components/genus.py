"""GENUS-style function and component taxonomy.

The paper classifies and retrieves ICDB components by either a *component
type* (Counter, Register, Adder_Subtractor, ...) or by the *functions* they
perform (ADD, INC, STORAGE, ...), following the GENUS generic component
library [Dutt 88].  This module defines that vocabulary:

* the function names grouped exactly as in Appendix B.2;
* the predefined component types and the functions each performs;
* the predefined attribute names and their defaults;
* the I/O port naming conventions (``I0``/``I1``/``O0``, control lines
  ``C0``/``C1``, and per-component alias names).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class UnknownFunctionError(KeyError):
    """Raised when a function name is not part of the GENUS vocabulary."""


class UnknownComponentTypeError(KeyError):
    """Raised when a component type is not part of the GENUS vocabulary."""


# ---------------------------------------------------------------------------
# Function taxonomy (Appendix B.2)
# ---------------------------------------------------------------------------

LOGIC_FUNCTIONS = ("AND", "OR", "NOT", "NAND", "NOR", "XOR", "XNOR")
ARITHMETIC_FUNCTIONS = ("ADD", "SUB", "MUL", "DIV", "INC", "DEC")
RELATIONAL_FUNCTIONS = ("EQ", "NEQ", "GT", "GE", "LT", "LE")
SELECT_FUNCTIONS = ("MUX_SCL", "MUX_SCG")
SHIFT_FUNCTIONS = (
    "SHL1",
    "SHR1",
    "ROTL1",
    "ROTR1",
    "ASHL1",
    "ASHR1",
    "SHL",
    "SHR",
    "ROTL",
    "ROTR",
    "ASHL",
    "ASHR",
)
CODING_FUNCTIONS = ("ENCODE", "DECODE")
INTERFACE_FUNCTIONS = ("BUF", "CLK_DR", "SCHM_TGR", "TRI_STATE")
WIRE_FUNCTIONS = ("PORT", "BUS", "WIRE_OR")
SWITCHBOX_FUNCTIONS = ("CONCAT", "EXTRACT")
CLOCK_FUNCTIONS = ("CLK_GEN",)
DELAY_FUNCTIONS = ("DELAY",)
MEMORY_FUNCTIONS = ("LOAD", "STORE", "MEMORY", "READ", "WRITE", "PUSH", "POP")

#: Functions used by the component-management examples in Section 4.1 of the
#: paper (a register performs STORAGE, an up-counter INCREMENT and COUNTER).
STRUCTURAL_FUNCTIONS = ("STORAGE", "COUNTER", "INCREMENT", "DECREMENT")

FUNCTION_GROUPS: Dict[str, Tuple[str, ...]] = {
    "logic": LOGIC_FUNCTIONS,
    "arithmetic": ARITHMETIC_FUNCTIONS,
    "relational": RELATIONAL_FUNCTIONS,
    "select": SELECT_FUNCTIONS,
    "shift": SHIFT_FUNCTIONS,
    "coding": CODING_FUNCTIONS,
    "interface": INTERFACE_FUNCTIONS,
    "wire": WIRE_FUNCTIONS,
    "switchbox": SWITCHBOX_FUNCTIONS,
    "clock": CLOCK_FUNCTIONS,
    "delay": DELAY_FUNCTIONS,
    "memory": MEMORY_FUNCTIONS,
    "structural": STRUCTURAL_FUNCTIONS,
}

ALL_FUNCTIONS: Tuple[str, ...] = tuple(
    name for group in FUNCTION_GROUPS.values() for name in group
)

_FUNCTION_SET = frozenset(ALL_FUNCTIONS)

#: Operator spellings the synthesis front end may use, mapped onto functions.
FUNCTION_ALIASES: Dict[str, str] = {
    "+": "ADD",
    "-": "SUB",
    "*": "MUL",
    "/": "DIV",
    "++": "INC",
    "--": "DEC",
    "==": "EQ",
    "!=": "NEQ",
    ">": "GT",
    ">=": "GE",
    "<": "LT",
    "<=": "LE",
}


def normalize_function(name: str) -> str:
    """Map a function name or operator spelling onto the canonical name."""
    candidate = FUNCTION_ALIASES.get(name, name).upper()
    if candidate not in _FUNCTION_SET:
        raise UnknownFunctionError(name)
    return candidate


def is_function(name: str) -> bool:
    """True if ``name`` (or its alias) is a known function."""
    try:
        normalize_function(name)
    except UnknownFunctionError:
        return False
    return True


def function_group(name: str) -> str:
    """Return the group ("arithmetic", "logic", ...) a function belongs to."""
    canonical = normalize_function(name)
    for group, members in FUNCTION_GROUPS.items():
        if canonical in members:
            return group
    raise UnknownFunctionError(name)  # pragma: no cover - unreachable


# ---------------------------------------------------------------------------
# Attributes
# ---------------------------------------------------------------------------

#: The predefined attribute names of Appendix B.3 with their default values.
DEFAULT_ATTRIBUTES: Dict[str, object] = {
    "size": 4,
    "input_latch": 0,
    "output_latch": 0,
    "input_type": "high",
    "output_type": "high",
    "output_tri_state": 0,
}


def merge_attributes(overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
    """Return the attribute dictionary with defaults filled in."""
    merged = dict(DEFAULT_ATTRIBUTES)
    if overrides:
        for key, value in overrides.items():
            merged[key] = value
    return merged


# ---------------------------------------------------------------------------
# Component types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComponentType:
    """A predefined microarchitecture component type.

    ``functions`` lists the functions an implementation of this type is
    expected to perform (an individual implementation may perform more, e.g.
    an up/down counter with parallel load also performs STORAGE).
    ``port_aliases`` maps the canonical ``I0/O0/C0`` names to the
    human-friendly alias used in queries and connection info.
    """

    name: str
    functions: Tuple[str, ...]
    description: str = ""
    port_aliases: Tuple[Tuple[str, str], ...] = ()

    def alias_map(self) -> Dict[str, str]:
        return dict(self.port_aliases)


_COMPONENT_TYPES: Dict[str, ComponentType] = {}


def _register_type(component_type: ComponentType) -> ComponentType:
    _COMPONENT_TYPES[component_type.name.lower()] = component_type
    return component_type


LOGIC_UNIT = _register_type(
    ComponentType(
        "Logic_unit",
        ("AND", "OR", "NOT", "NAND", "NOR", "XOR", "XNOR"),
        "Bitwise logic unit with a selectable operation",
    )
)
MUX_SCL = _register_type(
    ComponentType(
        "Mux_scl",
        ("MUX_SCL",),
        "Multiplexer selected by encoded control lines",
    )
)
MUX_SCG = _register_type(
    ComponentType(
        "Mux_scg",
        ("MUX_SCG",),
        "Multiplexer selected by one-hot guard values",
    )
)
DECODE = _register_type(
    ComponentType("Decode", ("DECODE",), "Binary decoder")
)
ENCODE = _register_type(
    ComponentType("Encode", ("ENCODE",), "Priority encoder")
)
COMPARATOR = _register_type(
    ComponentType(
        "Comparator",
        ("EQ", "NEQ", "GT", "GE", "LT", "LE"),
        "Magnitude comparator",
        port_aliases=(
            ("O0", "OEQ"),
            ("O1", "ONEQ"),
            ("O2", "OGT"),
            ("O3", "OLT"),
            ("O4", "OGEQ"),
            ("O5", "OLEQ"),
        ),
    )
)
SHIFTER = _register_type(
    ComponentType("Shifter", ("SHL1", "SHR1"), "Single-position shifter")
)
BARREL_SHIFTER = _register_type(
    ComponentType("Barrel_shifter", ("SHL", "SHR", "ROTL", "ROTR"), "Barrel shifter")
)
ADDER = _register_type(
    ComponentType(
        "Adder",
        ("ADD",),
        "Binary adder",
        port_aliases=(("I2", "Cin"), ("O1", "Cout")),
    )
)
ADDER_SUBTRACTOR = _register_type(
    ComponentType(
        "Adder_Subtractor",
        ("ADD", "SUB"),
        "Adder / subtractor with mode control",
        port_aliases=(("C0", "Add_Sub"), ("O1", "Cout")),
    )
)
ALU = _register_type(
    ComponentType(
        "ALU",
        ("ADD", "SUB", "AND", "OR", "XOR", "NOT", "INC", "DEC"),
        "Arithmetic logic unit",
    )
)
MULTIPLIER = _register_type(
    ComponentType("Multiplier", ("MUL",), "Array multiplier")
)
DIVIDER = _register_type(
    ComponentType("Divider", ("DIV",), "Sequential divider")
)
REGISTER = _register_type(
    ComponentType(
        "Register",
        ("STORAGE", "LOAD", "STORE"),
        "Parallel-load register",
    )
)
COUNTER = _register_type(
    ComponentType(
        "Counter",
        ("INC", "COUNTER", "INCREMENT"),
        "Counter (ripple or synchronous, optional up/down, load, enable)",
    )
)
REGISTER_FILE = _register_type(
    ComponentType("Register_file", ("READ", "WRITE", "STORAGE"), "Register file")
)
STACK = _register_type(
    ComponentType("Stack", ("PUSH", "POP", "STORAGE"), "LIFO stack")
)
MEMORY = _register_type(
    ComponentType("Memory", ("READ", "WRITE", "MEMORY"), "RAM block")
)
BUFFER = _register_type(ComponentType("Buffer", ("BUF",), "Signal buffer"))
CLOCK_DRIVER = _register_type(
    ComponentType("Clock_driver", ("CLK_DR",), "Clock distribution driver")
)
SCHMITT_TRIGGER = _register_type(
    ComponentType("Schmitt_trigger", ("SCHM_TGR",), "Schmitt-trigger input conditioner")
)
TRI_STATE = _register_type(
    ComponentType("Tri_state", ("TRI_STATE",), "Tri-state bus driver")
)
PORT = _register_type(ComponentType("Port", ("PORT",), "Chip I/O port"))
BUS = _register_type(ComponentType("Bus", ("BUS",), "Shared bus"))
WIRE_OR = _register_type(ComponentType("Wire_or", ("WIRE_OR",), "Wired-or net"))
CONCAT = _register_type(
    ComponentType("Concat", ("CONCAT",), "Bit-field concatenation switch box")
)
EXTRACT = _register_type(
    ComponentType("Extract", ("EXTRACT",), "Bit-field extraction switch box")
)
CLOCK_GENERATOR = _register_type(
    ComponentType("Clock_generator", ("CLK_GEN",), "Clock generator")
)
DELAY = _register_type(ComponentType("Delay", ("DELAY",), "Pure delay element"))


PREDEFINED_COMPONENT_TYPES: Tuple[str, ...] = tuple(
    ct.name for ct in _COMPONENT_TYPES.values()
)


def component_type(name: str) -> ComponentType:
    """Look up a component type by (case-insensitive) name."""
    try:
        return _COMPONENT_TYPES[name.lower()]
    except KeyError as exc:
        raise UnknownComponentTypeError(name) from exc


def is_component_type(name: str) -> bool:
    return name.lower() in _COMPONENT_TYPES


def component_types_for_function(function: str) -> List[ComponentType]:
    """Component types whose default function set includes ``function``."""
    canonical = normalize_function(function)
    return [ct for ct in _COMPONENT_TYPES.values() if canonical in ct.functions]


def all_component_types() -> List[ComponentType]:
    return list(_COMPONENT_TYPES.values())


# ---------------------------------------------------------------------------
# Function operand naming (Appendix B.3)
# ---------------------------------------------------------------------------


def function_operands(function: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Return (input operand names, output operand names) of a function.

    Unary operators use ``I0`` -> ``O0``; binary operators ``I0``/``I1`` ->
    ``O0``.  ADD and SUB get a carry alias ``Cin`` on ``I2``; relational
    functions produce a single flag output.
    """
    canonical = normalize_function(function)
    if canonical in ("NOT", "BUF", "SCHM_TGR", "CLK_DR", "INC", "DEC", "ENCODE",
                     "DECODE", "SHL1", "SHR1", "ROTL1", "ROTR1", "ASHL1", "ASHR1",
                     "DELAY", "STORAGE", "LOAD", "STORE"):
        return ("I0",), ("O0",)
    if canonical in ("ADD", "SUB"):
        return ("I0", "I1", "Cin"), ("O0", "Cout")
    if canonical in ("SHL", "SHR", "ROTL", "ROTR", "ASHL", "ASHR"):
        return ("I0", "I1"), ("O0",)
    if canonical in RELATIONAL_FUNCTIONS:
        return ("I0", "I1"), ("O0",)
    if canonical in ("MUX_SCL", "MUX_SCG"):
        return ("I0", "I1", "C0"), ("O0",)
    if canonical in ("TRI_STATE",):
        return ("I0", "C0"), ("O0",)
    if canonical in ("WIRE_OR", "CONCAT"):
        return ("I0", "I1"), ("O0",)
    if canonical in ("EXTRACT",):
        return ("I0",), ("O0",)
    if canonical in ("MUL", "DIV"):
        return ("I0", "I1"), ("O0",)
    if canonical in ("READ", "WRITE", "MEMORY", "PUSH", "POP"):
        return ("I0", "I1"), ("O0",)
    if canonical in ("COUNTER", "INCREMENT", "DECREMENT"):
        return ("I0",), ("O0",)
    if canonical in ("CLK_GEN", "PORT", "BUS"):
        return ("I0",), ("O0",)
    # Remaining bitwise logic functions.
    return ("I0", "I1"), ("O0",)
