"""Standard-cell library model.

The paper's estimators need exactly three delay numbers per basic cell
(Section 4.4.1):

* ``X`` -- delay increase per additional unit of transistor load;
* ``Y`` -- intrinsic delay from an input to the output;
* ``Z`` -- delay increase per additional fanout;

plus two layout numbers per cell (Section 4.4.2): the cell's width and the
number of routing tracks it needs.  This module defines a :class:`Cell`
carrying those parameters and a :class:`CellLibrary` with lookup helpers.

The authors' library was a hand-crafted 3 um CMOS cell set whose measured
values are not published; the values here are synthetic but calibrated so
the counter examples of Section 5 land in the same ranges (clock widths of
a few tens of nanoseconds, five-bit counter areas around 2e5 um^2).  See
DESIGN.md for the substitution note.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..fingerprint import stable_fingerprint


class CellLibraryError(KeyError):
    """Raised when a cell lookup fails."""


#: Layout calibration constants (microns).
WIDTH_PER_TRANSISTOR_UM = 8.0
BASE_STRIP_HEIGHT_UM = 100.0
TRACK_PITCH_UM = 8.0

#: Transistor sizing bounds used by the sizing tool.
MIN_SIZE = 1.0
MAX_SIZE = 8.0


@dataclass(frozen=True)
class Cell:
    """A library cell.

    ``load_delay`` / ``intrinsic_delay`` / ``fanout_delay`` are the paper's
    X / Y / Z parameters in nanoseconds (per unit transistor load, absolute,
    and per fanout respectively).  ``input_load`` is the load, in unit
    transistors, one input pin presents to its driver.  ``width_um`` is the
    footprint width of the cell placed in a strip at unit drive.
    """

    name: str
    kind: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    transistors: int
    load_delay: float
    intrinsic_delay: float
    fanout_delay: float
    input_load: int = 2
    tracks: int = 2
    is_sequential: bool = False
    clock_pin: Optional[str] = None
    setup_time: float = 0.0
    hold_time: float = 0.0
    clock_to_q: float = 0.0
    min_pulse_width: float = 0.0
    description: str = ""

    @property
    def width_um(self) -> float:
        """Placement width of the cell at unit drive strength."""
        return self.transistors * WIDTH_PER_TRANSISTOR_UM

    def width_at_size(self, size: float) -> float:
        """Placement width when the cell's transistors are scaled by ``size``.

        Only the drive (output stage) transistors grow, so width grows
        sub-linearly: half the transistors scale, half stay minimum size.
        """
        size = max(MIN_SIZE, float(size))
        scaled = self.transistors * (0.5 + 0.5 * size)
        return scaled * WIDTH_PER_TRANSISTOR_UM

    def transistor_units_at_size(self, size: float) -> float:
        """Equivalent unit-transistor count at the given drive strength."""
        size = max(MIN_SIZE, float(size))
        return self.transistors * (0.5 + 0.5 * size)

    def load_delay_at_size(self, size: float) -> float:
        """X parameter at the given drive strength (stronger drives faster)."""
        size = max(MIN_SIZE, float(size))
        return self.load_delay / size

    def input_load_at_size(self, size: float) -> float:
        """Load presented to the driver of this cell's inputs at ``size``."""
        size = max(MIN_SIZE, float(size))
        return self.input_load * (0.5 + 0.5 * size)

    def output_delay(self, load_units: float, fanout: int, size: float = 1.0) -> float:
        """The paper's delay formula: ``Trans_no * X + Y + fanout_no * Z``."""
        return (
            load_units * self.load_delay_at_size(size)
            + self.intrinsic_delay
            + fanout * self.fanout_delay
        )


class CellLibrary:
    """A named collection of cells with kind-based lookup."""

    def __init__(self, name: str, cells: Iterable[Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._by_kind: Dict[str, List[Cell]] = {}
        self._fingerprint: Optional[int] = None
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise CellLibraryError(f"cell {cell.name!r} already in library {self.name!r}")
        self._cells[cell.name] = cell
        self._by_kind.setdefault(cell.kind, []).append(cell)
        self._fingerprint = None

    def fingerprint(self) -> int:
        """A stable identity of the library's full parameter set.

        Cells are frozen dataclasses, so the fingerprint is a content
        digest of the (name-ordered) cell tuple plus the library name.
        The generation cache keys synthesized netlists on it: two
        services sharing a cache (or a library mutated through
        :meth:`add`) can never serve each other's mappings for a
        different cell set.  The digest is process-stable (never the
        randomized built-in ``hash``): fleet workers ship stage entries
        keyed on it to the server.
        """
        if self._fingerprint is None:
            self._fingerprint = stable_fingerprint(
                self.name, tuple(self._cells[name] for name in sorted(self._cells))
            )
        return self._fingerprint

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError as exc:
            raise CellLibraryError(f"no cell named {name!r} in library {self.name!r}") from exc

    def by_kind(self, kind: str) -> Cell:
        """Return the (single preferred) cell of logical kind ``kind``."""
        cells = self._by_kind.get(kind)
        if not cells:
            raise CellLibraryError(f"no cell of kind {kind!r} in library {self.name!r}")
        return cells[0]

    def has_kind(self, kind: str) -> bool:
        return kind in self._by_kind

    def cells(self) -> List[Cell]:
        return list(self._cells.values())

    def kinds(self) -> List[str]:
        return list(self._by_kind)

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells


def _gate(
    name: str,
    kind: str,
    n_inputs: int,
    transistors: int,
    load_delay: float,
    intrinsic: float,
    fanout_delay: float = 0.15,
    tracks: int = 2,
    input_load: int = 2,
    description: str = "",
    input_names: Optional[Sequence[str]] = None,
) -> Cell:
    inputs = tuple(input_names) if input_names else tuple(f"I{i}" for i in range(n_inputs))
    return Cell(
        name=name,
        kind=kind,
        inputs=inputs,
        outputs=("O",),
        transistors=transistors,
        load_delay=load_delay,
        intrinsic_delay=intrinsic,
        fanout_delay=fanout_delay,
        tracks=tracks,
        input_load=input_load,
        description=description,
    )


def default_library() -> CellLibrary:
    """Build the default synthetic 3 um CMOS-style cell library."""
    cells: List[Cell] = [
        _gate("INV1", "INV", 1, 2, 0.12, 0.8, description="Inverter"),
        _gate("BUF1", "BUF", 1, 4, 0.10, 1.2, description="Non-inverting buffer"),
        _gate("BUF4", "BUFH", 1, 8, 0.05, 1.4, description="High-drive buffer"),
        _gate("NAND2", "NAND2", 2, 4, 0.14, 1.2),
        _gate("NAND3", "NAND3", 3, 6, 0.16, 1.5),
        _gate("NAND4", "NAND4", 4, 8, 0.18, 1.8),
        _gate("NOR2", "NOR2", 2, 4, 0.16, 1.4),
        _gate("NOR3", "NOR3", 3, 6, 0.18, 1.7),
        _gate("AND2", "AND2", 2, 6, 0.13, 1.6),
        _gate("AND3", "AND3", 3, 8, 0.15, 1.9),
        _gate("AND4", "AND4", 4, 10, 0.17, 2.2),
        _gate("OR2", "OR2", 2, 6, 0.15, 1.7),
        _gate("OR3", "OR3", 3, 8, 0.17, 2.0),
        _gate("OR4", "OR4", 4, 10, 0.19, 2.3),
        _gate("XOR2", "XOR2", 2, 10, 0.18, 2.6, tracks=3),
        _gate("XNOR2", "XNOR2", 2, 10, 0.18, 2.6, tracks=3),
        _gate(
            "AOI21", "AOI21", 3, 6, 0.16, 1.5, tracks=2,
            description="And-Or-Invert: O = !((I0*I1) + I2)",
        ),
        _gate(
            "OAI21", "OAI21", 3, 6, 0.16, 1.5, tracks=2,
            description="Or-And-Invert: O = !((I0+I1) * I2)",
        ),
        _gate(
            "AOI22", "AOI22", 4, 8, 0.18, 1.7, tracks=3,
            description="And-Or-Invert: O = !((I0*I1) + (I2*I3))",
        ),
        _gate(
            "MUX21", "MUX2", 3, 12, 0.16, 2.2, tracks=3,
            description="2:1 multiplexer: O = S ? I1 : I0",
            input_names=("I0", "I1", "S"),
        ),
        _gate(
            "TBUF1", "TRIBUF", 2, 6, 0.14, 1.8, tracks=2,
            description="Tri-state buffer: O driven with I0 when EN is high",
            input_names=("I0", "EN"),
        ),
        _gate("SCHMITT1", "SCHMITT", 1, 8, 0.20, 2.4, description="Schmitt trigger"),
        _gate("DLY1", "DELAY", 1, 8, 0.10, 5.0, description="Delay element"),
        _gate(
            "WOR2", "WIREOR", 2, 2, 0.20, 0.6, tracks=1,
            description="Wired-or junction (modelled as a weak OR)",
        ),
        Cell(
            name="TIE0",
            kind="TIE0",
            inputs=(),
            outputs=("O",),
            transistors=1,
            load_delay=0.0,
            intrinsic_delay=0.0,
            fanout_delay=0.0,
            input_load=0,
            tracks=1,
            description="Constant logic-0 tie-down",
        ),
        Cell(
            name="TIE1",
            kind="TIE1",
            inputs=(),
            outputs=("O",),
            transistors=1,
            load_delay=0.0,
            intrinsic_delay=0.0,
            fanout_delay=0.0,
            input_load=0,
            tracks=1,
            description="Constant logic-1 tie-up",
        ),
    ]
    cells.append(
        Cell(
            name="DFF1",
            kind="DFF",
            inputs=("D", "CK"),
            outputs=("Q",),
            transistors=20,
            load_delay=0.14,
            intrinsic_delay=0.0,
            fanout_delay=0.15,
            input_load=2,
            tracks=4,
            is_sequential=True,
            clock_pin="CK",
            setup_time=2.5,
            hold_time=0.5,
            clock_to_q=3.5,
            min_pulse_width=6.0,
            description="Rising-edge D flip-flop",
        )
    )
    cells.append(
        Cell(
            name="DFFSR1",
            kind="DFF_SR",
            inputs=("D", "CK", "S", "R"),
            outputs=("Q",),
            transistors=26,
            load_delay=0.14,
            intrinsic_delay=0.0,
            fanout_delay=0.15,
            input_load=2,
            tracks=5,
            is_sequential=True,
            clock_pin="CK",
            setup_time=2.8,
            hold_time=0.6,
            clock_to_q=3.8,
            min_pulse_width=6.5,
            description="Rising-edge D flip-flop with asynchronous set / reset",
        )
    )
    cells.append(
        Cell(
            name="DFFN1",
            kind="DFF_N",
            inputs=("D", "CK"),
            outputs=("Q",),
            transistors=20,
            load_delay=0.14,
            intrinsic_delay=0.0,
            fanout_delay=0.15,
            input_load=2,
            tracks=4,
            is_sequential=True,
            clock_pin="CK",
            setup_time=2.5,
            hold_time=0.5,
            clock_to_q=3.5,
            min_pulse_width=6.0,
            description="Falling-edge D flip-flop",
        )
    )
    cells.append(
        Cell(
            name="DFFNSR1",
            kind="DFF_N_SR",
            inputs=("D", "CK", "S", "R"),
            outputs=("Q",),
            transistors=26,
            load_delay=0.14,
            intrinsic_delay=0.0,
            fanout_delay=0.15,
            input_load=2,
            tracks=5,
            is_sequential=True,
            clock_pin="CK",
            setup_time=2.8,
            hold_time=0.6,
            clock_to_q=3.8,
            min_pulse_width=6.5,
            description="Falling-edge D flip-flop with asynchronous set / reset",
        )
    )
    for kind, name, desc in (
        ("LATCH_H", "LATH1", "Transparent-high latch"),
        ("LATCH_L", "LATL1", "Transparent-low latch"),
    ):
        cells.append(
            Cell(
                name=name,
                kind=kind,
                inputs=("D", "G"),
                outputs=("Q",),
                transistors=12,
                load_delay=0.13,
                intrinsic_delay=0.0,
                fanout_delay=0.15,
                input_load=2,
                tracks=3,
                is_sequential=True,
                clock_pin="G",
                setup_time=1.5,
                hold_time=0.4,
                clock_to_q=2.2,
                min_pulse_width=4.0,
                description=desc,
            )
        )
    return CellLibrary("icdb_generic_3um", cells)


_DEFAULT: Optional[CellLibrary] = None


def standard_cells() -> CellLibrary:
    """Return the cached default library."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = default_library()
    return _DEFAULT
