"""Synthetic standard-cell library (delay X/Y/Z parameters, widths, tracks)."""

from .cells import (
    BASE_STRIP_HEIGHT_UM,
    Cell,
    CellLibrary,
    CellLibraryError,
    MAX_SIZE,
    MIN_SIZE,
    TRACK_PITCH_UM,
    WIDTH_PER_TRANSISTOR_UM,
    default_library,
    standard_cells,
)

__all__ = [
    "BASE_STRIP_HEIGHT_UM",
    "Cell",
    "CellLibrary",
    "CellLibraryError",
    "MAX_SIZE",
    "MIN_SIZE",
    "TRACK_PITCH_UM",
    "WIDTH_PER_TRANSISTOR_UM",
    "default_library",
    "standard_cells",
]
