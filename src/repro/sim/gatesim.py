"""Gate-level simulation of mapped netlists.

Used to check that the output of the MILO-like synthesis flow is
functionally equivalent to the flat IIF description it came from (the
paper runs a VHDL simulator for the same purpose).  Cell behaviour is
defined per cell *kind*; sequential cells react to clock edges / levels on
their clock pin and to asynchronous set / reset pins.

Tri-state / wired-or resolution model
-------------------------------------

The simulator is two-valued (0/1, no ``Z`` or ``X``), so shared buses
resolve like this:

* A ``TRIBUF`` drives its data input onto its output net while ``EN`` is
  1.  While ``EN`` is 0 the output net *holds its previous settled
  value* (a bus-keeper model): the cell evaluates to whatever the net
  last carried, initially the simulator's reset value 0.  A disabled
  tri-state therefore never floats and never fights an enabled driver.
* A net is still single-driver (:meth:`GateNetlist.nets` rejects
  multiple drivers): several tri-state drivers sharing a bus must be
  merged through an explicit ``WIREOR`` cell, which resolves as the
  logical OR of its inputs -- an inactive (disabled, holding-0) driver
  contributes nothing, matching a precharged-low wired-OR bus.

The batch (bit-parallel) engine in :mod:`repro.sim.batch` implements the
same model lane for lane; ``tests/test_sim_batch.py`` pins both down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist.gates import GateInstance, GateNetlist
from ..netlist.graph import combinational_order


class GateSimulationError(RuntimeError):
    """Raised on unknown cells or missing input values."""


def read_bus(values: Mapping[str, int], base: str, width: int) -> int:
    """Read ``base[width-1 .. 0]`` out of a name->value mapping.

    The one shared bus unpacker behind ``GateSimulator.bus_value``,
    ``FlatSimulator.bus_value`` and the vector helpers; a missing bit net
    raises :class:`GateSimulationError` naming the net instead of a bare
    ``KeyError``.
    """
    total = 0
    for index in range(width):
        net = f"{base}[{index}]"
        try:
            bit = values[net]
        except KeyError:
            raise GateSimulationError(
                f"no net named {net!r} while reading bus "
                f"{base}[{width - 1}..0]"
            ) from None
        total |= (bit & 1) << index
    return total


def _all(values: Sequence[int]) -> int:
    return 1 if all(values) else 0


def _any(values: Sequence[int]) -> int:
    return 1 if any(values) else 0


def _inputs(instance: GateInstance, values: Mapping[str, int], pins: Sequence[str]) -> List[int]:
    return [values[instance.pins[pin]] for pin in pins if pin in instance.pins]


#: Combinational cell evaluation functions, keyed by cell kind.
_COMBINATIONAL_KINDS: Dict[str, Callable[[List[int]], int]] = {
    "INV": lambda v: 1 - v[0],
    "BUF": lambda v: v[0],
    "BUFH": lambda v: v[0],
    "SCHMITT": lambda v: v[0],
    "DELAY": lambda v: v[0],
    "AND2": _all,
    "AND3": _all,
    "AND4": _all,
    "OR2": _any,
    "OR3": _any,
    "OR4": _any,
    "NAND2": lambda v: 1 - _all(v),
    "NAND3": lambda v: 1 - _all(v),
    "NAND4": lambda v: 1 - _all(v),
    "NOR2": lambda v: 1 - _any(v),
    "NOR3": lambda v: 1 - _any(v),
    "XOR2": lambda v: v[0] ^ v[1],
    "XNOR2": lambda v: 1 - (v[0] ^ v[1]),
    "AOI21": lambda v: 1 - ((v[0] & v[1]) | v[2]),
    "AOI22": lambda v: 1 - ((v[0] & v[1]) | (v[2] & v[3])),
    "OAI21": lambda v: 1 - ((v[0] | v[1]) & v[2]),
    "WIREOR": _any,
    "TIE0": lambda v: 0,
    "TIE1": lambda v: 1,
}


def evaluate_combinational_cell(instance: GateInstance, values: Mapping[str, int]) -> int:
    """Evaluate a combinational cell output given current net values."""
    kind = instance.cell.kind
    if kind == "MUX2":
        i0, i1, select = (values[instance.pins[p]] for p in ("I0", "I1", "S"))
        return i1 if select else i0
    if kind == "TRIBUF":
        data = values[instance.pins["I0"]]
        enable = values[instance.pins["EN"]]
        # When disabled the output keeps its previous value (bus-hold model).
        return data if enable else values.get(instance.output_net(), 0)
    function = _COMBINATIONAL_KINDS.get(kind)
    if function is None:
        raise GateSimulationError(f"no functional model for cell kind {kind!r}")
    operands = [values[instance.pins[pin]] for pin in instance.cell.inputs]
    return function(operands)


class GateSimulator:
    """Event-style simulator over a mapped gate netlist."""

    def __init__(self, netlist: GateNetlist, initial_state: int = 0):
        self.netlist = netlist
        self.order = combinational_order(netlist)
        self.values: Dict[str, int] = {}
        for name in netlist.inputs:
            self.values[name] = 0
        for instance in netlist.all_instances():
            for pin in instance.cell.outputs:
                self.values[instance.pins[pin]] = initial_state
        self._previous_clock: Dict[str, int] = {}
        self._settle()
        for instance in netlist.sequential_instances():
            clock_net = instance.clock_net()
            self._previous_clock[instance.name] = self.values.get(clock_net, 0)

    # ------------------------------------------------------------------ drive

    def apply(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Apply primary-input values, settle, and return output values."""
        if inputs:
            for name, value in inputs.items():
                if name not in self.netlist.inputs:
                    raise GateSimulationError(f"unknown input {name!r}")
                self.values[name] = 1 if value else 0
        self._settle()
        return self.output_values()

    def clock_cycle(self, clock: str, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        low = dict(inputs or {})
        low[clock] = 0
        self.apply(low)
        return self.apply({clock: 1})

    def output_values(self) -> Dict[str, int]:
        return {name: self.values[name] for name in self.netlist.outputs}

    def bus_value(self, base: str, width: int) -> int:
        return read_bus(self.values, base, width)

    # ----------------------------------------------------------------- settle

    def _settle(self, max_iterations: int = 200) -> None:
        for _ in range(max_iterations):
            changed = self._propagate()
            changed |= self._sequential_step()
            if not changed:
                return
        raise GateSimulationError(
            f"{self.netlist.name}: gate-level simulation did not settle"
        )

    def _propagate(self) -> bool:
        changed = False
        for _ in range(200):
            pass_changed = False
            for instance in self.order:
                new_value = evaluate_combinational_cell(instance, self.values)
                out_net = instance.output_net()
                if self.values.get(out_net) != new_value:
                    self.values[out_net] = new_value
                    pass_changed = True
            if not pass_changed:
                return changed
            changed = True
        raise GateSimulationError(
            f"{self.netlist.name}: combinational gates did not settle"
        )

    def _sequential_step(self) -> bool:
        updates: List[Tuple[str, int]] = []
        for instance in self.netlist.sequential_instances():
            kind = instance.cell.kind
            clock_net = instance.clock_net()
            clock = self.values.get(clock_net, 0)
            out_net = instance.output_net()
            set_value = self.values.get(instance.pins.get("S", ""), 0) if "S" in instance.pins else 0
            reset_value = self.values.get(instance.pins.get("R", ""), 0) if "R" in instance.pins else 0

            if kind.startswith("LATCH"):
                transparent = clock == 1 if kind == "LATCH_H" else clock == 0
                if transparent:
                    updates.append((out_net, self.values[instance.pins["D"]]))
                self._previous_clock[instance.name] = clock
                continue

            previous = self._previous_clock.get(instance.name, clock)
            self._previous_clock[instance.name] = clock
            if set_value:
                updates.append((out_net, 1))
                continue
            if reset_value:
                updates.append((out_net, 0))
                continue
            falling_edge_cell = kind.startswith("DFF_N")
            triggered = (
                (previous == 1 and clock == 0)
                if falling_edge_cell
                else (previous == 0 and clock == 1)
            )
            if triggered:
                updates.append((out_net, self.values[instance.pins["D"]]))
        changed = False
        for net, value in updates:
            if self.values.get(net) != value:
                self.values[net] = value
                changed = True
        return changed
