"""Bit-parallel (word-level) batch simulation.

The scalar simulators (:class:`~repro.sim.functional.FlatSimulator`,
:class:`~repro.sim.gatesim.GateSimulator`) evaluate one test vector at a
time -- a Python-level loop per gate per vector.  The engines here pack
``W`` independent test vectors into **big-integer lanes**: every net
carries one Python ``int`` whose bit ``i`` is the net's value in lane
``i``, and every gate / expression node evaluates all ``W`` lanes with a
single bitwise operation.  This extends the ``truth_mask`` trick of
:mod:`repro.logic.expr` (which evaluates all ``2**n`` truth-table rows in
one pass over the hash-consed IR) from pure expressions to full
components, including sequential (clocked) lock-step simulation.

Lanes are *independent experiments*: each carries its own primary-input
stream and its own flip-flop / latch state, but all lanes share the one
clocking schedule of the driving calls (``apply`` / ``clock_cycle``).
The semantics per lane are exactly those of the scalar simulators --
two-phase edge commit, asynchronous set-over-reset priority, latch
transparency, TRIBUF bus-hold, WIREOR as OR (see ``docs/sim.md``);
``tests/test_sim_batch.py`` asserts lane-for-lane identity against the
scalar engines, including on random netlists and stimulus.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..iif.flat import CombAssign, FlatComponent, SeqAssign
from ..logic import expr as E
from ..netlist.gates import GateInstance, GateNetlist
from ..netlist.graph import combinational_order
from .functional import MAX_SETTLE_ITERATIONS, SimulationError
from .gatesim import GateSimulationError

__all__ = [
    "BatchFlatSimulator",
    "BatchGateSimulator",
    "batch_evaluate",
    "pack_vectors",
    "unpack_lane",
    "unpack_lanes",
]


# ---------------------------------------------------------------------------
# Lane packing helpers
# ---------------------------------------------------------------------------


def pack_vectors(
    vectors: Sequence[Mapping[str, int]],
    names: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Pack per-vector assignments into lane integers.

    Bit ``i`` of the result for ``name`` is vector ``i``'s value of
    ``name`` (missing names default to 0).  ``names`` fixes the packed
    signal set; by default it is the union of the vectors' keys in first
    appearance order.
    """
    if names is None:
        seen: Dict[str, None] = {}
        for vector in vectors:
            for name in vector:
                seen.setdefault(name, None)
        names = list(seen)
    packed: Dict[str, int] = {name: 0 for name in names}
    for lane, vector in enumerate(vectors):
        bit = 1 << lane
        for name in names:
            if vector.get(name, 0):
                packed[name] |= bit
    return packed


def unpack_lane(values: Mapping[str, int], lane: int) -> Dict[str, int]:
    """Extract one lane's scalar assignment from lane-packed values."""
    return {name: (value >> lane) & 1 for name, value in values.items()}


def unpack_lanes(values: Mapping[str, int], lanes: int) -> List[Dict[str, int]]:
    """Explode lane-packed values back into one scalar dict per lane."""
    return [unpack_lane(values, lane) for lane in range(lanes)]


# ---------------------------------------------------------------------------
# Batch expression evaluation (flat IR)
# ---------------------------------------------------------------------------


def batch_evaluate(
    expr: E.BExpr,
    env: Mapping[str, int],
    full: int,
    memo: Optional[Dict[E.BExpr, int]] = None,
) -> int:
    """Evaluate ``expr`` over lane-packed variable values.

    ``full`` is the all-lanes mask ``(1 << lanes) - 1``; every node costs
    one bitwise operation for all lanes at once, and the hash-consed
    expression graph is walked once per distinct node (``memo`` carries
    shared-subgraph results across calls evaluated against the *same*
    environment snapshot).
    """
    if memo is None:
        memo = {}

    def rec(node: E.BExpr) -> int:
        result = memo.get(node)
        if result is not None:
            return result
        if isinstance(node, E.Const):
            result = full if node.value else 0
        elif isinstance(node, E.Var):
            try:
                result = env[node.name] & full
            except KeyError:
                raise SimulationError(
                    f"no value for signal {node.name!r}"
                ) from None
        elif isinstance(node, E.Not):
            result = full ^ rec(node.operand)
        elif isinstance(node, E.Buf):
            result = rec(node.operand)
        elif isinstance(node, E.And):
            result = full
            for arg in node.args:
                result &= rec(arg)
        elif isinstance(node, E.Or):
            result = 0
            for arg in node.args:
                result |= rec(arg)
        elif isinstance(node, E.Xor):
            result = rec(node.left) ^ rec(node.right)
        elif isinstance(node, E.Xnor):
            result = full ^ rec(node.left) ^ rec(node.right)
        elif isinstance(node, E.Special):
            # Functional (zero-delay, driven) semantics, exactly like the
            # scalar ``Special.evaluate``: wire-or resolves as OR, the
            # data input wins for tri-state / delay / schmitt.
            if node.kind == "wireor":
                result = 0
                for arg in node.args:
                    result |= rec(arg)
            else:
                result = rec(node.args[0])
        else:
            raise SimulationError(f"cannot batch-evaluate {node!r}")
        memo[node] = result
        return result

    return rec(expr)


# ---------------------------------------------------------------------------
# Batch flat (functional) simulator
# ---------------------------------------------------------------------------


class BatchFlatSimulator:
    """Lane-parallel mirror of :class:`~repro.sim.functional.FlatSimulator`.

    Every value in :attr:`values` is a ``lanes``-bit integer; per lane the
    settle / async / latch / edge semantics are identical to the scalar
    simulator's.
    """

    def __init__(self, component: FlatComponent, lanes: int, initial_state: int = 0):
        if lanes < 1:
            raise SimulationError(f"need at least one lane, got {lanes}")
        self.component = component
        self.lanes = lanes
        self.full = (1 << lanes) - 1
        self._comb: List[CombAssign] = component.combinational()
        self._seq: List[SeqAssign] = component.sequential()
        initial = initial_state & self.full
        self.values: Dict[str, int] = {}
        for signal in component.signals():
            self.values[signal] = initial
        for name in component.inputs:
            self.values[name] = 0
        self._previous_clock: Dict[str, int] = {}
        self._settle()
        for assign in self._seq:
            self._previous_clock[assign.target] = self._clock_value(assign)

    # ----------------------------------------------------------------- basics

    def _clock_value(self, assign: SeqAssign) -> int:
        return batch_evaluate(assign.clock, self.values, self.full)

    def state(self) -> Dict[str, int]:
        return {assign.target: self.values[assign.target] for assign in self._seq}

    def output_values(self) -> Dict[str, int]:
        return {name: self.values[name] for name in self.component.outputs}

    def value(self, signal: str) -> int:
        return self.values[signal]

    def lane_values(self, lane: int) -> Dict[str, int]:
        """One lane's scalar view of every signal."""
        return unpack_lane(self.values, lane)

    # ------------------------------------------------------------------ drive

    def apply(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Apply lane-packed primary-input values and settle all lanes."""
        if inputs:
            unknown = [name for name in inputs if name not in self.component.inputs]
            if unknown:
                raise SimulationError(f"unknown input signals: {unknown}")
            for name, value in inputs.items():
                self.values[name] = value & self.full
        self._settle()
        return self.output_values()

    def clock_cycle(
        self, clock: str = "CLK", inputs: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        """One full clock cycle on every lane (low phase, rising edge)."""
        low = dict(inputs or {})
        low[clock] = 0
        self.apply(low)
        return self.apply({clock: self.full})

    # ----------------------------------------------------------------- settle

    def _settle(self) -> None:
        for _ in range(MAX_SETTLE_ITERATIONS):
            changed = self._propagate_combinational()
            changed |= self._apply_async()
            changed |= self._apply_latches()
            changed |= self._apply_edges()
            if not changed:
                return
        raise SimulationError(
            f"{self.component.name}: batch simulation did not settle "
            f"(possible combinational loop)"
        )

    def _propagate_combinational(self) -> bool:
        changed = False
        for _ in range(MAX_SETTLE_ITERATIONS):
            pass_changed = False
            for assign in self._comb:
                # No cross-assign memo: like the scalar simulator, each
                # assignment sees the in-pass updates before it.
                new_value = batch_evaluate(assign.expr, self.values, self.full)
                if self.values.get(assign.target) != new_value:
                    self.values[assign.target] = new_value
                    pass_changed = True
            if not pass_changed:
                return changed
            changed = True
        raise SimulationError(
            f"{self.component.name}: combinational logic did not settle"
        )

    def _apply_async(self) -> bool:
        changed = False
        for assign in self._seq:
            handled = 0  # lanes already claimed by an earlier (higher-priority) term
            for term in assign.asyncs:
                active = (
                    batch_evaluate(term.condition, self.values, self.full)
                    & ~handled
                    & self.full
                )
                if not active:
                    continue
                handled |= active
                current = self.values[assign.target]
                forced = active if term.value else 0
                new_value = (current & ~active & self.full) | forced
                if new_value != current:
                    self.values[assign.target] = new_value
                    changed = True
        return changed

    def _apply_latches(self) -> bool:
        changed = False
        for assign in self._seq:
            if not assign.is_latch:
                continue
            clock = self._clock_value(assign)
            transparent = clock if assign.edge == "h" else (self.full ^ clock)
            if transparent:
                data = batch_evaluate(assign.data, self.values, self.full)
                current = self.values[assign.target]
                new_value = (current & ~transparent & self.full) | (data & transparent)
                if new_value != current:
                    self.values[assign.target] = new_value
                    changed = True
            self._previous_clock[assign.target] = clock
        return changed

    def _apply_edges(self) -> bool:
        # Two-phase commit per lane: all flip-flops sample D before any
        # updates, exactly like the scalar simulator.
        updates: List[Tuple[str, int, int]] = []
        for assign in self._seq:
            if assign.is_latch:
                continue
            clock = self._clock_value(assign)
            previous = self._previous_clock.get(assign.target, clock)
            rising = ~previous & clock & self.full
            falling = previous & ~clock & self.full
            triggered = rising if assign.edge == "r" else falling
            self._previous_clock[assign.target] = clock
            if not triggered:
                continue
            # Asynchronous terms dominate the edge on the lanes where any
            # of them is active.
            dominated = 0
            for term in assign.asyncs:
                dominated |= batch_evaluate(term.condition, self.values, self.full)
            triggered &= ~dominated & self.full
            if not triggered:
                continue
            updates.append(
                (
                    assign.target,
                    triggered,
                    batch_evaluate(assign.data, self.values, self.full),
                )
            )
        changed = False
        for target, mask, data in updates:
            current = self.values[target]
            new_value = (current & ~mask & self.full) | (data & mask)
            if new_value != current:
                self.values[target] = new_value
                changed = True
        return changed


# ---------------------------------------------------------------------------
# Batch gate-level simulator
# ---------------------------------------------------------------------------


def _b_all(operands: Sequence[int], full: int) -> int:
    result = full
    for value in operands:
        result &= value
    return result


def _b_any(operands: Sequence[int], full: int) -> int:
    result = 0
    for value in operands:
        result |= value
    return result


#: Lane-parallel cell evaluators: ``f(operands, full) -> lanes`` for every
#: combinational kind of ``_COMBINATIONAL_KINDS`` (MUX2 / TRIBUF are
#: special-cased like in the scalar engine).
_BATCH_KINDS = {
    "INV": lambda v, full: full ^ v[0],
    "BUF": lambda v, full: v[0],
    "BUFH": lambda v, full: v[0],
    "SCHMITT": lambda v, full: v[0],
    "DELAY": lambda v, full: v[0],
    "AND2": _b_all,
    "AND3": _b_all,
    "AND4": _b_all,
    "OR2": _b_any,
    "OR3": _b_any,
    "OR4": _b_any,
    "NAND2": lambda v, full: full ^ _b_all(v, full),
    "NAND3": lambda v, full: full ^ _b_all(v, full),
    "NAND4": lambda v, full: full ^ _b_all(v, full),
    "NOR2": lambda v, full: full ^ _b_any(v, full),
    "NOR3": lambda v, full: full ^ _b_any(v, full),
    "NOR4": lambda v, full: full ^ _b_any(v, full),
    "XOR2": lambda v, full: v[0] ^ v[1],
    "XNOR2": lambda v, full: full ^ v[0] ^ v[1],
    "AOI21": lambda v, full: full ^ ((v[0] & v[1]) | v[2]),
    "AOI22": lambda v, full: full ^ ((v[0] & v[1]) | (v[2] & v[3])),
    "OAI21": lambda v, full: full ^ ((v[0] | v[1]) & v[2]),
    "WIREOR": _b_any,
    "TIE0": lambda v, full: 0,
    "TIE1": lambda v, full: full,
}


def batch_evaluate_cell(
    instance: GateInstance, values: Mapping[str, int], full: int
) -> int:
    """Evaluate one combinational cell for all lanes at once."""
    kind = instance.cell.kind
    if kind == "MUX2":
        i0, i1, select = (values[instance.pins[p]] for p in ("I0", "I1", "S"))
        return (i0 & ~select & full) | (i1 & select)
    if kind == "TRIBUF":
        data = values[instance.pins["I0"]]
        enable = values[instance.pins["EN"]]
        # Bus-hold per lane: disabled lanes keep the previous output value.
        held = values.get(instance.output_net(), 0)
        return (data & enable) | (held & ~enable & full)
    function = _BATCH_KINDS.get(kind)
    if function is None:
        raise GateSimulationError(f"no functional model for cell kind {kind!r}")
    operands = [values[instance.pins[pin]] for pin in instance.cell.inputs]
    return function(operands, full)


class BatchGateSimulator:
    """Lane-parallel mirror of :class:`~repro.sim.gatesim.GateSimulator`."""

    def __init__(self, netlist: GateNetlist, lanes: int, initial_state: int = 0):
        if lanes < 1:
            raise GateSimulationError(f"need at least one lane, got {lanes}")
        self.netlist = netlist
        self.lanes = lanes
        self.full = (1 << lanes) - 1
        self.order = combinational_order(netlist)
        initial = initial_state & self.full
        self.values: Dict[str, int] = {}
        for name in netlist.inputs:
            self.values[name] = 0
        for instance in netlist.all_instances():
            for pin in instance.cell.outputs:
                self.values[instance.pins[pin]] = initial
        self._previous_clock: Dict[str, int] = {}
        self._settle()
        for instance in netlist.sequential_instances():
            clock_net = instance.clock_net()
            self._previous_clock[instance.name] = self.values.get(clock_net, 0)

    # ------------------------------------------------------------------ drive

    def apply(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Apply lane-packed primary-input values, settle, return outputs."""
        if inputs:
            for name, value in inputs.items():
                if name not in self.netlist.inputs:
                    raise GateSimulationError(f"unknown input {name!r}")
                self.values[name] = value & self.full
        self._settle()
        return self.output_values()

    def clock_cycle(
        self, clock: str, inputs: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        low = dict(inputs or {})
        low[clock] = 0
        self.apply(low)
        return self.apply({clock: self.full})

    def output_values(self) -> Dict[str, int]:
        return {name: self.values[name] for name in self.netlist.outputs}

    def lane_values(self, lane: int) -> Dict[str, int]:
        """One lane's scalar view of every net."""
        return unpack_lane(self.values, lane)

    # ----------------------------------------------------------------- settle

    def _settle(self, max_iterations: int = 200) -> None:
        for _ in range(max_iterations):
            changed = self._propagate()
            changed |= self._sequential_step()
            if not changed:
                return
        raise GateSimulationError(
            f"{self.netlist.name}: batch gate-level simulation did not settle"
        )

    def _propagate(self) -> bool:
        changed = False
        for _ in range(200):
            pass_changed = False
            for instance in self.order:
                new_value = batch_evaluate_cell(instance, self.values, self.full)
                out_net = instance.output_net()
                if self.values.get(out_net) != new_value:
                    self.values[out_net] = new_value
                    pass_changed = True
            if not pass_changed:
                return changed
            changed = True
        raise GateSimulationError(
            f"{self.netlist.name}: combinational gates did not settle"
        )

    def _sequential_step(self) -> bool:
        full = self.full
        updates: List[Tuple[str, int]] = []
        for instance in self.netlist.sequential_instances():
            kind = instance.cell.kind
            clock = self.values.get(instance.clock_net(), 0)
            out_net = instance.output_net()
            set_mask = (
                self.values.get(instance.pins["S"], 0) if "S" in instance.pins else 0
            )
            reset_mask = (
                self.values.get(instance.pins["R"], 0) if "R" in instance.pins else 0
            )

            if kind.startswith("LATCH"):
                transparent = clock if kind == "LATCH_H" else (full ^ clock)
                if transparent:
                    data = self.values[instance.pins["D"]]
                    current = self.values[out_net]
                    updates.append(
                        (out_net, (current & ~transparent & full) | (data & transparent))
                    )
                self._previous_clock[instance.name] = clock
                continue

            previous = self._previous_clock.get(instance.name, clock)
            self._previous_clock[instance.name] = clock
            falling_edge_cell = kind.startswith("DFF_N")
            triggered = (
                (previous & ~clock & full)
                if falling_edge_cell
                else (~previous & clock & full)
            )
            # Per-lane priority, like the scalar engine: set wins over
            # reset, both win over the clock edge.
            triggered &= ~set_mask & ~reset_mask & full
            current = self.values[out_net]
            new_value = current
            if triggered:
                data = self.values[instance.pins["D"]]
                new_value = (new_value & ~triggered & full) | (data & triggered)
            new_value &= ~(reset_mask & ~set_mask) & full
            new_value |= set_mask
            if new_value != current or set_mask or reset_mask or triggered:
                updates.append((out_net, new_value))
        changed = False
        for net, value in updates:
            if self.values.get(net) != value:
                self.values[net] = value
                changed = True
        return changed
