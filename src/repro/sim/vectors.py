"""Test-vector helpers and equivalence checking.

The paper verifies that a generated component is functionally correct and
meets its constraints (Section 4.3).  This module provides the vector
plumbing used by ICDB's verification step and by the test suite:

* driving / reading buses on either simulator;
* exhaustive or random combinational equivalence checks between a flat IIF
  component and its synthesized gate netlist;
* a sequential lock-step comparison over random stimulus.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from typing import Any

from ..iif.flat import FlatComponent
from ..netlist.gates import GateNetlist
from .functional import FlatSimulator
from .gatesim import GateSimulator, read_bus

__all__ = [
    "EquivalenceResult",
    "bus_assignment",
    "read_bus",
    "check_combinational_equivalence",
    "check_sequential_equivalence",
]


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check.

    ``vectors_checked`` counts the vectors (or, for lock-step sequential
    checks, stimulus applications) actually simulated -- on an early
    mismatch it includes the counterexample vector but nothing after it.
    ``mode`` records which check produced the result
    (``"combinational"`` / ``"sequential"``) when known.
    """

    equivalent: bool
    vectors_checked: int
    counterexample: Optional[Dict[str, int]] = None
    mismatched_outputs: Tuple[str, ...] = ()
    mode: str = ""

    def __bool__(self) -> bool:
        return self.equivalent

    def to_dict(self) -> Dict[str, Any]:
        """JSON-stable wire form (the ``check_equivalence`` answer)."""
        return {
            "equivalent": self.equivalent,
            "vectors_checked": self.vectors_checked,
            "counterexample": (
                dict(self.counterexample) if self.counterexample else None
            ),
            "mismatched_outputs": list(self.mismatched_outputs),
            "mode": self.mode,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "EquivalenceResult":
        counterexample = data.get("counterexample")
        return EquivalenceResult(
            equivalent=bool(data.get("equivalent")),
            vectors_checked=int(data.get("vectors_checked", 0)),
            counterexample=(
                {str(k): int(v) for k, v in counterexample.items()}
                if counterexample
                else None
            ),
            mismatched_outputs=tuple(
                str(name) for name in data.get("mismatched_outputs") or ()
            ),
            mode=str(data.get("mode") or ""),
        )


def bus_assignment(base: str, width: int, value: int) -> Dict[str, int]:
    """Input assignment driving ``base[width-1..0]`` with ``value``."""
    return {f"{base}[{i}]": (value >> i) & 1 for i in range(width)}


def _input_vectors(
    inputs: Sequence[str], max_exhaustive: int, samples: int, seed: int
) -> List[Dict[str, int]]:
    if len(inputs) <= max_exhaustive:
        return [
            dict(zip(inputs, bits))
            for bits in itertools.product((0, 1), repeat=len(inputs))
        ]
    rng = random.Random(seed)
    vectors = []
    for _ in range(samples):
        vectors.append({name: rng.randint(0, 1) for name in inputs})
    return vectors


def check_combinational_equivalence(
    flat: FlatComponent,
    netlist: GateNetlist,
    max_exhaustive: int = 10,
    samples: int = 200,
    seed: int = 1990,
) -> EquivalenceResult:
    """Compare a combinational flat component against its gate netlist.

    Exhaustive over the inputs when there are at most ``max_exhaustive`` of
    them, random sampling otherwise.
    """
    collapsed = flat.collapsed_output_expressions()
    vectors = _input_vectors(flat.inputs, max_exhaustive, samples, seed)
    simulator = GateSimulator(netlist)
    for checked, vector in enumerate(vectors, start=1):
        gate_values = simulator.apply(vector)
        mismatches = []
        for output in flat.outputs:
            expected = collapsed[output].evaluate(vector)
            if gate_values[output] != expected:
                mismatches.append(output)
        if mismatches:
            return EquivalenceResult(
                equivalent=False,
                vectors_checked=checked,
                counterexample=dict(vector),
                mismatched_outputs=tuple(mismatches),
                mode="combinational",
            )
    return EquivalenceResult(
        equivalent=True, vectors_checked=len(vectors), mode="combinational"
    )


def check_sequential_equivalence(
    flat: FlatComponent,
    netlist: GateNetlist,
    clock: str,
    cycles: int = 32,
    seed: int = 1990,
    hold_inputs: Optional[Mapping[str, int]] = None,
) -> EquivalenceResult:
    """Lock-step comparison of a sequential component and its netlist.

    Both simulators start from the all-zero state; every cycle random values
    are applied to the non-clock inputs (except those pinned by
    ``hold_inputs``), a clock cycle is run, and the outputs are compared.
    """
    rng = random.Random(seed)
    flat_sim = FlatSimulator(flat)
    gate_sim = GateSimulator(netlist)
    free_inputs = [
        name for name in flat.inputs if name != clock and name not in (hold_inputs or {})
    ]
    for cycle in range(cycles):
        stimulus: Dict[str, int] = {name: rng.randint(0, 1) for name in free_inputs}
        if hold_inputs:
            stimulus.update(hold_inputs)
        flat_out = flat_sim.clock_cycle(clock, stimulus)
        gate_out = gate_sim.clock_cycle(clock, stimulus)
        mismatches = [
            output for output in flat.outputs if flat_out[output] != gate_out[output]
        ]
        if mismatches:
            return EquivalenceResult(
                equivalent=False,
                vectors_checked=cycle + 1,
                counterexample=dict(stimulus),
                mismatched_outputs=tuple(mismatches),
                mode="sequential",
            )
    return EquivalenceResult(
        equivalent=True, vectors_checked=cycles, mode="sequential"
    )
