"""Simulators used to verify generated components (flat and gate level)."""

from .functional import FlatSimulator, SimulationError
from .gatesim import GateSimulationError, GateSimulator, evaluate_combinational_cell
from .vectors import (
    EquivalenceResult,
    bus_assignment,
    check_combinational_equivalence,
    check_sequential_equivalence,
    read_bus,
)

__all__ = [
    "EquivalenceResult",
    "FlatSimulator",
    "GateSimulationError",
    "GateSimulator",
    "SimulationError",
    "bus_assignment",
    "check_combinational_equivalence",
    "check_sequential_equivalence",
    "evaluate_combinational_cell",
    "read_bus",
]
