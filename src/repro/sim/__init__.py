"""Simulators used to verify generated components (flat and gate level).

Two families:

* scalar engines (:class:`FlatSimulator`, :class:`GateSimulator`) --
  one vector at a time, the reference semantics;
* bit-parallel batch engines (:class:`BatchFlatSimulator`,
  :class:`BatchGateSimulator`, :mod:`repro.sim.batch`) -- ``W`` vectors
  packed into big-integer lanes, one bitwise operation per gate per
  step, with the verification layer (:mod:`repro.sim.verify`) on top.

See ``docs/sim.md``.
"""

from .batch import (
    BatchFlatSimulator,
    BatchGateSimulator,
    batch_evaluate,
    pack_vectors,
    unpack_lane,
    unpack_lanes,
)
from .functional import FlatSimulator, SimulationError
from .gatesim import (
    GateSimulationError,
    GateSimulator,
    evaluate_combinational_cell,
    read_bus,
)
from .vectors import (
    EquivalenceResult,
    bus_assignment,
    check_combinational_equivalence,
    check_sequential_equivalence,
)
from .verify import (
    EQUIVALENCE_MODES,
    SIM_ENGINES,
    VerificationError,
    check_combinational_equivalence_batch,
    check_equivalence,
    check_sequential_equivalence_batch,
    simulate_vectors,
)

__all__ = [
    "BatchFlatSimulator",
    "BatchGateSimulator",
    "EQUIVALENCE_MODES",
    "EquivalenceResult",
    "FlatSimulator",
    "GateSimulationError",
    "GateSimulator",
    "SIM_ENGINES",
    "SimulationError",
    "VerificationError",
    "batch_evaluate",
    "bus_assignment",
    "check_combinational_equivalence",
    "check_combinational_equivalence_batch",
    "check_equivalence",
    "check_sequential_equivalence",
    "check_sequential_equivalence_batch",
    "evaluate_combinational_cell",
    "pack_vectors",
    "read_bus",
    "simulate_vectors",
    "unpack_lane",
    "unpack_lanes",
]
