"""Functional (flat-level) simulation of IIF components.

The paper verifies generated components with a VHDL simulator; here a small
event-style simulator works directly on the flat IIF form: combinational
equations are settled to a fixpoint, edge-triggered assignments update on
clock edges of their (possibly gated or rippled) clock expressions, latches
are transparent while their level clock is active, and asynchronous
set/reset terms override everything.

Ripple counters work naturally: when a flip-flop output toggles, any
flip-flop clocked by that output sees the edge during the same settling
pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..iif.flat import CombAssign, FlatComponent, SeqAssign
from ..logic import expr as E
from .gatesim import read_bus


class SimulationError(RuntimeError):
    """Raised when the simulator cannot settle or inputs are missing."""


#: Safety bound for the combinational / edge settling loop.
MAX_SETTLE_ITERATIONS = 1000


@dataclass
class FlatSimulator:
    """Cycle-accurate simulator over a :class:`FlatComponent`."""

    component: FlatComponent
    initial_state: int = 0

    def __post_init__(self) -> None:
        self._comb: List[CombAssign] = self.component.combinational()
        self._seq: List[SeqAssign] = self.component.sequential()
        self.values: Dict[str, int] = {}
        for signal in self.component.signals():
            self.values[signal] = self.initial_state
        for name in self.component.inputs:
            self.values[name] = 0
        self._previous_clock: Dict[str, int] = {}
        self._settle()
        for assign in self._seq:
            self._previous_clock[assign.target] = self._clock_value(assign)

    # ----------------------------------------------------------------- basics

    def _clock_value(self, assign: SeqAssign) -> int:
        return assign.clock.evaluate(self.values)

    def state(self) -> Dict[str, int]:
        """Current values of all state (flip-flop / latch) signals."""
        return {assign.target: self.values[assign.target] for assign in self._seq}

    def output_values(self) -> Dict[str, int]:
        return {name: self.values[name] for name in self.component.outputs}

    def value(self, signal: str) -> int:
        return self.values[signal]

    def bus_value(self, base: str, width: int) -> int:
        """Read ``base[width-1 .. 0]`` as an unsigned integer."""
        return read_bus(self.values, base, width)

    def set_bus(self, base: str, width: int, value: int) -> Dict[str, int]:
        """Build an input assignment for a bus (does not apply it)."""
        return {f"{base}[{i}]": (value >> i) & 1 for i in range(width)}

    # ------------------------------------------------------------------ drive

    def apply(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Apply new primary-input values and settle the component.

        Edge-triggered state updates happen for every flip-flop whose clock
        expression transitions as a result; ripple chains settle within the
        same call.  Returns the output values after settling.
        """
        if inputs:
            unknown = [name for name in inputs if name not in self.component.inputs]
            if unknown:
                raise SimulationError(f"unknown input signals: {unknown}")
            for name, value in inputs.items():
                self.values[name] = 1 if value else 0
        self._settle()
        return self.output_values()

    def _settle(self) -> None:
        for _ in range(MAX_SETTLE_ITERATIONS):
            changed = self._propagate_combinational()
            changed |= self._apply_async()
            changed |= self._apply_latches()
            changed |= self._apply_edges()
            if not changed:
                return
        raise SimulationError(
            f"{self.component.name}: simulation did not settle "
            f"(possible combinational loop)"
        )

    def _propagate_combinational(self) -> bool:
        changed = False
        for _ in range(MAX_SETTLE_ITERATIONS):
            pass_changed = False
            for assign in self._comb:
                new_value = assign.expr.evaluate(self.values)
                if self.values.get(assign.target) != new_value:
                    self.values[assign.target] = new_value
                    pass_changed = True
            if not pass_changed:
                return changed
            changed = True
        raise SimulationError(
            f"{self.component.name}: combinational logic did not settle"
        )

    def _apply_async(self) -> bool:
        changed = False
        for assign in self._seq:
            for term in assign.asyncs:
                if term.condition.evaluate(self.values):
                    if self.values[assign.target] != term.value:
                        self.values[assign.target] = term.value
                        changed = True
                    break
        return changed

    def _apply_latches(self) -> bool:
        changed = False
        for assign in self._seq:
            if not assign.is_latch:
                continue
            clock = self._clock_value(assign)
            transparent = clock == 1 if assign.edge == "h" else clock == 0
            if transparent:
                new_value = assign.data.evaluate(self.values)
                if self.values[assign.target] != new_value:
                    self.values[assign.target] = new_value
                    changed = True
            self._previous_clock[assign.target] = clock
        return changed

    def _apply_edges(self) -> bool:
        # All flip-flops triggered by the same settling pass sample their D
        # inputs before any of them updates (two-phase commit), otherwise a
        # synchronous counter would race through several states per edge.
        updates: List[Tuple[str, int]] = []
        for assign in self._seq:
            if assign.is_latch:
                continue
            clock = self._clock_value(assign)
            previous = self._previous_clock.get(assign.target, clock)
            rising = previous == 0 and clock == 1
            falling = previous == 1 and clock == 0
            triggered = rising if assign.edge == "r" else falling
            self._previous_clock[assign.target] = clock
            if not triggered or self._async_dominates(assign):
                continue
            updates.append((assign.target, assign.data.evaluate(self.values)))
        changed = False
        for target, new_value in updates:
            if self.values[target] != new_value:
                self.values[target] = new_value
                changed = True
        return changed

    def _async_dominates(self, assign: SeqAssign) -> bool:
        return any(term.condition.evaluate(self.values) for term in assign.asyncs)

    # ------------------------------------------------------------------ clock

    def clock_cycle(self, clock: str = "CLK", inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Drive one full clock cycle (low phase, then rising edge).

        ``inputs`` are applied during the low phase so set-up is respected.
        Returns the outputs after the rising edge has settled.
        """
        low = dict(inputs or {})
        low[clock] = 0
        self.apply(low)
        high = {clock: 1}
        return self.apply(high)

    def run(self, clock: str, cycles: int, inputs: Optional[Mapping[str, int]] = None) -> List[Dict[str, int]]:
        """Run several clock cycles with constant inputs; returns outputs per cycle."""
        trace: List[Dict[str, int]] = []
        for _ in range(cycles):
            trace.append(dict(self.clock_cycle(clock, inputs)))
        return trace
