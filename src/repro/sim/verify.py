"""Batch verification: equivalence checks and vector simulation services.

The paper's ICDB functionally verifies every generated component (Section
4.3 runs a VHDL simulator over the synthesized design).  This module is
that verification step built on the bit-parallel engines of
:mod:`repro.sim.batch`:

* :func:`check_combinational_equivalence_batch` -- exhaustive (small
  input counts) or seeded-random sampled comparison of a flat component's
  collapsed output expressions against its gate netlist, whole lane
  blocks per Python operation;
* :func:`check_sequential_equivalence_batch` -- lock-step comparison of
  the flat and gate-level machines over many independent random stimulus
  streams (one per lane) at once;
* :func:`check_equivalence` -- the mode-dispatching entry the service
  layer exposes (``auto`` picks sequential when either side has state);
* :func:`simulate_vectors` -- batch vector simulation behind the
  ``simulate`` request: one lane per vector for combinational sweeps, a
  single-lane trace of one cycle per vector when a clock is named.

All loops call :func:`repro.core.progress.checkpoint` once per vector
block / cycle, so a simulation or equivalence check submitted as a job is
cancellable between blocks and reports streaming progress.

Counterexamples are extracted lane-precisely: the reported assignment is
the earliest mismatching vector (lowest lane of the first mismatching
block), and ``vectors_checked`` counts vectors actually simulated up to
and including it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.progress import checkpoint
from ..iif.flat import FlatComponent
from ..netlist.gates import GateNetlist
from .batch import (
    BatchFlatSimulator,
    BatchGateSimulator,
    batch_evaluate,
    pack_vectors,
    unpack_lane,
)
from .vectors import EquivalenceResult, _input_vectors

__all__ = [
    "EQUIVALENCE_MODES",
    "SIM_ENGINES",
    "VerificationError",
    "check_combinational_equivalence_batch",
    "check_equivalence",
    "check_sequential_equivalence_batch",
    "simulate_vectors",
]


class VerificationError(ValueError):
    """Raised on invalid verification requests (bad mode / engine,
    mismatched ports, missing clock)."""


#: Valid ``mode`` values of :func:`check_equivalence` (and the
#: ``check_equivalence`` request).
EQUIVALENCE_MODES = ("auto", "combinational", "sequential")

#: Valid ``engine`` values of :func:`simulate_vectors` (and the
#: ``simulate`` request).
SIM_ENGINES = ("gates", "flat")

#: Vectors per lane block: bounds both the big-integer width and the
#: spacing of cancellation checkpoints.
DEFAULT_BLOCK_LANES = 256


def _lowest_lane(mask: int) -> int:
    """Index of the lowest set bit (the earliest mismatching lane)."""
    return (mask & -mask).bit_length() - 1


def _check_ports(flat: FlatComponent, netlist: GateNetlist) -> None:
    """The two sides of an equivalence check must expose the same ports."""
    if sorted(flat.inputs) != sorted(netlist.inputs) or sorted(
        flat.outputs
    ) != sorted(netlist.outputs):
        raise VerificationError(
            f"port mismatch: reference {flat.name!r} has inputs "
            f"{sorted(flat.inputs)} / outputs {sorted(flat.outputs)}, netlist "
            f"{netlist.name!r} has inputs {sorted(netlist.inputs)} / outputs "
            f"{sorted(netlist.outputs)}"
        )


def check_combinational_equivalence_batch(
    flat: FlatComponent,
    netlist: GateNetlist,
    max_exhaustive: int = 10,
    samples: int = 256,
    seed: int = 1990,
    block_lanes: int = DEFAULT_BLOCK_LANES,
) -> EquivalenceResult:
    """Bit-parallel combinational comparison of ``flat`` vs ``netlist``.

    Semantics match :func:`~repro.sim.vectors.check_combinational_equivalence`
    (exhaustive when ``len(inputs) <= max_exhaustive``, seeded random
    sampling otherwise); the work happens ``block_lanes`` vectors per
    bitwise operation instead of one.
    """
    _check_ports(flat, netlist)
    collapsed = flat.collapsed_output_expressions()
    vectors = _input_vectors(flat.inputs, max_exhaustive, samples, seed)
    total = len(vectors)
    checked = 0
    for start in range(0, total, block_lanes):
        checkpoint("equivalence", start / total if total else 1.0)
        block = vectors[start : start + block_lanes]
        lanes = len(block)
        full = (1 << lanes) - 1
        packed = pack_vectors(block, flat.inputs)
        gate_values = BatchGateSimulator(netlist, lanes).apply(packed)
        memo: Dict[object, int] = {}
        diffs: Dict[str, int] = {}
        combined = 0
        for output in flat.outputs:
            expected = batch_evaluate(collapsed[output], packed, full, memo)
            diff = (expected ^ gate_values[output]) & full
            if diff:
                diffs[output] = diff
                combined |= diff
        if combined:
            lane = _lowest_lane(combined)
            bit = 1 << lane
            return EquivalenceResult(
                equivalent=False,
                vectors_checked=checked + lane + 1,
                counterexample=unpack_lane(packed, lane),
                mismatched_outputs=tuple(
                    output
                    for output in flat.outputs
                    if diffs.get(output, 0) & bit
                ),
                mode="combinational",
            )
        checked += lanes
    return EquivalenceResult(
        equivalent=True, vectors_checked=total, mode="combinational"
    )


def check_sequential_equivalence_batch(
    flat: FlatComponent,
    netlist: GateNetlist,
    clock: str,
    cycles: int = 32,
    lanes: int = 64,
    seed: int = 1990,
    hold_inputs: Optional[Mapping[str, int]] = None,
) -> EquivalenceResult:
    """Lock-step flat-vs-gate comparison over ``lanes`` stimulus streams.

    Every lane is an independent random experiment: both machines start
    from the all-zero state, every cycle each lane draws fresh random
    values for the non-clock inputs (``hold_inputs`` pins a value across
    all lanes), one clock cycle runs, and the outputs are compared lane
    for lane.  ``vectors_checked`` counts stimulus applications
    (``lanes`` per cycle); on a mismatch the counterexample is the
    earliest mismatching lane's stimulus of that cycle.
    """
    _check_ports(flat, netlist)
    rng = random.Random(seed)
    flat_sim = BatchFlatSimulator(flat, lanes)
    gate_sim = BatchGateSimulator(netlist, lanes)
    full = flat_sim.full
    held = dict(hold_inputs or {})
    free_inputs = [
        name for name in flat.inputs if name != clock and name not in held
    ]
    for cycle in range(cycles):
        checkpoint("lockstep", cycle / cycles if cycles else 1.0)
        stimulus: Dict[str, int] = {
            name: rng.getrandbits(lanes) for name in free_inputs
        }
        for name, value in held.items():
            stimulus[name] = full if value else 0
        flat_out = flat_sim.clock_cycle(clock, stimulus)
        gate_out = gate_sim.clock_cycle(clock, stimulus)
        diffs = {
            output: (flat_out[output] ^ gate_out[output]) & full
            for output in flat.outputs
        }
        combined = 0
        for diff in diffs.values():
            combined |= diff
        if combined:
            lane = _lowest_lane(combined)
            bit = 1 << lane
            return EquivalenceResult(
                equivalent=False,
                vectors_checked=cycle * lanes + lane + 1,
                counterexample=unpack_lane(stimulus, lane),
                mismatched_outputs=tuple(
                    output for output in flat.outputs if diffs[output] & bit
                ),
                mode="sequential",
            )
    return EquivalenceResult(
        equivalent=True, vectors_checked=cycles * lanes, mode="sequential"
    )


def check_equivalence(
    flat: FlatComponent,
    netlist: GateNetlist,
    mode: str = "auto",
    clock: Optional[str] = None,
    max_exhaustive: int = 10,
    samples: int = 256,
    cycles: int = 32,
    lanes: int = 64,
    seed: int = 1990,
) -> EquivalenceResult:
    """Check ``netlist`` against the ``flat`` reference specification.

    ``mode`` ``"auto"`` runs the sequential lock-step check when either
    side holds state and the combinational sweep otherwise; the clock
    defaults to the flat side's (single) declared clock input.
    """
    if mode not in EQUIVALENCE_MODES:
        raise VerificationError(
            f"unknown equivalence mode {mode!r}; expected one of "
            f"{EQUIVALENCE_MODES}"
        )
    _check_ports(flat, netlist)
    sequential = bool(flat.sequential()) or bool(netlist.sequential_instances())
    if mode == "auto":
        mode = "sequential" if sequential else "combinational"
    if mode == "combinational":
        return check_combinational_equivalence_batch(
            flat,
            netlist,
            max_exhaustive=max_exhaustive,
            samples=samples,
            seed=seed,
        )
    if clock is None:
        clocks = flat.clock_inputs()
        if not clocks:
            raise VerificationError(
                f"{flat.name}: sequential equivalence needs a clock input "
                f"(none declared, none supplied)"
            )
        clock = clocks[0]
    elif clock not in flat.inputs:
        raise VerificationError(
            f"{flat.name}: clock {clock!r} is not an input"
        )
    return check_sequential_equivalence_batch(
        flat, netlist, clock, cycles=cycles, lanes=lanes, seed=seed
    )


def simulate_vectors(
    flat: FlatComponent,
    netlist: GateNetlist,
    vectors: Sequence[Mapping[str, int]],
    engine: str = "gates",
    clock: Optional[str] = None,
    block_lanes: int = DEFAULT_BLOCK_LANES,
) -> List[Dict[str, int]]:
    """Simulate ``vectors`` on one engine; one output dict per vector.

    Without a ``clock``, every vector is an independent experiment
    applied to a freshly reset component -- all of them at once, one
    lane per vector.  With a ``clock``, the vectors are the consecutive
    per-cycle stimuli of one trace (inputs applied during the low phase,
    outputs sampled after the rising edge), which is inherently serial in
    time and runs as a single-lane batch.
    """
    if engine not in SIM_ENGINES:
        raise VerificationError(
            f"unknown simulation engine {engine!r}; expected one of "
            f"{SIM_ENGINES}"
        )

    def fresh(lanes: int):
        if engine == "flat":
            return BatchFlatSimulator(flat, lanes)
        return BatchGateSimulator(netlist, lanes)

    inputs = flat.inputs if engine == "flat" else netlist.inputs
    if clock is not None and clock not in inputs:
        raise VerificationError(f"clock {clock!r} is not an input")
    total = len(vectors)
    outputs: List[Dict[str, int]] = []
    if clock is not None:
        simulator = fresh(1)
        for cycle, vector in enumerate(vectors):
            if cycle % block_lanes == 0:
                checkpoint("simulate", cycle / total if total else 1.0)
            result = simulator.clock_cycle(
                clock, {name: 1 if value else 0 for name, value in vector.items()}
            )
            outputs.append({name: value & 1 for name, value in result.items()})
        return outputs
    for start in range(0, total, block_lanes):
        checkpoint("simulate", start / total if total else 1.0)
        block = vectors[start : start + block_lanes]
        lanes = len(block)
        packed = pack_vectors(block, None)
        result = fresh(lanes).apply(packed)
        for lane in range(lanes):
            outputs.append(unpack_lane(result, lane))
    return outputs
