"""Process-stable content fingerprints for cache keys that cross the wire.

The generation cache keys synthesis work on catalog and cell-library
fingerprints.  Python's built-in ``hash()`` is randomized per process
(``PYTHONHASHSEED``), so a key containing it can never match between two
processes -- which is exactly what the fleet does: workers compute stage
entries and ship them to the server under the same keys.  Fingerprints
therefore hash *content* through blake2b and are identical wherever the
content is.
"""

from __future__ import annotations

import hashlib


def stable_fingerprint(*parts: object) -> int:
    """A 64-bit content digest of ``parts``, identical across processes.

    Parts are folded in via their ``repr`` (strings, numbers, tuples and
    frozen dataclasses all have stable, content-determined reprs), with a
    separator so adjacent parts cannot collide by concatenation.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")
