"""Two-level logic minimization (Quine-McCluskey with a greedy cover).

The MILO-like flow minimizes every equation of a flat component before
factoring and technology mapping.  The component equations ICDB manipulates
are small (a handful of variables each), so an exact prime-implicant
computation is affordable; larger equations fall back to the expression's
smart-constructor simplifications.

XOR-rich designer equations (adder sum bits, counter toggle bits) are *not*
forced into sum-of-products form: the minimizer keeps whichever of the
original and the minimized expression has the lower literal count, so the
technology mapper can still use XOR cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from . import expr as E
from .sop import Cube, SumOfProducts, cube_minterms, expr_minterms, remove_contained_cubes

#: Above this support size the exact minimizer is skipped.
DEFAULT_MAX_VARS = 10


# ---------------------------------------------------------------------------
# Quine-McCluskey
# ---------------------------------------------------------------------------


def prime_implicants(minterms: Set[int], order: Sequence[str]) -> List[Cube]:
    """Compute all prime implicants of the on-set ``minterms``.

    Cubes are packed ``(value, care)`` integer pairs over ``order``
    (``care`` bit set = the variable is fixed).  Two cubes combine exactly
    when they share a care mask and their values differ in one care bit,
    so each generation probes ``O(cubes * n)`` set lookups instead of
    comparing every cube pair through per-variable dictionaries.  The
    resulting prime set is identical to the classic tabulation.
    """
    if not minterms:
        return []
    names = list(order)
    n = len(names)
    full = (1 << n) - 1
    current: Set[Tuple[int, int]] = {(index & full, full) for index in minterms}
    primes: List[Tuple[int, int]] = []
    while current:
        combined: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        for cube in current:
            value, care = cube
            remaining = care
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                if (value ^ bit, care) in current:
                    used.add(cube)
                    combined.add((value & ~bit, care ^ bit))
        primes.extend(cube for cube in current if cube not in used)
        current = combined
    result: List[Cube] = []
    for value, care in primes:
        literals = []
        for position, name in enumerate(names):
            bit = 1 << (n - 1 - position)
            if care & bit:
                literals.append((name, 1 if value & bit else 0))
        result.append(Cube(tuple(sorted(literals))))
    return result


def select_cover(
    minterms: Set[int], primes: Sequence[Cube], order: Sequence[str]
) -> List[Cube]:
    """Select a small set of primes covering all minterms.

    Essential primes are chosen first, then remaining minterms are covered
    greedily (largest coverage per literal).
    """
    if not minterms:
        return []
    # Deterministic prime order (fewest literals first, then lexicographic)
    # so the greedy cover does not depend on set-iteration order.
    primes = sorted(primes, key=lambda cube: (cube.literal_count(), str(cube)))
    coverage: Dict[Cube, Set[int]] = {
        prime: cube_minterms(prime, order) & minterms for prime in primes
    }
    uncovered = set(minterms)
    chosen: List[Cube] = []

    # Essential primes: minterms covered by exactly one prime.
    for minterm in sorted(minterms):
        covering = [prime for prime, covered in coverage.items() if minterm in covered]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
            uncovered -= coverage[covering[0]]

    while uncovered:
        best: Optional[Cube] = None
        best_key: Tuple[float, int] = (-1.0, 0)
        for prime, covered in coverage.items():
            if prime in chosen:
                continue
            gain = len(covered & uncovered)
            if gain == 0:
                continue
            literals = prime.literal_count() or 1
            key = (gain / literals, gain)
            if key > best_key:
                best_key = key
                best = prime
        if best is None:  # pragma: no cover - cannot happen if primes cover on-set
            raise RuntimeError("prime implicants do not cover the on-set")
        chosen.append(best)
        uncovered -= coverage[best]
    return remove_contained_cubes(chosen)


def minimize_to_sop(
    expression: E.BExpr, order: Optional[Sequence[str]] = None
) -> SumOfProducts:
    """Exact two-level minimization of a (small) expression."""
    names = tuple(order) if order is not None else tuple(sorted(expression.variables()))
    minterms = expr_minterms(expression, names)
    primes = prime_implicants(minterms, names)
    cover = select_cover(minterms, primes, names)
    return SumOfProducts(names, tuple(cover))


# ---------------------------------------------------------------------------
# Expression-level minimization with opaque sub-terms
# ---------------------------------------------------------------------------


def _abstract_opaque(
    expression: E.BExpr, table: Dict[E.BExpr, str], prefix: str = "_opq"
) -> E.BExpr:
    """Replace Buf / Special sub-terms by fresh pseudo-variables.

    The minimizer only restructures AND/OR/NOT/XOR logic; interface
    operators and explicit buffers are kept opaque and re-substituted after
    minimization.
    """
    if isinstance(expression, (E.Var, E.Const)):
        return expression
    if isinstance(expression, (E.Buf, E.Special)):
        if expression not in table:
            table[expression] = f"{prefix}{len(table)}"
        return E.Var(table[expression])
    if isinstance(expression, E.Not):
        return E.not_(_abstract_opaque(expression.operand, table, prefix))
    if isinstance(expression, E.And):
        return E.and_(*(_abstract_opaque(arg, table, prefix) for arg in expression.args))
    if isinstance(expression, E.Or):
        return E.or_(*(_abstract_opaque(arg, table, prefix) for arg in expression.args))
    if isinstance(expression, E.Xor):
        return E.xor(
            _abstract_opaque(expression.left, table, prefix),
            _abstract_opaque(expression.right, table, prefix),
        )
    if isinstance(expression, E.Xnor):
        return E.xnor(
            _abstract_opaque(expression.left, table, prefix),
            _abstract_opaque(expression.right, table, prefix),
        )
    raise E.ExprError(f"cannot abstract {expression!r}")


def _expr_cost(expression: E.BExpr) -> int:
    """Literal count plus a small operator charge (ties broken toward fewer nodes)."""
    return E.count_literals(expression) * 4 + E.count_nodes(expression)


def minimize(expression: E.BExpr, max_vars: int = DEFAULT_MAX_VARS) -> E.BExpr:
    """Minimize an expression, keeping it if minimization does not help.

    Buf / Special sub-terms are treated as opaque inputs; their operands are
    minimized recursively.
    """
    if isinstance(expression, (E.Var, E.Const)):
        return expression
    if isinstance(expression, E.Buf):
        return E.buf(minimize(expression.operand, max_vars))
    if isinstance(expression, E.Special):
        return E.Special(
            expression.kind,
            tuple(minimize(arg, max_vars) for arg in expression.args),
            expression.param,
        )

    table: Dict[E.BExpr, str] = {}
    abstract = _abstract_opaque(expression, table)
    support = abstract.variables()
    if len(support) > max_vars:
        minimized_abstract = abstract
    else:
        sop = minimize_to_sop(abstract)
        candidate = sop.to_expr()
        minimized_abstract = (
            candidate if _expr_cost(candidate) < _expr_cost(abstract) else abstract
        )
    if not table:
        return minimized_abstract
    # Re-substitute opaque terms (their operands minimized recursively).
    back = {
        name: (
            E.buf(minimize(term.operand, max_vars))
            if isinstance(term, E.Buf)
            else E.Special(
                term.kind,
                tuple(minimize(arg, max_vars) for arg in term.args),
                term.param,
            )
        )
        for term, name in table.items()
    }
    return E.substitute(minimized_abstract, back)


def equations_cost(expressions: Iterable[E.BExpr]) -> int:
    """Aggregate literal cost of a set of equations (used by ablation benches)."""
    return sum(E.count_literals(expression) for expression in expressions)
