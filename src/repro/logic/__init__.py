"""Logic synthesis substrate: expression IR, minimization, factoring,
technology mapping and the MILO-like optimization flow."""

from . import expr

__all__ = ["expr"]
