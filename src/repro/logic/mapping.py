"""Technology mapping: boolean expressions onto library cells.

The mapper covers each (minimized, factored) equation with cells from the
:mod:`repro.techlib` library.  Simple tree covering is used, with optional
complex-gate pattern matching (NAND/NOR, AOI21/OAI21/AOI22, 2:1 MUX) --
the paper's third MILO step "performs technology mapping by combining gates
into complex gates".

Sub-expressions are structurally cached per component, so logic shared by
several equations is built only once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.gates import GateNetlist
from ..techlib import Cell, CellLibrary
from . import expr as E


class MappingError(ValueError):
    """Raised when an expression cannot be mapped onto the library."""


@dataclass
class MappingOptions:
    """Mapping options (the ablation benches toggle ``use_complex_gates``)."""

    use_complex_gates: bool = True
    max_gate_inputs: int = 4


class TechnologyMapper:
    """Maps expressions onto cells, adding instances to a netlist."""

    def __init__(
        self,
        netlist: GateNetlist,
        library: CellLibrary,
        options: Optional[MappingOptions] = None,
    ):
        self.netlist = netlist
        self.library = library
        self.options = options or MappingOptions()
        self._cache: Dict[E.BExpr, str] = {}

    # ------------------------------------------------------------------ API

    def map_to_net(self, expression: E.BExpr, target: Optional[str] = None) -> str:
        """Map ``expression``; return the net holding its value.

        When ``target`` is given, a cell is guaranteed to drive exactly that
        net (inserting a buffer when the expression is a bare signal or an
        already-mapped shared sub-expression).
        """
        if target is None:
            return self._map(expression)
        existing = self._lookup(expression)
        if existing is not None or isinstance(expression, E.Var):
            source = existing if existing is not None else expression.name  # type: ignore[union-attr]
            if source == target:
                return target
            self._add("BUF", {"I0": source}, target)
            return target
        self._emit(expression, target)
        self._cache.setdefault(expression, target)
        return target

    # ------------------------------------------------------------------ core

    def _lookup(self, expression: E.BExpr) -> Optional[str]:
        return self._cache.get(expression)

    def _map(self, expression: E.BExpr) -> str:
        if isinstance(expression, E.Var):
            return expression.name
        cached = self._cache.get(expression)
        if cached is not None:
            return cached
        net = self.netlist.new_net()
        self._emit(expression, net)
        self._cache[expression] = net
        return net

    def _add(self, kind: str, input_map: Dict[str, str], output_net: str) -> None:
        cell = self.library.by_kind(kind)
        pins = dict(input_map)
        pins[cell.outputs[0]] = output_net
        self.netlist.add_instance(cell, pins)

    def _emit(self, expression: E.BExpr, out_net: str) -> None:
        if isinstance(expression, E.Const):
            self._add("TIE1" if expression.value else "TIE0", {}, out_net)
            return
        if isinstance(expression, E.Var):
            self._add("BUF", {"I0": expression.name}, out_net)
            return
        if isinstance(expression, E.Buf):
            self._add("BUF", {"I0": self._map(expression.operand)}, out_net)
            return
        if isinstance(expression, E.Not):
            self._emit_not(expression.operand, out_net)
            return
        if isinstance(expression, E.And):
            self._emit_nary("AND", expression.args, out_net)
            return
        if isinstance(expression, E.Or):
            if self.options.use_complex_gates and self._try_mux(expression, out_net):
                return
            self._emit_nary("OR", expression.args, out_net)
            return
        if isinstance(expression, E.Xor):
            self._add(
                "XOR2",
                {"I0": self._map(expression.left), "I1": self._map(expression.right)},
                out_net,
            )
            return
        if isinstance(expression, E.Xnor):
            self._add(
                "XNOR2",
                {"I0": self._map(expression.left), "I1": self._map(expression.right)},
                out_net,
            )
            return
        if isinstance(expression, E.Special):
            self._emit_special(expression, out_net)
            return
        raise MappingError(f"cannot map expression {expression!r}")

    # ------------------------------------------------------------- inverters

    def _emit_not(self, operand: E.BExpr, out_net: str) -> None:
        if self.options.use_complex_gates:
            # Try the and-or-invert / or-and-invert patterns first: they are
            # strictly better matches than decomposing into an AND/OR feeding
            # a NOR/NAND.
            aoi = self._match_aoi(operand)
            if aoi is not None:
                kind, pins = aoi
                self._add(kind, pins, out_net)
                return
            if isinstance(operand, E.And) and 2 <= len(operand.args) <= 4:
                kind = f"NAND{len(operand.args)}"
                if self.library.has_kind(kind):
                    pins = {
                        f"I{i}": self._map(arg) for i, arg in enumerate(operand.args)
                    }
                    self._add(kind, pins, out_net)
                    return
            if isinstance(operand, E.Or) and 2 <= len(operand.args) <= 3:
                kind = f"NOR{len(operand.args)}"
                if self.library.has_kind(kind):
                    pins = {
                        f"I{i}": self._map(arg) for i, arg in enumerate(operand.args)
                    }
                    self._add(kind, pins, out_net)
                    return
        self._add("INV", {"I0": self._map(operand)}, out_net)

    def _match_aoi(self, operand: E.BExpr) -> Optional[Tuple[str, Dict[str, str]]]:
        """Match !((a*b)+c), !((a*b)+(c*d)) and !((a+b)*c) complex gates."""
        if isinstance(operand, E.Or) and len(operand.args) == 2:
            ands = [arg for arg in operand.args if isinstance(arg, E.And) and len(arg.args) == 2]
            others = [arg for arg in operand.args if not (isinstance(arg, E.And) and len(arg.args) == 2)]
            if len(ands) == 2 and self.library.has_kind("AOI22"):
                first, second = ands
                return "AOI22", {
                    "I0": self._map(first.args[0]),
                    "I1": self._map(first.args[1]),
                    "I2": self._map(second.args[0]),
                    "I3": self._map(second.args[1]),
                }
            if len(ands) == 1 and len(others) == 1 and self.library.has_kind("AOI21"):
                return "AOI21", {
                    "I0": self._map(ands[0].args[0]),
                    "I1": self._map(ands[0].args[1]),
                    "I2": self._map(others[0]),
                }
        if isinstance(operand, E.And) and len(operand.args) == 2:
            ors = [arg for arg in operand.args if isinstance(arg, E.Or) and len(arg.args) == 2]
            others = [arg for arg in operand.args if not (isinstance(arg, E.Or) and len(arg.args) == 2)]
            if len(ors) == 1 and len(others) == 1 and self.library.has_kind("OAI21"):
                return "OAI21", {
                    "I0": self._map(ors[0].args[0]),
                    "I1": self._map(ors[0].args[1]),
                    "I2": self._map(others[0]),
                }
        return None

    # ------------------------------------------------------------- n-ary trees

    def _emit_nary(self, base: str, args: Sequence[E.BExpr], out_net: str) -> None:
        nets = [self._map(arg) for arg in args]
        self._emit_net_tree(base, nets, out_net)

    def _emit_net_tree(self, base: str, nets: List[str], out_net: str) -> None:
        limit = self.options.max_gate_inputs
        while len(nets) > limit:
            grouped: List[str] = []
            for start in range(0, len(nets), limit):
                chunk = nets[start : start + limit]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                intermediate = self.netlist.new_net()
                self._emit_gate(base, chunk, intermediate)
                grouped.append(intermediate)
            nets = grouped
        if len(nets) == 1:
            self._add("BUF", {"I0": nets[0]}, out_net)
            return
        self._emit_gate(base, nets, out_net)

    def _emit_gate(self, base: str, nets: Sequence[str], out_net: str) -> None:
        kind = f"{base}{len(nets)}"
        if not self.library.has_kind(kind):
            raise MappingError(f"library has no {kind} cell")
        pins = {f"I{i}": net for i, net in enumerate(nets)}
        self._add(kind, pins, out_net)

    # ------------------------------------------------------------------ MUX

    def _try_mux(self, expression: E.Or, out_net: str) -> bool:
        """Match ``!s*a + s*b`` and map it onto a 2:1 multiplexer cell."""
        if len(expression.args) != 2 or not self.library.has_kind("MUX2"):
            return False
        left, right = expression.args
        if not (isinstance(left, E.And) and isinstance(right, E.And)):
            return False
        if len(left.args) != 2 or len(right.args) != 2:
            return False
        for select in right.args:
            negated = E.not_(select)
            if isinstance(select, E.Not):
                continue
            if negated in left.args:
                data_when_low = [arg for arg in left.args if arg != negated]
                data_when_high = [arg for arg in right.args if arg != select]
                if len(data_when_low) == 1 and len(data_when_high) == 1:
                    self._add(
                        "MUX2",
                        {
                            "I0": self._map(data_when_low[0]),
                            "I1": self._map(data_when_high[0]),
                            "S": self._map(select),
                        },
                        out_net,
                    )
                    return True
        return False

    # ------------------------------------------------------------- specials

    def _emit_special(self, expression: E.Special, out_net: str) -> None:
        if expression.kind == "tristate":
            self._add(
                "TRIBUF",
                {"I0": self._map(expression.args[0]), "EN": self._map(expression.args[1])},
                out_net,
            )
        elif expression.kind == "wireor":
            self._add(
                "WIREOR",
                {"I0": self._map(expression.args[0]), "I1": self._map(expression.args[1])},
                out_net,
            )
        elif expression.kind == "schmitt":
            self._add("SCHMITT", {"I0": self._map(expression.args[0])}, out_net)
        elif expression.kind == "delay":
            self._add("DELAY", {"I0": self._map(expression.args[0])}, out_net)
        else:  # pragma: no cover - SPECIAL_KINDS is closed
            raise MappingError(f"unknown special kind {expression.kind!r}")
