"""Sum-of-products (two-level) representation used by the minimizer.

A :class:`Cube` is a product term: a partial assignment of variables to
0 / 1.  A :class:`SumOfProducts` is a list of cubes over a fixed variable
order.  The minimizer converts small expressions to minterms, computes prime
implicants (Quine-McCluskey) and covers them; this module holds the data
structures and the conversions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from . import expr as E


class SopError(ValueError):
    """Raised on malformed cubes or SOPs."""


@dataclass(frozen=True)
class Cube:
    """A product term: mapping of variable name to required value (0 or 1).

    An empty cube is the constant-1 term.
    """

    literals: Tuple[Tuple[str, int], ...]

    @staticmethod
    def from_mapping(mapping: Mapping[str, int]) -> "Cube":
        items = tuple(sorted((name, 1 if value else 0) for name, value in mapping.items()))
        return Cube(items)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.literals)

    def variables(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.literals)

    def literal_count(self) -> int:
        return len(self.literals)

    def evaluate(self, env: Mapping[str, int]) -> int:
        for name, value in self.literals:
            if (1 if env[name] else 0) != value:
                return 0
        return 1

    def covers(self, other: "Cube") -> bool:
        """True if every assignment satisfying ``other`` satisfies ``self``."""
        own = self.as_dict()
        theirs = other.as_dict()
        for name, value in own.items():
            if name not in theirs or theirs[name] != value:
                return False
        return True

    def to_expr(self) -> E.BExpr:
        if not self.literals:
            return E.TRUE
        terms = [
            E.Var(name) if value else E.not_(E.Var(name))
            for name, value in self.literals
        ]
        return E.and_(*terms)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if not self.literals:
            return "1"
        return "*".join(
            (name if value else f"!{name}") for name, value in self.literals
        )


@dataclass
class SumOfProducts:
    """A disjunction of cubes over an explicit variable order."""

    order: Tuple[str, ...]
    cubes: Tuple[Cube, ...]

    def literal_count(self) -> int:
        return sum(cube.literal_count() for cube in self.cubes)

    def cube_count(self) -> int:
        return len(self.cubes)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 if any(cube.evaluate(env) for cube in self.cubes) else 0

    def to_expr(self) -> E.BExpr:
        if not self.cubes:
            return E.FALSE
        return E.or_(*(cube.to_expr() for cube in self.cubes))

    def is_constant(self) -> Optional[int]:
        if not self.cubes:
            return 0
        if any(not cube.literals for cube in self.cubes):
            return 1
        return None


# ---------------------------------------------------------------------------
# Expression <-> minterms
# ---------------------------------------------------------------------------


def expr_minterms(expression: E.BExpr, order: Sequence[str]) -> Set[int]:
    """Minterm indices (over ``order``; index bit 0 is ``order[-1]``) where
    the expression evaluates to 1.

    Computed from the packed :func:`~repro.logic.expr.truth_mask` -- one
    evaluation of the shared expression graph for all ``2**n`` rows --
    instead of re-walking the tree once per row.
    """
    mask = E.truth_mask(expression, order)
    minterms: Set[int] = set()
    while mask:
        low = mask & -mask
        minterms.add(low.bit_length() - 1)
        mask ^= low
    return minterms


def minterm_to_cube(index: int, order: Sequence[str]) -> Cube:
    names = list(order)
    bits = []
    for position, name in enumerate(names):
        shift = len(names) - 1 - position
        bits.append((name, (index >> shift) & 1))
    return Cube(tuple(sorted(bits)))


def cube_minterms(cube: Cube, order: Sequence[str]) -> Set[int]:
    """All minterm indices covered by ``cube`` over ``order``.

    The cube is packed into a ``(value, care)`` bit pair over ``order``
    and the free positions are enumerated as integer subsets.
    """
    names = list(order)
    n = len(names)
    fixed = cube.as_dict()
    value = 0
    care = 0
    for position, name in enumerate(names):
        if name in fixed:
            bit = 1 << (n - 1 - position)
            care |= bit
            if fixed[name]:
                value |= bit
    free = ((1 << n) - 1) ^ care
    minterms: Set[int] = set()
    subset = free
    while True:
        minterms.add(value | subset)
        if subset == 0:
            break
        subset = (subset - 1) & free
    return minterms


def sop_from_cubes(order: Sequence[str], cubes: Iterable[Cube]) -> SumOfProducts:
    return SumOfProducts(tuple(order), tuple(cubes))


def remove_contained_cubes(cubes: Sequence[Cube]) -> List[Cube]:
    """Single-cube containment: drop cubes covered by another cube."""
    kept: List[Cube] = []
    for cube in cubes:
        if any(other is not cube and other.covers(cube) for other in cubes):
            continue
        kept.append(cube)
    # Deduplicate while preserving order.
    seen: Set[Cube] = set()
    unique: List[Cube] = []
    for cube in kept:
        if cube not in seen:
            seen.add(cube)
            unique.append(cube)
    return unique
