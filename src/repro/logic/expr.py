"""Boolean expression intermediate representation.

Every stage of the ICDB component-generation pipeline that manipulates
combinational behaviour (the IIF expander output, the MILO-like optimizer,
the technology mapper and the estimators) works on the small expression IR
defined here.

The IR is deliberately minimal: variables, the constants 0/1, NOT, n-ary
AND/OR, binary XOR/XNOR, an explicit BUF node, and a ``Special`` node for
the interface operators of IIF (tri-state, wire-or, delay, schmitt trigger)
that map one-to-one onto library cells and are never restructured by the
optimizer.

Expressions are immutable and hashable, so they can be shared freely and
used as dictionary keys during common-subexpression extraction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple


class ExprError(ValueError):
    """Raised for malformed boolean expressions."""


class BExpr:
    """Base class for boolean expressions."""

    __slots__ = ()

    # -- structural queries -------------------------------------------------

    def variables(self) -> FrozenSet[str]:
        """Return the set of variable names appearing in the expression."""
        raise NotImplementedError

    def children(self) -> Tuple["BExpr", ...]:
        """Return direct sub-expressions."""
        return ()

    # -- semantics -----------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a 0/1 assignment.  Missing variables raise KeyError."""
        raise NotImplementedError

    # -- convenience operators ------------------------------------------------

    def __and__(self, other: "BExpr") -> "BExpr":
        return and_(self, other)

    def __or__(self, other: "BExpr") -> "BExpr":
        return or_(self, other)

    def __xor__(self, other: "BExpr") -> "BExpr":
        return xor(self, other)

    def __invert__(self) -> "BExpr":
        return not_(self)


@dataclass(frozen=True)
class Const(BExpr):
    """The constant 0 or 1."""

    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ExprError(f"constant must be 0 or 1, got {self.value!r}")

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Const({self.value})"


TRUE = Const(1)
FALSE = Const(0)


@dataclass(frozen=True)
class Var(BExpr):
    """A named signal."""

    name: str

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 if env[self.name] else 0

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Not(BExpr):
    operand: BExpr

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def children(self) -> Tuple[BExpr, ...]:
        return (self.operand,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - self.operand.evaluate(env)


@dataclass(frozen=True)
class Buf(BExpr):
    """An explicit buffer (kept so technology mapping can emit a BUF cell)."""

    operand: BExpr

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def children(self) -> Tuple[BExpr, ...]:
        return (self.operand,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.operand.evaluate(env)


@dataclass(frozen=True)
class And(BExpr):
    args: Tuple[BExpr, ...]

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out = out | arg.variables()
        return out

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        for arg in self.args:
            if not arg.evaluate(env):
                return 0
        return 1


@dataclass(frozen=True)
class Or(BExpr):
    args: Tuple[BExpr, ...]

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out = out | arg.variables()
        return out

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        for arg in self.args:
            if arg.evaluate(env):
                return 1
        return 0


@dataclass(frozen=True)
class Xor(BExpr):
    left: BExpr
    right: BExpr

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[BExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.left.evaluate(env) ^ self.right.evaluate(env)


@dataclass(frozen=True)
class Xnor(BExpr):
    left: BExpr
    right: BExpr

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[BExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - (self.left.evaluate(env) ^ self.right.evaluate(env))


#: IIF interface operators that bypass boolean restructuring.
SPECIAL_KINDS = ("tristate", "wireor", "delay", "schmitt")


@dataclass(frozen=True)
class Special(BExpr):
    """Interface operator node (tri-state, wire-or, delay, schmitt trigger).

    ``param`` carries the delay amount for ``delay`` nodes and is ``None``
    otherwise.  The optimizer treats these nodes as opaque: their operands are
    optimized independently and the node itself maps onto a dedicated cell.
    """

    kind: str
    args: Tuple[BExpr, ...]
    param: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SPECIAL_KINDS:
            raise ExprError(f"unknown special kind {self.kind!r}")

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for arg in self.args:
            out = out | arg.variables()
        return out

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        # Functional (zero-delay, driven) semantics: the data input wins for
        # tri-state and delay, wire-or behaves as OR, schmitt as buffer.
        if self.kind == "wireor":
            return 1 if any(arg.evaluate(env) for arg in self.args) else 0
        return self.args[0].evaluate(env)


# ---------------------------------------------------------------------------
# Smart constructors (light constant folding / flattening)
# ---------------------------------------------------------------------------


def const(value: int) -> Const:
    """Return the constant TRUE or FALSE node for ``value``."""
    return TRUE if value else FALSE


def var(name: str) -> Var:
    """Return a variable node."""
    return Var(name)


def not_(operand: BExpr) -> BExpr:
    """Negation with folding of constants and double negation."""
    if isinstance(operand, Const):
        return const(1 - operand.value)
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def buf(operand: BExpr) -> BExpr:
    """Explicit buffer node (constants pass through)."""
    if isinstance(operand, Const):
        return operand
    return Buf(operand)


def _flatten(cls, args: Iterable[BExpr]) -> Iterator[BExpr]:
    for arg in args:
        if isinstance(arg, cls):
            yield from arg.args
        else:
            yield arg


def and_(*args: BExpr) -> BExpr:
    """N-ary AND with flattening, constant folding and duplicate removal."""
    flat = list(_flatten(And, args))
    kept = []
    seen = set()
    for arg in flat:
        if isinstance(arg, Const):
            if arg.value == 0:
                return FALSE
            continue
        if arg in seen:
            continue
        seen.add(arg)
        kept.append(arg)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return And(tuple(kept))


def or_(*args: BExpr) -> BExpr:
    """N-ary OR with flattening, constant folding and duplicate removal."""
    flat = list(_flatten(Or, args))
    kept = []
    seen = set()
    for arg in flat:
        if isinstance(arg, Const):
            if arg.value == 1:
                return TRUE
            continue
        if arg in seen:
            continue
        seen.add(arg)
        kept.append(arg)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Or(tuple(kept))


def xor(left: BExpr, right: BExpr) -> BExpr:
    """Binary XOR with constant folding."""
    if isinstance(left, Const):
        return right if left.value == 0 else not_(right)
    if isinstance(right, Const):
        return left if right.value == 0 else not_(left)
    if left == right:
        return FALSE
    return Xor(left, right)


def xnor(left: BExpr, right: BExpr) -> BExpr:
    """Binary XNOR with constant folding."""
    if isinstance(left, Const):
        return not_(right) if left.value == 0 else right
    if isinstance(right, Const):
        return not_(left) if right.value == 0 else left
    if left == right:
        return TRUE
    return Xnor(left, right)


def special(kind: str, args: Sequence[BExpr], param: Optional[int] = None) -> Special:
    """Construct an interface-operator node."""
    return Special(kind, tuple(args), param)


def tristate(data: BExpr, control: BExpr) -> Special:
    """Tri-state buffer: ``data ~t control``."""
    return special("tristate", (data, control))


def wire_or(left: BExpr, right: BExpr) -> Special:
    """Wired-or of two driven nets: ``a ~w b``."""
    return special("wireor", (left, right))


def delay(data: BExpr, amount: int) -> Special:
    """Pure delay element of ``amount`` nanoseconds: ``a ~d amount``."""
    return special("delay", (data,), amount)


def schmitt(data: BExpr) -> Special:
    """Schmitt-trigger input conditioner: ``~s a``."""
    return special("schmitt", (data,))


# ---------------------------------------------------------------------------
# Traversal / analysis helpers
# ---------------------------------------------------------------------------


def walk(expr: BExpr) -> Iterator[BExpr]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def count_literals(expr: BExpr) -> int:
    """Count literal occurrences (variable references) -- the classic cost."""
    return sum(1 for node in walk(expr) if isinstance(node, Var))


def count_nodes(expr: BExpr) -> int:
    """Count operator nodes (excluding variables and constants)."""
    return sum(
        1
        for node in walk(expr)
        if not isinstance(node, (Var, Const))
    )


def depth(expr: BExpr) -> int:
    """Return the operator depth (a variable or constant has depth 0)."""
    if isinstance(expr, (Var, Const)):
        return 0
    kids = expr.children()
    if not kids:
        return 0
    return 1 + max(depth(child) for child in kids)


def substitute(expr: BExpr, mapping: Mapping[str, BExpr]) -> BExpr:
    """Replace variables by expressions (simultaneously)."""
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return not_(substitute(expr.operand, mapping))
    if isinstance(expr, Buf):
        return buf(substitute(expr.operand, mapping))
    if isinstance(expr, And):
        return and_(*(substitute(arg, mapping) for arg in expr.args))
    if isinstance(expr, Or):
        return or_(*(substitute(arg, mapping) for arg in expr.args))
    if isinstance(expr, Xor):
        return xor(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Xnor):
        return xnor(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Special):
        return Special(
            expr.kind,
            tuple(substitute(arg, mapping) for arg in expr.args),
            expr.param,
        )
    raise ExprError(f"cannot substitute into {expr!r}")


def rename_variables(expr: BExpr, mapping: Mapping[str, str]) -> BExpr:
    """Rename variables according to ``mapping`` (missing names unchanged)."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


def cofactor(expr: BExpr, name: str, value: int) -> BExpr:
    """Shannon cofactor of ``expr`` with respect to ``name`` = ``value``."""
    return substitute(expr, {name: const(value)})


def truth_table(expr: BExpr, order: Optional[Sequence[str]] = None) -> Tuple[int, ...]:
    """Return the truth table of ``expr`` over ``order`` (default: sorted vars).

    The result has ``2**n`` entries; entry ``i`` is the value of the
    expression when the variables take the bits of ``i`` (``order[0]`` is the
    most-significant bit).  Only usable for small variable counts.
    """
    names = list(order) if order is not None else sorted(expr.variables())
    n = len(names)
    if n > 20:
        raise ExprError(f"truth table over {n} variables is too large")
    rows = []
    for bits in itertools.product((0, 1), repeat=n):
        env = dict(zip(names, bits))
        rows.append(expr.evaluate(env))
    return tuple(rows)


def equivalent(left: BExpr, right: BExpr, max_vars: int = 16) -> bool:
    """Check semantic equivalence by exhaustive evaluation over the union of
    the two expressions' variables.  Intended for tests and assertions on the
    small component functions ICDB manipulates."""
    names = sorted(left.variables() | right.variables())
    if len(names) > max_vars:
        raise ExprError(
            f"equivalence check over {len(names)} variables exceeds max_vars={max_vars}"
        )
    for bits in itertools.product((0, 1), repeat=len(names)):
        env = dict(zip(names, bits))
        if left.evaluate(env) != right.evaluate(env):
            return False
    return True


def support_size(expr: BExpr) -> int:
    """Number of distinct variables in the expression."""
    return len(expr.variables())


# ---------------------------------------------------------------------------
# Text rendering (IIF-style operators)
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "or": 1,
    "xor": 2,
    "and": 3,
    "unary": 4,
    "atom": 5,
}


def to_iif_string(expr: BExpr) -> str:
    """Render an expression using IIF operator syntax (``+ * ! (+) (.)``)."""
    return _render(expr, 0)


def _paren(text: str, inner: int, outer: int) -> str:
    return f"({text})" if inner < outer else text


def _render(expr: BExpr, outer: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Not):
        return "!" + _render(expr.operand, _PRECEDENCE["unary"])
    if isinstance(expr, Buf):
        return "~b " + _render(expr.operand, _PRECEDENCE["unary"])
    if isinstance(expr, And):
        text = "*".join(_render(arg, _PRECEDENCE["and"]) for arg in expr.args)
        return _paren(text, _PRECEDENCE["and"], outer)
    if isinstance(expr, Or):
        text = " + ".join(_render(arg, _PRECEDENCE["or"]) for arg in expr.args)
        return _paren(text, _PRECEDENCE["or"], outer)
    if isinstance(expr, Xor):
        text = (
            _render(expr.left, _PRECEDENCE["xor"])
            + " (+) "
            + _render(expr.right, _PRECEDENCE["xor"])
        )
        return _paren(text, _PRECEDENCE["xor"], outer)
    if isinstance(expr, Xnor):
        text = (
            _render(expr.left, _PRECEDENCE["xor"])
            + " (.) "
            + _render(expr.right, _PRECEDENCE["xor"])
        )
        return _paren(text, _PRECEDENCE["xor"], outer)
    if isinstance(expr, Special):
        if expr.kind == "tristate":
            return (
                _render(expr.args[0], _PRECEDENCE["unary"])
                + " ~t "
                + _render(expr.args[1], _PRECEDENCE["unary"])
            )
        if expr.kind == "wireor":
            return (
                _render(expr.args[0], _PRECEDENCE["unary"])
                + " ~w "
                + _render(expr.args[1], _PRECEDENCE["unary"])
            )
        if expr.kind == "delay":
            return _render(expr.args[0], _PRECEDENCE["unary"]) + f" ~d {expr.param}"
        if expr.kind == "schmitt":
            return "~s " + _render(expr.args[0], _PRECEDENCE["unary"])
    raise ExprError(f"cannot render {expr!r}")
