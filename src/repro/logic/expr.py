"""Boolean expression intermediate representation.

Every stage of the ICDB component-generation pipeline that manipulates
combinational behaviour (the IIF expander output, the MILO-like optimizer,
the technology mapper and the estimators) works on the small expression IR
defined here.

The IR is deliberately minimal: variables, the constants 0/1, NOT, n-ary
AND/OR, binary XOR/XNOR, an explicit BUF node, and a ``Special`` node for
the interface operators of IIF (tri-state, wire-or, delay, schmitt trigger)
that map one-to-one onto library cells and are never restructured by the
optimizer.

Expressions are immutable, *hash-consed* and structurally shared: one
canonical node exists per structurally-distinct expression, so equality is
identity, ``variables()`` / ``hash`` / ``depth`` / literal counts are
cached O(1) lookups, and expressions can be used directly as memoization
keys by the generation cache.  The intern table holds nodes weakly, so
expressions no stage references any more are garbage-collected; interning
is thread-safe (the PR-3 job workers synthesize concurrently).

Truth tables are computed over the shared subgraph with one big-integer
bitmask per node (a cofactor-free evaluation of all ``2**n`` rows at
once) instead of re-walking the tree once per input row.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple


class ExprError(ValueError):
    """Raised for malformed boolean expressions."""


# ---------------------------------------------------------------------------
# Interning machinery
# ---------------------------------------------------------------------------

#: One canonical node per structurally-distinct expression.  Values are held
#: weakly: an expression nothing references dies, and its table entry (whose
#: key holds the only remaining strong references to its children) follows.
_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
_INTERN_LOCK = threading.Lock()

# Class tags used in intern keys (cheaper to hash than class objects).
_T_CONST, _T_VAR, _T_NOT, _T_BUF, _T_AND, _T_OR, _T_XOR, _T_XNOR, _T_SPECIAL = range(9)


def interned_count() -> int:
    """Number of live interned nodes (diagnostics / tests)."""
    return len(_INTERN)


class BExpr:
    """Base class for boolean expressions (interned, immutable)."""

    __slots__ = ("_vars", "_hash", "_depth", "_lits", "_nodes", "_opaque", "__weakref__")

    # -- structural queries -------------------------------------------------

    def variables(self) -> FrozenSet[str]:
        """The set of variable names appearing in the expression (cached)."""
        return self._vars

    def children(self) -> Tuple["BExpr", ...]:
        """Return direct sub-expressions."""
        return ()

    # -- semantics -----------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a 0/1 assignment.  Missing variables raise KeyError."""
        raise NotImplementedError

    # -- identity ------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    # Equality is identity: interning guarantees one node per structure.
    # (object.__eq__ already compares by identity; stated here for clarity.)

    def __copy__(self) -> "BExpr":
        return self

    def __deepcopy__(self, memo) -> "BExpr":
        return self

    # -- convenience operators ------------------------------------------------

    def __and__(self, other: "BExpr") -> "BExpr":
        return and_(self, other)

    def __or__(self, other: "BExpr") -> "BExpr":
        return or_(self, other)

    def __xor__(self, other: "BExpr") -> "BExpr":
        return xor(self, other)

    def __invert__(self) -> "BExpr":
        return not_(self)


def _lookup(key):
    # Unlocked fast path: dict operations are atomic under the GIL and a
    # ref that died mid-read simply falls through to the locked slow path.
    return _INTERN.get(key)


def _finish(node: BExpr, key, vars_, depth, lits, nodes, opaque) -> None:
    node._vars = vars_
    node._hash = hash(key)
    node._depth = depth
    node._lits = lits
    node._nodes = nodes
    node._opaque = opaque


class Const(BExpr):
    """The constant 0 or 1."""

    __slots__ = ("value",)

    def __new__(cls, value: int):
        if value not in (0, 1):
            raise ExprError(f"constant must be 0 or 1, got {value!r}")
        key = (_T_CONST, value)
        self = _lookup(key)
        if self is not None:
            return self
        with _INTERN_LOCK:
            self = _INTERN.get(key)
            if self is None:
                self = object.__new__(cls)
                self.value = value
                _finish(self, key, frozenset(), 0, 0, 0, False)
                _INTERN[key] = self
            return self

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"Const({self.value})"


TRUE = Const(1)
FALSE = Const(0)

# Keep the two constants alive for the lifetime of the module even if user
# code rebinds TRUE/FALSE (the intern table alone holds them weakly).
_CONST_ANCHOR = (TRUE, FALSE)


class Var(BExpr):
    """A named signal."""

    __slots__ = ("name",)

    def __new__(cls, name: str):
        key = (_T_VAR, name)
        self = _lookup(key)
        if self is not None:
            return self
        with _INTERN_LOCK:
            self = _INTERN.get(key)
            if self is None:
                self = object.__new__(cls)
                self.name = name
                _finish(self, key, frozenset((name,)), 0, 1, 0, False)
                _INTERN[key] = self
            return self

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 if env[self.name] else 0

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


def _unary_new(cls, tag, operand: BExpr):
    key = (tag, operand)
    self = _lookup(key)
    if self is not None:
        return self
    with _INTERN_LOCK:
        self = _INTERN.get(key)
        if self is None:
            self = object.__new__(cls)
            self.operand = operand
            _finish(
                self,
                key,
                operand._vars,
                operand._depth + 1,
                operand._lits,
                operand._nodes + 1,
                tag == _T_BUF or operand._opaque,
            )
            _INTERN[key] = self
        return self


class Not(BExpr):
    __slots__ = ("operand",)

    def __new__(cls, operand: BExpr):
        return _unary_new(cls, _T_NOT, operand)

    def children(self) -> Tuple[BExpr, ...]:
        return (self.operand,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - self.operand.evaluate(env)

    def __reduce__(self):
        return (Not, (self.operand,))

    def __repr__(self) -> str:
        return f"Not(operand={self.operand!r})"


class Buf(BExpr):
    """An explicit buffer (kept so technology mapping can emit a BUF cell)."""

    __slots__ = ("operand",)

    def __new__(cls, operand: BExpr):
        return _unary_new(cls, _T_BUF, operand)

    def children(self) -> Tuple[BExpr, ...]:
        return (self.operand,)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.operand.evaluate(env)

    def __reduce__(self):
        return (Buf, (self.operand,))

    def __repr__(self) -> str:
        return f"Buf(operand={self.operand!r})"


def _nary_new(cls, tag, args: Tuple[BExpr, ...]):
    args = tuple(args)
    key = (tag, args)
    self = _lookup(key)
    if self is not None:
        return self
    with _INTERN_LOCK:
        self = _INTERN.get(key)
        if self is None:
            self = object.__new__(cls)
            self.args = args
            vars_: FrozenSet[str] = frozenset().union(*(a._vars for a in args)) if args else frozenset()
            depth = 1 + max((a._depth for a in args), default=-1)
            _finish(
                self,
                key,
                vars_,
                depth,
                sum(a._lits for a in args),
                1 + sum(a._nodes for a in args),
                any(a._opaque for a in args),
            )
            _INTERN[key] = self
        return self


class And(BExpr):
    __slots__ = ("args",)

    def __new__(cls, args):
        return _nary_new(cls, _T_AND, args)

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        for arg in self.args:
            if not arg.evaluate(env):
                return 0
        return 1

    def __reduce__(self):
        return (And, (self.args,))

    def __repr__(self) -> str:
        return f"And(args={self.args!r})"


class Or(BExpr):
    __slots__ = ("args",)

    def __new__(cls, args):
        return _nary_new(cls, _T_OR, args)

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        for arg in self.args:
            if arg.evaluate(env):
                return 1
        return 0

    def __reduce__(self):
        return (Or, (self.args,))

    def __repr__(self) -> str:
        return f"Or(args={self.args!r})"


def _binary_new(cls, tag, left: BExpr, right: BExpr):
    key = (tag, left, right)
    self = _lookup(key)
    if self is not None:
        return self
    with _INTERN_LOCK:
        self = _INTERN.get(key)
        if self is None:
            self = object.__new__(cls)
            self.left = left
            self.right = right
            _finish(
                self,
                key,
                left._vars | right._vars,
                1 + max(left._depth, right._depth),
                left._lits + right._lits,
                1 + left._nodes + right._nodes,
                left._opaque or right._opaque,
            )
            _INTERN[key] = self
        return self


class Xor(BExpr):
    __slots__ = ("left", "right")

    def __new__(cls, left: BExpr, right: BExpr):
        return _binary_new(cls, _T_XOR, left, right)

    def children(self) -> Tuple[BExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.left.evaluate(env) ^ self.right.evaluate(env)

    def __reduce__(self):
        return (Xor, (self.left, self.right))

    def __repr__(self) -> str:
        return f"Xor(left={self.left!r}, right={self.right!r})"


class Xnor(BExpr):
    __slots__ = ("left", "right")

    def __new__(cls, left: BExpr, right: BExpr):
        return _binary_new(cls, _T_XNOR, left, right)

    def children(self) -> Tuple[BExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - (self.left.evaluate(env) ^ self.right.evaluate(env))

    def __reduce__(self):
        return (Xnor, (self.left, self.right))

    def __repr__(self) -> str:
        return f"Xnor(left={self.left!r}, right={self.right!r})"


#: IIF interface operators that bypass boolean restructuring.
SPECIAL_KINDS = ("tristate", "wireor", "delay", "schmitt")


class Special(BExpr):
    """Interface operator node (tri-state, wire-or, delay, schmitt trigger).

    ``param`` carries the delay amount for ``delay`` nodes and is ``None``
    otherwise.  The optimizer treats these nodes as opaque: their operands are
    optimized independently and the node itself maps onto a dedicated cell.
    """

    __slots__ = ("kind", "args", "param")

    def __new__(cls, kind: str, args, param: Optional[int] = None):
        if kind not in SPECIAL_KINDS:
            raise ExprError(f"unknown special kind {kind!r}")
        args = tuple(args)
        key = (_T_SPECIAL, kind, args, param)
        self = _lookup(key)
        if self is not None:
            return self
        with _INTERN_LOCK:
            self = _INTERN.get(key)
            if self is None:
                self = object.__new__(cls)
                self.kind = kind
                self.args = args
                self.param = param
                vars_: FrozenSet[str] = frozenset().union(*(a._vars for a in args)) if args else frozenset()
                _finish(
                    self,
                    key,
                    vars_,
                    1 + max((a._depth for a in args), default=-1),
                    sum(a._lits for a in args),
                    1 + sum(a._nodes for a in args),
                    True,
                )
                _INTERN[key] = self
            return self

    def children(self) -> Tuple[BExpr, ...]:
        return self.args

    def evaluate(self, env: Mapping[str, int]) -> int:
        # Functional (zero-delay, driven) semantics: the data input wins for
        # tri-state and delay, wire-or behaves as OR, schmitt as buffer.
        if self.kind == "wireor":
            return 1 if any(arg.evaluate(env) for arg in self.args) else 0
        return self.args[0].evaluate(env)

    def __reduce__(self):
        return (Special, (self.kind, self.args, self.param))

    def __repr__(self) -> str:
        return f"Special(kind={self.kind!r}, args={self.args!r}, param={self.param!r})"


# ---------------------------------------------------------------------------
# Smart constructors (light constant folding / flattening)
# ---------------------------------------------------------------------------


def const(value: int) -> Const:
    """Return the constant TRUE or FALSE node for ``value``."""
    return TRUE if value else FALSE


def var(name: str) -> Var:
    """Return a variable node."""
    return Var(name)


def not_(operand: BExpr) -> BExpr:
    """Negation with folding of constants and double negation."""
    if isinstance(operand, Const):
        return const(1 - operand.value)
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def buf(operand: BExpr) -> BExpr:
    """Explicit buffer node (constants pass through)."""
    if isinstance(operand, Const):
        return operand
    return Buf(operand)


def _flatten(cls, args) -> Iterator[BExpr]:
    for arg in args:
        if isinstance(arg, cls):
            yield from arg.args
        else:
            yield arg


def and_(*args: BExpr) -> BExpr:
    """N-ary AND with flattening, constant folding and duplicate removal."""
    flat = list(_flatten(And, args))
    kept = []
    seen = set()
    for arg in flat:
        if isinstance(arg, Const):
            if arg.value == 0:
                return FALSE
            continue
        if arg in seen:
            continue
        seen.add(arg)
        kept.append(arg)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return And(tuple(kept))


def or_(*args: BExpr) -> BExpr:
    """N-ary OR with flattening, constant folding and duplicate removal."""
    flat = list(_flatten(Or, args))
    kept = []
    seen = set()
    for arg in flat:
        if isinstance(arg, Const):
            if arg.value == 1:
                return TRUE
            continue
        if arg in seen:
            continue
        seen.add(arg)
        kept.append(arg)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Or(tuple(kept))


def xor(left: BExpr, right: BExpr) -> BExpr:
    """Binary XOR with constant folding."""
    if isinstance(left, Const):
        return right if left.value == 0 else not_(right)
    if isinstance(right, Const):
        return left if right.value == 0 else not_(left)
    if left == right:
        return FALSE
    return Xor(left, right)


def xnor(left: BExpr, right: BExpr) -> BExpr:
    """Binary XNOR with constant folding."""
    if isinstance(left, Const):
        return not_(right) if left.value == 0 else right
    if isinstance(right, Const):
        return not_(left) if right.value == 0 else left
    if left == right:
        return TRUE
    return Xnor(left, right)


def special(kind: str, args: Sequence[BExpr], param: Optional[int] = None) -> Special:
    """Construct an interface-operator node."""
    return Special(kind, tuple(args), param)


def tristate(data: BExpr, control: BExpr) -> Special:
    """Tri-state buffer: ``data ~t control``."""
    return special("tristate", (data, control))


def wire_or(left: BExpr, right: BExpr) -> Special:
    """Wired-or of two driven nets: ``a ~w b``."""
    return special("wireor", (left, right))


def delay(data: BExpr, amount: int) -> Special:
    """Pure delay element of ``amount`` nanoseconds: ``a ~d amount``."""
    return special("delay", (data,), amount)


def schmitt(data: BExpr) -> Special:
    """Schmitt-trigger input conditioner: ``~s a``."""
    return special("schmitt", (data,))


# ---------------------------------------------------------------------------
# Traversal / analysis helpers
# ---------------------------------------------------------------------------


def walk(expr: BExpr) -> Iterator[BExpr]:
    """Yield ``expr`` and every sub-expression (pre-order, tree semantics:
    a shared subgraph is yielded once per occurrence)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def count_literals(expr: BExpr) -> int:
    """Count literal occurrences (variable references) -- the classic cost."""
    return expr._lits


def count_nodes(expr: BExpr) -> int:
    """Count operator nodes (excluding variables and constants)."""
    return expr._nodes


def has_opaque(expr: BExpr) -> bool:
    """True if the expression contains a Buf or Special node (cached)."""
    return expr._opaque


def depth(expr: BExpr) -> int:
    """Return the operator depth (a variable or constant has depth 0)."""
    return expr._depth


def substitute(expr: BExpr, mapping: Mapping[str, BExpr]) -> BExpr:
    """Replace variables by expressions (simultaneously).

    Subtrees whose support is disjoint from the mapping are returned
    unchanged (an O(1) check on the cached variable sets), and shared
    subgraphs are rewritten once per :func:`substitute` call.
    """
    if not mapping:
        return expr
    return _substitute(expr, mapping, {})


def _substitute(expr: BExpr, mapping: Mapping[str, BExpr], memo: Dict[BExpr, BExpr]) -> BExpr:
    if expr._vars.isdisjoint(mapping):
        return expr
    done = memo.get(expr)
    if done is not None:
        return done
    if isinstance(expr, Var):
        result = mapping.get(expr.name, expr)
    elif isinstance(expr, Not):
        result = not_(_substitute(expr.operand, mapping, memo))
    elif isinstance(expr, Buf):
        result = buf(_substitute(expr.operand, mapping, memo))
    elif isinstance(expr, And):
        result = and_(*(_substitute(arg, mapping, memo) for arg in expr.args))
    elif isinstance(expr, Or):
        result = or_(*(_substitute(arg, mapping, memo) for arg in expr.args))
    elif isinstance(expr, Xor):
        result = xor(
            _substitute(expr.left, mapping, memo), _substitute(expr.right, mapping, memo)
        )
    elif isinstance(expr, Xnor):
        result = xnor(
            _substitute(expr.left, mapping, memo), _substitute(expr.right, mapping, memo)
        )
    elif isinstance(expr, Special):
        result = Special(
            expr.kind,
            tuple(_substitute(arg, mapping, memo) for arg in expr.args),
            expr.param,
        )
    else:
        raise ExprError(f"cannot substitute into {expr!r}")
    memo[expr] = result
    return result


def rename_variables(expr: BExpr, mapping: Mapping[str, str]) -> BExpr:
    """Rename variables according to ``mapping`` (missing names unchanged)."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


def cofactor(expr: BExpr, name: str, value: int) -> BExpr:
    """Shannon cofactor of ``expr`` with respect to ``name`` = ``value``."""
    return substitute(expr, {name: const(value)})


# ---------------------------------------------------------------------------
# Truth tables over shared subgraphs
# ---------------------------------------------------------------------------

#: Cached per-variable row masks, keyed by (variable count, bit shift).
#: Only small supports are cached: the flow's equations live well under
#: ``_VAR_MASK_CACHE_VARS`` variables, and one 24-variable mask alone is
#: 2 MB -- caching those would pin tens of megabytes for the process
#: lifetime after a single large query.
_VAR_MASKS: Dict[Tuple[int, int], int] = {}
_VAR_MASK_CACHE_VARS = 16


def _var_mask(n: int, shift: int) -> int:
    """Bitmask over the 2**n truth-table rows where row index bit ``shift``
    is set (row i of the table assigns ``(i >> shift) & 1`` to the
    variable whose index-significance is ``shift``)."""
    cacheable = n <= _VAR_MASK_CACHE_VARS
    if cacheable:
        mask = _VAR_MASKS.get((n, shift))
        if mask is not None:
            return mask
    block = ((1 << (1 << shift)) - 1) << (1 << shift)
    width = 1 << (shift + 1)
    total = 1 << n
    mask = block
    while width < total:
        mask |= mask << width
        width <<= 1
    if cacheable:
        _VAR_MASKS[(n, shift)] = mask
    return mask


def truth_mask(expr: BExpr, order: Sequence[str]) -> int:
    """The truth table of ``expr`` over ``order`` packed into one integer.

    Bit ``i`` of the result is the value of the expression on row ``i``
    of the table, with ``order[0]`` the most-significant index bit (the
    same row convention as :func:`truth_table`).  Every node of the shared
    expression graph is evaluated exactly once, for all rows at once.
    """
    names = list(order)
    n = len(names)
    if n > 24:
        raise ExprError(f"truth table over {n} variables is too large")
    full = (1 << (1 << n)) - 1
    shifts = {name: n - 1 - position for position, name in enumerate(names)}
    memo: Dict[BExpr, int] = {}

    def rec(node: BExpr) -> int:
        result = memo.get(node)
        if result is not None:
            return result
        if isinstance(node, Const):
            result = full if node.value else 0
        elif isinstance(node, Var):
            result = _var_mask(n, shifts[node.name])  # KeyError on missing vars
        elif isinstance(node, Not):
            result = full ^ rec(node.operand)
        elif isinstance(node, Buf):
            result = rec(node.operand)
        elif isinstance(node, And):
            result = full
            for arg in node.args:
                result &= rec(arg)
        elif isinstance(node, Or):
            result = 0
            for arg in node.args:
                result |= rec(arg)
        elif isinstance(node, Xor):
            result = rec(node.left) ^ rec(node.right)
        elif isinstance(node, Xnor):
            result = full ^ rec(node.left) ^ rec(node.right)
        elif isinstance(node, Special):
            if node.kind == "wireor":
                result = 0
                for arg in node.args:
                    result |= rec(arg)
            else:
                result = rec(node.args[0])
        else:
            raise ExprError(f"cannot evaluate {node!r}")
        memo[node] = result
        return result

    return rec(expr)


def truth_table(expr: BExpr, order: Optional[Sequence[str]] = None) -> Tuple[int, ...]:
    """Return the truth table of ``expr`` over ``order`` (default: sorted vars).

    The result has ``2**n`` entries; entry ``i`` is the value of the
    expression when the variables take the bits of ``i`` (``order[0]`` is the
    most-significant bit).  Only usable for small variable counts.
    """
    names = list(order) if order is not None else sorted(expr._vars)
    n = len(names)
    if n > 20:
        raise ExprError(f"truth table over {n} variables is too large")
    mask = truth_mask(expr, names)
    rows = 1 << n
    # Serialize the big integer once: per-row `mask >> i` shifts would
    # make extraction quadratic in the row count for large supports.
    packed = mask.to_bytes((rows + 7) // 8, "little")
    return tuple((packed[i >> 3] >> (i & 7)) & 1 for i in range(rows))


def equivalent(left: BExpr, right: BExpr, max_vars: int = 16) -> bool:
    """Check semantic equivalence by exhaustive evaluation over the union of
    the two expressions' variables.  Intended for tests and assertions on the
    small component functions ICDB manipulates."""
    names = sorted(left._vars | right._vars)
    if len(names) > max_vars:
        raise ExprError(
            f"equivalence check over {len(names)} variables exceeds max_vars={max_vars}"
        )
    if len(names) > 24:
        # Callers may raise max_vars beyond the packed-mask limit; fall
        # back to the classic row-by-row sweep rather than narrowing the
        # documented contract.
        for bits in itertools.product((0, 1), repeat=len(names)):
            env = dict(zip(names, bits))
            if left.evaluate(env) != right.evaluate(env):
                return False
        return True
    return truth_mask(left, names) == truth_mask(right, names)


def support_size(expr: BExpr) -> int:
    """Number of distinct variables in the expression."""
    return len(expr._vars)


# ---------------------------------------------------------------------------
# Canonical (rename-abstracted) forms for slice detection
# ---------------------------------------------------------------------------

#: Placeholder variable prefix.  '~' is an operator character in IIF, so no
#: real signal name can collide with a placeholder.
_CANONICAL_PREFIX = "~"


def canonical_name(index: int) -> str:
    """The placeholder name for support position ``index`` (order-stable:
    placeholders sort exactly like the sorted original support)."""
    return f"{_CANONICAL_PREFIX}{index:04d}"


def canonical_form(expr: BExpr) -> Tuple[BExpr, Tuple[str, ...]]:
    """Rename the support to position-stable placeholders.

    Returns ``(canonical expression, sorted original names)``: two
    expressions that are variable-renamings of each other (the regular bit
    slices of counters and datapaths) intern to the *same* canonical node,
    which is what the generation cache keys per-slice optimization reuse
    on.  The rename maps ``sorted(vars)[i]`` to :func:`canonical_name`
    ``(i)``, preserving relative sorted order.
    """
    names = tuple(sorted(expr._vars))
    mapping = {name: Var(canonical_name(index)) for index, name in enumerate(names)}
    return substitute(expr, mapping), names


def is_canonicalizable(expr: BExpr) -> bool:
    """True when the support is safe to abstract (no placeholder collisions,
    small enough for 4-digit placeholders)."""
    vars_ = expr._vars
    if len(vars_) >= 10000:
        return False
    return not any(name.startswith(_CANONICAL_PREFIX) for name in vars_)


# ---------------------------------------------------------------------------
# Text rendering (IIF-style operators)
# ---------------------------------------------------------------------------

_PRECEDENCE = {
    "or": 1,
    "xor": 2,
    "and": 3,
    "unary": 4,
    "atom": 5,
}


def to_iif_string(expr: BExpr) -> str:
    """Render an expression using IIF operator syntax (``+ * ! (+) (.)``)."""
    return _render(expr, 0)


def _paren(text: str, inner: int, outer: int) -> str:
    return f"({text})" if inner < outer else text


def _render(expr: BExpr, outer: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Not):
        return "!" + _render(expr.operand, _PRECEDENCE["unary"])
    if isinstance(expr, Buf):
        return "~b " + _render(expr.operand, _PRECEDENCE["unary"])
    if isinstance(expr, And):
        text = "*".join(_render(arg, _PRECEDENCE["and"]) for arg in expr.args)
        return _paren(text, _PRECEDENCE["and"], outer)
    if isinstance(expr, Or):
        text = " + ".join(_render(arg, _PRECEDENCE["or"]) for arg in expr.args)
        return _paren(text, _PRECEDENCE["or"], outer)
    if isinstance(expr, Xor):
        text = (
            _render(expr.left, _PRECEDENCE["xor"])
            + " (+) "
            + _render(expr.right, _PRECEDENCE["xor"])
        )
        return _paren(text, _PRECEDENCE["xor"], outer)
    if isinstance(expr, Xnor):
        text = (
            _render(expr.left, _PRECEDENCE["xor"])
            + " (.) "
            + _render(expr.right, _PRECEDENCE["xor"])
        )
        return _paren(text, _PRECEDENCE["xor"], outer)
    if isinstance(expr, Special):
        if expr.kind == "tristate":
            return (
                _render(expr.args[0], _PRECEDENCE["unary"])
                + " ~t "
                + _render(expr.args[1], _PRECEDENCE["unary"])
            )
        if expr.kind == "wireor":
            return (
                _render(expr.args[0], _PRECEDENCE["unary"])
                + " ~w "
                + _render(expr.args[1], _PRECEDENCE["unary"])
            )
        if expr.kind == "delay":
            return _render(expr.args[0], _PRECEDENCE["unary"]) + f" ~d {expr.param}"
        if expr.kind == "schmitt":
            return "~s " + _render(expr.args[0], _PRECEDENCE["unary"])
    raise ExprError(f"cannot render {expr!r}")
