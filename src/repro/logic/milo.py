"""MILO-like logic optimization and technology mapping flow.

Section 4.3.1 of the paper describes the steps of the logic synthesis /
technology mapping tool.  :func:`synthesize` reproduces them:

1. remove the sequential constructs, leaving a set of boolean equations
   (plus flip-flop / latch specifications);
2. minimize the equations (two-level, per equation) after sweeping away
   trivial internal nets and constants;
3. factor the equations to reduce literal count and level count;
4. map the equations onto library cells, combining gates into complex gates;
5. reinsert the sequential logic as flip-flop / latch cells (asynchronous
   set / reset conditions become combinational set / reset nets);
6. (transistor sizing is a separate tool, :mod:`repro.sizing`.)

The result is a :class:`~repro.netlist.gates.GateNetlist` ready for delay /
area estimation, sizing and layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..iif.flat import AsyncTerm, CombAssign, FlatComponent, SeqAssign
from ..netlist.gates import GateNetlist
from ..techlib import CellLibrary, standard_cells
from . import expr as E
from .factor import factor
from .mapping import MappingOptions, TechnologyMapper
from .minimize import DEFAULT_MAX_VARS, minimize


class SynthesisError(ValueError):
    """Raised when a flat component cannot be synthesized."""


@dataclass
class SynthesisOptions:
    """Options of the MILO-like flow (ablation benches toggle these)."""

    minimize: bool = True
    factor: bool = True
    use_complex_gates: bool = True
    sweep: bool = True
    max_qm_vars: int = DEFAULT_MAX_VARS
    max_inline_literals: int = 24


# ---------------------------------------------------------------------------
# Sweep: constant propagation and trivial-net elimination
# ---------------------------------------------------------------------------


def sweep(flat: FlatComponent, options: Optional[SynthesisOptions] = None) -> FlatComponent:
    """Propagate constants and inline trivial / single-use internal nets.

    Internal combinational signals whose definition is a constant, a literal
    or that are used exactly once (and are reasonably small) are substituted
    into their uses.  Multi-fanout signals (carry chains, decoded selects)
    are kept as shared nets.  Outputs are never removed.
    """
    options = options or SynthesisOptions()
    comb: Dict[str, E.BExpr] = {a.target: a.expr for a in flat.combinational()}
    order: List[str] = [a.target for a in flat.combinational()]
    seq: Dict[str, SeqAssign] = {a.target: a for a in flat.sequential()}
    outputs = set(flat.outputs)

    def use_counts() -> Dict[str, int]:
        counts: Dict[str, int] = {}

        def visit(expression: E.BExpr) -> None:
            for name in expression.variables():
                counts[name] = counts.get(name, 0) + 1

        for expression in comb.values():
            visit(expression)
        for assign in seq.values():
            visit(assign.data)
            visit(assign.clock)
            for term in assign.asyncs:
                visit(term.condition)
        return counts

    def substitute_everywhere(name: str, value: E.BExpr) -> None:
        mapping = {name: value}
        for target in list(comb):
            comb[target] = E.substitute(comb[target], mapping)
        for target, assign in list(seq.items()):
            seq[target] = SeqAssign(
                target=assign.target,
                data=E.substitute(assign.data, mapping),
                clock=E.substitute(assign.clock, mapping),
                edge=assign.edge,
                asyncs=tuple(
                    AsyncTerm(term.value, E.substitute(term.condition, mapping))
                    for term in assign.asyncs
                ),
            )

    changed = True
    iterations = 0
    while changed and iterations < 100:
        changed = False
        iterations += 1
        counts = use_counts()
        for name in list(comb):
            if name in outputs:
                continue
            expression = comb[name]
            trivial = isinstance(expression, (E.Const, E.Var)) or (
                isinstance(expression, E.Not) and isinstance(expression.operand, E.Var)
            )
            single_use = (
                counts.get(name, 0) == 1
                and E.count_literals(expression) <= options.max_inline_literals
                and not E.has_opaque(expression)
            )
            if not (trivial or single_use):
                continue
            if name in expression.variables():
                continue
            del comb[name]
            order.remove(name)
            substitute_everywhere(name, expression)
            changed = True

    result = FlatComponent(
        name=flat.name,
        inputs=list(flat.inputs),
        outputs=list(flat.outputs),
        internals=[name for name in flat.internals if name in comb or name in seq],
        functions=list(flat.functions),
        parameters=dict(flat.parameters),
    )
    assigns: List = []
    for assign in flat.assigns:
        if isinstance(assign, CombAssign):
            if assign.target in comb:
                assigns.append(CombAssign(assign.target, comb[assign.target]))
        else:
            assigns.append(seq[assign.target])
    result.assigns = assigns
    return result


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------


def _optimize_direct(expression: E.BExpr, options: SynthesisOptions) -> E.BExpr:
    if options.minimize:
        expression = minimize(expression, options.max_qm_vars)
    if options.factor:
        expression = factor(expression)
    return expression


def optimize_expression(
    expression: E.BExpr,
    options: SynthesisOptions,
    cache=None,
) -> E.BExpr:
    """Minimize and factor one equation, with canonical-form memoization.

    ``cache`` (a :class:`~repro.core.gencache.CountedLruCache`, usually
    the generation cache's ``optimize`` stage) memoizes results keyed on
    the equation's *canonical form*: the support renamed to
    position-stable placeholders (:func:`~repro.logic.expr.canonical_form`).
    The n bit slices of a regular structure -- counter toggle bits, ALU
    slices, decoded selects -- are variable-renamings of one another, so
    they share a single canonical entry: one representative bit pays for
    Quine-McCluskey and factoring, the rest replay the result through a
    rename.  The first occurrence always returns the directly-computed
    expression, and the rename is monotone on the sorted support, so
    replayed slices match what direct optimization produces (asserted
    catalog-wide by the synthesis test suite).

    Expressions containing opaque Buf/Special subterms are optimized
    directly, never through the memo: :func:`minimize` abstracts those
    subterms as ``_opq<i>`` pseudo-variables, and ``_opq`` names do not
    keep one lexicographic position relative to arbitrary signal names
    and the canonical placeholders alike, so a replay would not be
    rename-equivariant (the QM variable order -- and with it the cover
    tie-breaks -- could differ between a slice and its canonical form).
    """
    if cache is None or isinstance(expression, (E.Var, E.Const)):
        return _optimize_direct(expression, options)
    if E.has_opaque(expression) or not E.is_canonicalizable(expression):
        return _optimize_direct(expression, options)
    canonical, names = E.canonical_form(expression)
    key = (canonical, options.minimize, options.factor, options.max_qm_vars)
    stored = cache.lookup(key)
    if stored is not None:
        back = {
            E.canonical_name(index): E.Var(name) for index, name in enumerate(names)
        }
        return E.substitute(stored, back)
    result = _optimize_direct(expression, options)
    to_canonical = {
        name: E.Var(E.canonical_name(index)) for index, name in enumerate(names)
    }
    cache.store(key, E.substitute(result, to_canonical))
    return result


def synthesize(
    flat: FlatComponent,
    library: Optional[CellLibrary] = None,
    options: Optional[SynthesisOptions] = None,
    optimize_cache=None,
) -> GateNetlist:
    """Run the full MILO-like flow on a flat component.

    ``optimize_cache`` optionally memoizes the per-equation minimize /
    factor step across equations and invocations (see
    :func:`optimize_expression`); the synthesized netlist is identical
    with or without it.
    """
    library = library or standard_cells()
    options = options or SynthesisOptions()
    working = sweep(flat, options) if options.sweep else flat

    netlist = GateNetlist(
        name=working.name,
        inputs=list(working.inputs),
        outputs=list(working.outputs),
        library=library,
    )
    mapper = TechnologyMapper(
        netlist,
        library,
        MappingOptions(use_complex_gates=options.use_complex_gates),
    )

    def optimize(expression: E.BExpr) -> E.BExpr:
        return optimize_expression(expression, options, optimize_cache)

    # Combinational equations.
    for assign in working.combinational():
        mapper.map_to_net(optimize(assign.expr), target=assign.target)

    # Sequential equations: data / clock / async conditions are combinational
    # nets feeding a flip-flop or latch cell whose output is the target.
    for assign in working.sequential():
        data_net = mapper.map_to_net(optimize(assign.data))
        clock_net = mapper.map_to_net(optimize(assign.clock))
        _emit_state_cell(netlist, mapper, library, assign, data_net, clock_net, optimize)

    netlist.validate()
    return netlist


def _emit_state_cell(
    netlist: GateNetlist,
    mapper: TechnologyMapper,
    library: CellLibrary,
    assign: SeqAssign,
    data_net: str,
    clock_net: str,
    optimize,
) -> None:
    set_terms = [term.condition for term in assign.asyncs if term.value == 1]
    reset_terms = [term.condition for term in assign.asyncs if term.value == 0]
    has_async = bool(set_terms or reset_terms)

    if assign.edge in ("r", "f"):
        if has_async:
            kind = "DFF_SR" if assign.edge == "r" else "DFF_N_SR"
        else:
            kind = "DFF" if assign.edge == "r" else "DFF_N"
    else:
        if has_async:
            raise SynthesisError(
                f"latch {assign.target!r} with asynchronous set/reset is not supported"
            )
        kind = "LATCH_H" if assign.edge == "h" else "LATCH_L"
    cell = library.by_kind(kind)

    pins = {"D": data_net, cell.clock_pin or "CK": clock_net, cell.outputs[0]: assign.target}
    if has_async:
        set_net = mapper.map_to_net(optimize(E.or_(*set_terms))) if set_terms else _tie(netlist, library, 0)
        reset_net = (
            mapper.map_to_net(optimize(E.or_(*reset_terms))) if reset_terms else _tie(netlist, library, 0)
        )
        pins["S"] = set_net
        pins["R"] = reset_net
    netlist.add_instance(cell, pins)


def _tie(netlist: GateNetlist, library: CellLibrary, value: int) -> str:
    net = netlist.new_net("tie")
    cell = library.by_kind("TIE1" if value else "TIE0")
    netlist.add_instance(cell, {cell.outputs[0]: net})
    return net
