"""Algebraic factoring (the "quick factor" step of the MILO-like flow).

After two-level minimization the equations are sums of products.  Mapping a
wide SOP directly onto 2/3/4-input cells wastes area, so the flow factors
each SOP algebraically first: the literal appearing in the largest number of
product terms is pulled out, and the quotient and remainder are factored
recursively.  This is the classic "most-common-literal" quick factoring
used by multi-level synthesis systems; it reduces literal count and, more
importantly, shortens the longest paths the paper's second optimization
phase cares about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from . import expr as E


def _as_product_terms(expression: E.BExpr) -> Optional[List[Tuple[E.BExpr, ...]]]:
    """View an expression as a list of product terms, or ``None`` if it is
    not a simple OR-of-ANDs over literals/opaque factors."""
    if isinstance(expression, E.Or):
        terms = []
        for arg in expression.args:
            term = _as_single_term(arg)
            if term is None:
                return None
            terms.append(term)
        return terms
    term = _as_single_term(expression)
    if term is None:
        return None
    return [term]


def _as_single_term(expression: E.BExpr) -> Optional[Tuple[E.BExpr, ...]]:
    if isinstance(expression, E.And):
        factors = []
        for arg in expression.args:
            if _is_factor(arg):
                factors.append(arg)
            else:
                return None
        return tuple(factors)
    if _is_factor(expression):
        return (expression,)
    return None


def _is_factor(expression: E.BExpr) -> bool:
    """Literals and opaque sub-terms count as atomic factors."""
    if isinstance(expression, (E.Var, E.Const, E.Buf, E.Special, E.Xor, E.Xnor)):
        return True
    if isinstance(expression, E.Not):
        return True
    return False


def _most_common_factor(terms: Sequence[Tuple[E.BExpr, ...]]) -> Optional[E.BExpr]:
    counts: Dict[E.BExpr, int] = {}
    for term in terms:
        for factor in set(term):
            counts[factor] = counts.get(factor, 0) + 1
    best = None
    best_count = 1
    # Ties are broken by the structural repr, not by dict order: the dict
    # is populated in set-iteration order, which varies with the process
    # hash seed and used to make synthesized netlists irreproducible
    # across runs (caught by the golden-file suite).
    for factor, count in sorted(counts.items(), key=lambda item: repr(item[0])):
        if count > best_count:
            best = factor
            best_count = count
    return best


def factor(expression: E.BExpr, max_depth: int = 16) -> E.BExpr:
    """Return an algebraically factored form of ``expression``.

    The result is logically identical (same on-set); only its structure
    changes.  Expressions that are not OR-of-AND shaped are returned with
    their children factored recursively.
    """
    if max_depth <= 0:
        return expression
    if isinstance(expression, (E.Var, E.Const)):
        return expression
    if isinstance(expression, E.Not):
        return E.not_(factor(expression.operand, max_depth - 1))
    if isinstance(expression, E.Buf):
        return E.buf(factor(expression.operand, max_depth - 1))
    if isinstance(expression, E.Xor):
        return E.xor(factor(expression.left, max_depth - 1), factor(expression.right, max_depth - 1))
    if isinstance(expression, E.Xnor):
        return E.xnor(factor(expression.left, max_depth - 1), factor(expression.right, max_depth - 1))
    if isinstance(expression, E.Special):
        return E.Special(
            expression.kind,
            tuple(factor(arg, max_depth - 1) for arg in expression.args),
            expression.param,
        )
    if isinstance(expression, E.And):
        return E.and_(*(factor(arg, max_depth - 1) for arg in expression.args))

    terms = _as_product_terms(expression)
    if terms is None or len(terms) < 2:
        if isinstance(expression, E.Or):
            return E.or_(*(factor(arg, max_depth - 1) for arg in expression.args))
        return expression

    divisor = _most_common_factor(terms)
    if divisor is None:
        return expression

    quotient_terms: List[Tuple[E.BExpr, ...]] = []
    remainder_terms: List[Tuple[E.BExpr, ...]] = []
    for term in terms:
        if divisor in term:
            rest = tuple(f for f in term if f != divisor)
            quotient_terms.append(rest if rest else ())
        else:
            remainder_terms.append(term)

    quotient = E.or_(*(_term_to_expr(term) for term in quotient_terms))
    factored_quotient = factor(quotient, max_depth - 1)
    product = E.and_(divisor, factored_quotient)
    if not remainder_terms:
        return product
    remainder = E.or_(*(_term_to_expr(term) for term in remainder_terms))
    factored_remainder = factor(remainder, max_depth - 1)
    return E.or_(product, factored_remainder)


def _term_to_expr(term: Tuple[E.BExpr, ...]) -> E.BExpr:
    if not term:
        return E.TRUE
    return E.and_(*term)


def factoring_gain(expression: E.BExpr) -> int:
    """Literal-count reduction achieved by factoring (>= 0)."""
    return max(0, E.count_literals(expression) - E.count_literals(factor(expression)))
