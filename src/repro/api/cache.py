"""Canonical-signature result cache for catalog-based component requests.

Section 2.2 of the paper keeps generated instances around "so they can be
queried, refined and reused instead of regenerated".  The service layer
takes that one step further: a catalog-based ``request_component`` whose
implementation, parameters, constraints and target match an earlier
generation reuses the synthesized netlist and estimates under a fresh
instance name instead of re-running logic synthesis, sizing and
estimation -- the hot path of every datapath builder that instantiates the
same register or multiplexer dozens of times.

The cache key is a canonical signature tuple (implementation, sorted
parameters, canonical constraints JSON, target); entries are detached
snapshot instances (never registered with any design), so later mutations
of served instances -- a ``request_layout``, a transaction delete --
cannot corrupt the template.  All operations are lock-protected: sessions
of one service share a single cache concurrently.
"""

from __future__ import annotations

import copy
from typing import Hashable, Mapping, Tuple

from ..constraints import (
    Constraints,
    DEFAULT_CONSTRAINTS,
    canonical_constraints_json,
)
from ..core.gencache import CountedLruCache
from ..core.instances import ComponentInstance

__all__ = ["DEFAULT_CONSTRAINTS", "ResultCache", "clone_instance"]


def clone_instance(
    template: ComponentInstance, name: str, design: str = ""
) -> ComponentInstance:
    """A fresh instance sharing the template's synthesized artifacts.

    The flat IIF, gate netlist, delay report, shape function, area record
    and render cache are immutable (or append-only) once generated and are
    shared via a shallow copy; everything a later operation may mutate
    (parameter / function / violation lists, the files map) is replaced
    with a private copy.
    """
    clone = copy.copy(template)
    clone.name = name
    clone.parameters = dict(template.parameters)
    clone.functions = list(template.functions)
    clone.constraint_violations = list(template.constraint_violations)
    clone.files = {}
    clone.design = design
    clone.cached = True
    return clone


class ResultCache(CountedLruCache):
    """LRU cache from canonical request signatures to snapshot instances.

    The LRU behaviour and the counter accounting (``hits + misses ==
    lookups``, ``entries == stores - evictions``; a generation cancelled
    before its store leaves no counter or entry behind) live in the shared
    :class:`~repro.core.gencache.CountedLruCache` base, which the
    generation cache's stage caches use too.  This subclass adds the
    canonical request signature and snapshot-on-store semantics.
    """

    @staticmethod
    def signature(
        implementation: str,
        parameters: Mapping[str, int],
        constraints: Constraints,
        target: str,
    ) -> Tuple[str, Tuple[Tuple[str, int], ...], str, str]:
        """Canonical signature of a catalog-based generation request."""
        return (
            implementation,
            tuple(sorted((key, int(value)) for key, value in parameters.items())),
            canonical_constraints_json(constraints),
            target,
        )

    def store(self, key: Hashable, instance: ComponentInstance) -> None:
        """Snapshot ``instance`` (a detached clone) as the template for ``key``."""
        super().store(key, clone_instance(instance, instance.name))
