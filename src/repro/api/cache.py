"""Canonical-signature result cache for catalog-based component requests.

Section 2.2 of the paper keeps generated instances around "so they can be
queried, refined and reused instead of regenerated".  The service layer
takes that one step further: a catalog-based ``request_component`` whose
implementation, parameters, constraints and target match an earlier
generation reuses the synthesized netlist and estimates under a fresh
instance name instead of re-running logic synthesis, sizing and
estimation -- the hot path of every datapath builder that instantiates the
same register or multiplexer dozens of times.

The cache key is a canonical signature tuple (implementation, sorted
parameters, canonical constraints JSON, target); entries are detached
snapshot instances (never registered with any design), so later mutations
of served instances -- a ``request_layout``, a transaction delete --
cannot corrupt the template.  All operations are lock-protected: sessions
of one service share a single cache concurrently.
"""

from __future__ import annotations

import copy
import json
import threading
from collections import OrderedDict
from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..constraints import Constraints
from ..core.instances import ComponentInstance

#: The shared default-constraints object (treated as immutable, like every
#: :class:`Constraints` in the pipeline) and its pre-serialized canonical
#: form: the overwhelmingly common bulk request carries no constraints, and
#: re-serializing them dominated the signature cost on the cached hot path.
DEFAULT_CONSTRAINTS = Constraints()
_DEFAULT_CONSTRAINTS_JSON = json.dumps(
    DEFAULT_CONSTRAINTS.to_dict(), sort_keys=True
)


def clone_instance(
    template: ComponentInstance, name: str, design: str = ""
) -> ComponentInstance:
    """A fresh instance sharing the template's synthesized artifacts.

    The flat IIF, gate netlist, delay report, shape function, area record
    and render cache are immutable (or append-only) once generated and are
    shared via a shallow copy; everything a later operation may mutate
    (parameter / function / violation lists, the files map) is replaced
    with a private copy.
    """
    clone = copy.copy(template)
    clone.name = name
    clone.parameters = dict(template.parameters)
    clone.functions = list(template.functions)
    clone.constraint_violations = list(template.constraint_violations)
    clone.files = {}
    clone.design = design
    clone.cached = True
    return clone


class ResultCache:
    """LRU cache from canonical request signatures to snapshot instances."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, ComponentInstance]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.lookups = 0
        self.stores = 0
        self.evictions = 0

    @staticmethod
    def signature(
        implementation: str,
        parameters: Mapping[str, int],
        constraints: Constraints,
        target: str,
    ) -> Tuple[str, Tuple[Tuple[str, int], ...], str, str]:
        """Canonical signature of a catalog-based generation request."""
        if constraints is DEFAULT_CONSTRAINTS or constraints == DEFAULT_CONSTRAINTS:
            constraints_json = _DEFAULT_CONSTRAINTS_JSON
        else:
            constraints_json = json.dumps(constraints.to_dict(), sort_keys=True)
        return (
            implementation,
            tuple(sorted((key, int(value)) for key, value in parameters.items())),
            constraints_json,
            target,
        )

    def lookup(self, key: Hashable) -> Optional[ComponentInstance]:
        """The snapshot for ``key``, or None; updates hit/miss statistics.

        The three counters move together under the cache lock, so at any
        instant ``hits + misses == lookups`` -- the invariant the
        concurrency stress test asserts.
        """
        with self._lock:
            template = self._entries.get(key)
            self.lookups += 1
            if template is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return template

    def store(self, key: Hashable, instance: ComponentInstance) -> None:
        """Snapshot ``instance`` as the template for ``key``.

        ``stores`` and ``evictions`` move together with the entry map
        under the lock, so ``entries == stores - evictions - replaced``
        holds at any instant (``replaced`` being same-key overwrites) --
        the accounting invariant the cancellation stress tests rely on: a
        generation cancelled before this point has left *no* counter or
        entry behind.
        """
        snapshot = clone_instance(instance, instance.name)
        with self._lock:
            if key in self._entries:
                self.evictions += 1  # same-key overwrite replaces a snapshot
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.lookups = 0
            self.stores = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the counters (taken under the lock)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.lookups,
                "stores": self.stores,
                "evictions": self.evictions,
            }
