"""Canonical-signature result cache for catalog-based component requests.

Section 2.2 of the paper keeps generated instances around "so they can be
queried, refined and reused instead of regenerated".  The service layer
takes that one step further: a catalog-based ``request_component`` whose
implementation, parameters, constraints and target match an earlier
generation reuses the synthesized netlist and estimates under a fresh
instance name instead of re-running logic synthesis, sizing and
estimation -- the hot path of every datapath builder that instantiates the
same register or multiplexer dozens of times.

The cache key is a canonical JSON signature; entries are detached snapshot
instances (never registered with any design), so later mutations of served
instances -- a ``request_layout``, a transaction delete -- cannot corrupt
the template.  All operations are lock-protected: sessions of one service
share a single cache concurrently.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, Mapping, Optional

from ..constraints import Constraints
from ..core.instances import ComponentInstance


def clone_instance(
    template: ComponentInstance, name: str, design: str = ""
) -> ComponentInstance:
    """A fresh instance sharing the template's synthesized artifacts.

    The flat IIF, gate netlist, delay report, shape function and area
    record are immutable once generated and are shared; everything a later
    operation may mutate (parameter / function / violation lists, the files
    map, layout and target) is copied.
    """
    return ComponentInstance(
        name=name,
        implementation=template.implementation,
        component_type=template.component_type,
        parameters=dict(template.parameters),
        functions=list(template.functions),
        constraints=template.constraints,
        flat=template.flat,
        netlist=template.netlist,
        delay_report=template.delay_report,
        shape=template.shape,
        area_record=template.area_record,
        connection_info=template.connection_info,
        target=template.target,
        layout=template.layout,
        constraint_violations=list(template.constraint_violations),
        sizing_iterations=template.sizing_iterations,
        design=design,
        cached=True,
        # Shared on purpose: the renders are pure functions of the shared
        # netlist / report objects, so every clone reuses one rendering.
        render_cache=template.render_cache,
    )


class ResultCache:
    """LRU cache from canonical request signatures to snapshot instances."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, ComponentInstance]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def signature(
        implementation: str,
        parameters: Mapping[str, int],
        constraints: Constraints,
        target: str,
    ) -> str:
        """Canonical signature of a catalog-based generation request."""
        payload = {
            "implementation": implementation,
            "parameters": {key: int(value) for key, value in parameters.items()},
            "constraints": constraints.to_dict(),
            "target": target,
        }
        return json.dumps(payload, sort_keys=True)

    def lookup(self, key: str) -> Optional[ComponentInstance]:
        """The snapshot for ``key``, or None; updates hit/miss statistics."""
        with self._lock:
            template = self._entries.get(key)
            if template is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return template

    def store(self, key: str, instance: ComponentInstance) -> None:
        """Snapshot ``instance`` as the template for ``key``."""
        snapshot = clone_instance(instance, instance.name)
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
