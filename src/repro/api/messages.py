"""Typed request / response envelopes for every ICDB server operation.

The paper's ICDB is a *component server*: many synthesis tools call it
concurrently through the ``ICDB()`` / CQL interface.  This module defines
the wire contract of that server as frozen dataclasses, one per operation:

========================  =================================================
request type              server operation
========================  =================================================
:class:`ComponentQuery`   ``component_query`` (implementations / functions)
:class:`FunctionQuery`    ``function_query`` (by executed functions)
:class:`InstanceQuery`    ``instance_query`` / ``connect_component``
:class:`ComponentRequest` ``request_component`` (generate an instance)
:class:`PlanQuery`        declarative component query / design-space plan
:class:`LayoutRequest`    layout generation for an existing instance
:class:`Simulate`         batch vector simulation of an existing instance
:class:`CheckEquivalence` flat-vs-gate equivalence check of an instance
:class:`DesignOp`         design / transaction / component-list management
:class:`SubmitJob`        run any request as an asynchronous server job
:class:`JobStatus`        poll (or wait for) a job; fetch its events
:class:`CancelJob`        cooperatively cancel a queued / running job
:class:`WarmCache`        prime generation-stage memos (optionally fleet-wide)
:class:`FleetGenerate`    compute one generation's stage bundle (fleet worker)
========================  =================================================

Two more wire dataclasses are not requests: :class:`JobEvent` is the
server-pushed progress record of a running job, and
:class:`AttachSession` is the alternative opening handshake frame that
resumes an existing session by token (sessions are decoupled from
connections; see :mod:`repro.net`).

Every request and the :class:`Response` envelope round-trip through
``to_dict()`` -> JSON -> ``from_dict()``, so a socket or HTTP transport can
be layered on later without touching the service.  Responses carry
``ok`` / ``value`` / ``error`` (a structured
:class:`~repro.api.errors.IcdbErrorInfo`), timing metadata and a
cache-provenance flag; for the in-process transport they additionally keep
the original exception so legacy call paths re-raise exactly what the old
facade raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

from ..constraints import Constraints, PortPosition
from ..core.icdb import IcdbError
from ..core.instances import TARGET_LOGIC
from ..netlist.structural import StructuralNetlist
from ..sim.verify import EQUIVALENCE_MODES, SIM_ENGINES
from .errors import E_BAD_REQUEST, E_PROTOCOL, IcdbErrorInfo
from .query import QuerySpec

#: Version of the wire contract spoken by :mod:`repro.net`.  Bump when a
#: frame or envelope changes incompatibly; the handshake rejects mismatches.
#: Version 2: job-oriented async API (submit/status/cancel requests,
#: server-pushed ``job_event`` frames) and session tokens with the
#: ``attach`` resume handshake.
PROTOCOL_VERSION = 2


def _tuple(value) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class Request:
    """Base class: every server operation is one frozen request object."""

    kind: ClassVar[str] = ""

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Request":
        raise NotImplementedError


@dataclass(frozen=True)
class ComponentQuery(Request):
    """The CQL ``component_query``.

    With ``component`` (and optionally ``functions``): which implementations
    match.  With ``implementation`` (an implementation or generated-instance
    name): which functions it executes.
    """

    kind: ClassVar[str] = "component_query"

    component: Optional[str] = None
    implementation: Optional[str] = None
    functions: Tuple[str, ...] = ()
    attributes: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "component": self.component,
            "implementation": self.implementation,
            "functions": list(self.functions),
            "attributes": dict(self.attributes) if self.attributes else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComponentQuery":
        return cls(
            component=data.get("component"),
            implementation=data.get("implementation"),
            functions=_tuple(data.get("functions")),
            attributes=dict(data["attributes"]) if data.get("attributes") else None,
        )


#: Valid ``want`` values of a :class:`FunctionQuery`.
FUNCTION_QUERY_WANTS = ("implementation", "component")


@dataclass(frozen=True)
class FunctionQuery(Request):
    """The CQL ``function_query``: what can execute *all* given functions."""

    kind: ClassVar[str] = "function_query"

    functions: Tuple[str, ...] = ()
    want: str = "implementation"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "functions": list(self.functions), "want": self.want}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionQuery":
        return cls(
            functions=_tuple(data.get("functions")),
            want=data.get("want", "implementation"),
        )


@dataclass(frozen=True)
class InstanceQuery(Request):
    """The CQL ``instance_query`` (and ``connect_component``).

    ``fields`` optionally restricts the answer to the named report fields
    (e.g. ``("connect",)``); empty means everything known.
    """

    kind: ClassVar[str] = "instance_query"

    name: str = ""
    fields: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "fields": list(self.fields)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "InstanceQuery":
        return cls(name=data.get("name", ""), fields=_tuple(data.get("fields")))


#: Valid ``detail`` projections of a :class:`ComponentRequest` answer.
COMPONENT_DETAILS = ("full", "summary")


@dataclass(frozen=True)
class ComponentRequest(Request):
    """The CQL ``request_component``: generate a component instance.

    Exactly one of the three specification types of Section 3.2.2 applies:
    a component / implementation name plus attributes, an IIF description,
    or a structural netlist of existing instances.  ``use_cache`` opts out
    of the canonical-signature result cache for the catalog-based path.
    ``detail`` selects the answer projection: ``"full"`` carries every
    render a client may want (delay / area / shape reports, file paths);
    ``"summary"`` only the instance identity and headline numbers, which
    bulk pipelined clients use to keep response frames small.
    """

    kind: ClassVar[str] = "request_component"

    component_name: Optional[str] = None
    implementation: Optional[str] = None
    iif: Optional[str] = None
    structure: Optional[StructuralNetlist] = None
    functions: Tuple[str, ...] = ()
    attributes: Optional[Dict[str, Any]] = None
    constraints: Optional[Constraints] = None
    strategy: Optional[str] = None
    target: str = TARGET_LOGIC
    instance_name: Optional[str] = None
    parameters: Optional[Dict[str, int]] = None
    use_cache: bool = True
    detail: str = "full"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "component_name": self.component_name,
            "implementation": self.implementation,
            "iif": self.iif,
            "structure": self.structure.to_dict() if self.structure else None,
            "functions": list(self.functions),
            "attributes": dict(self.attributes) if self.attributes else None,
            "constraints": self.constraints.to_dict() if self.constraints else None,
            "strategy": self.strategy,
            "target": self.target,
            "instance_name": self.instance_name,
            "parameters": dict(self.parameters) if self.parameters else None,
            "use_cache": self.use_cache,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ComponentRequest":
        return cls(
            component_name=data.get("component_name"),
            implementation=data.get("implementation"),
            iif=data.get("iif"),
            structure=(
                StructuralNetlist.from_dict(data["structure"])
                if data.get("structure")
                else None
            ),
            functions=_tuple(data.get("functions")),
            attributes=dict(data["attributes"]) if data.get("attributes") else None,
            constraints=(
                Constraints.from_dict(data["constraints"])
                if data.get("constraints")
                else None
            ),
            strategy=data.get("strategy"),
            target=data.get("target", TARGET_LOGIC),
            instance_name=data.get("instance_name"),
            parameters=(
                {key: int(value) for key, value in data["parameters"].items()}
                if data.get("parameters")
                else None
            ),
            use_cache=bool(data.get("use_cache", True)),
            detail=data.get("detail", "full"),
        )


@dataclass(frozen=True)
class PlanQuery(Request):
    """A declarative component query: select, bound, sweep, rank.

    ``query`` is a :class:`~repro.api.query.QuerySpec` -- predicates over
    the catalog, metric bounds, an objective (single-metric, weighted or
    Pareto) and the design-space enumeration (sweep axes or explicit
    points).  The server plans it (:mod:`repro.api.planner`): candidates
    are pruned with cheap pre-generation checks, survivors generate
    through the cached engine -- fanned out over the job worker pool --
    and the answer is the full :class:`~repro.api.planner.PlanResult`
    wire form: every candidate report, the ranked winners, the Pareto
    front, and the ``explain`` planning report.

    Plans cannot ride in a batch: a batch holds the service lock for its
    whole execution, while a plan fans its candidates out across job
    workers that need that lock to register instances.  Submitting a plan
    *as a job* is fine -- on a worker thread the planner generates
    inline.
    """

    kind: ClassVar[str] = "plan_query"

    query: QuerySpec = field(default_factory=QuerySpec)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "query": self.query.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanQuery":
        return cls(query=QuerySpec.from_dict(data.get("query") or {}))


@dataclass(frozen=True)
class LayoutRequest(Request):
    """Generate (and store) the layout of an existing instance.

    ``alternative`` is the 1-based index into the instance's shape function,
    as in the paper's ``alternative:3`` layout request.
    """

    kind: ClassVar[str] = "request_layout"

    name: str = ""
    alternative: Optional[int] = None
    strips: Optional[int] = None
    port_positions: Tuple[PortPosition, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "alternative": self.alternative,
            "strips": self.strips,
            "port_positions": [p.to_dict() for p in self.port_positions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayoutRequest":
        return cls(
            name=data.get("name", ""),
            alternative=data.get("alternative"),
            strips=data.get("strips"),
            port_positions=tuple(
                PortPosition.from_dict(item)
                for item in (data.get("port_positions") or ())
            ),
        )


@dataclass(frozen=True)
class Simulate(Request):
    """Batch-simulate test vectors on an existing instance.

    The server runs the named instance's bit-parallel engine
    (:mod:`repro.sim.batch`) over the vectors -- one lane per vector --
    and answers one output assignment per vector.  ``engine`` selects the
    model (:data:`~repro.sim.verify.SIM_ENGINES`): ``"gates"`` simulates
    the synthesized gate netlist, ``"flat"`` the flat IIF reference.
    Without a ``clock`` every vector is an independent experiment from
    reset; with one, the vectors are the consecutive per-cycle stimuli of
    a single trace.
    """

    kind: ClassVar[str] = "simulate"

    name: str = ""
    vectors: Tuple[Dict[str, int], ...] = ()
    engine: str = "gates"
    clock: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in SIM_ENGINES:
            raise IcdbError(
                f"unknown simulation engine {self.engine!r}; expected one "
                f"of {SIM_ENGINES}",
                code=E_BAD_REQUEST,
            )
        object.__setattr__(
            self,
            "vectors",
            tuple(
                {str(name): 1 if value else 0 for name, value in vector.items()}
                for vector in self.vectors
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "vectors": [dict(vector) for vector in self.vectors],
            "engine": self.engine,
            "clock": self.clock,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Simulate":
        vectors = data.get("vectors") or ()
        if not isinstance(vectors, (list, tuple)) or any(
            not isinstance(vector, Mapping) for vector in vectors
        ):
            raise IcdbError(
                "simulate 'vectors' must be a list of input assignments",
                code=E_BAD_REQUEST,
            )
        clock = data.get("clock")
        return cls(
            name=str(data.get("name") or ""),
            vectors=tuple(dict(vector) for vector in vectors),
            engine=str(data.get("engine") or "gates"),
            clock=str(clock) if clock is not None else None,
        )


@dataclass(frozen=True)
class CheckEquivalence(Request):
    """Check an instance's gate netlist against a flat reference.

    With no ``reference`` the instance is checked against its *own* flat
    IIF form (did synthesis preserve the function?); with one, the
    referenced instance's flat form is the specification -- the planner's
    ``require_equivalent_to`` bound and cross-implementation comparisons
    use this.  ``mode`` is one of
    :data:`~repro.sim.verify.EQUIVALENCE_MODES`: ``"auto"`` picks the
    sequential lock-step check when either side holds state, the
    combinational sweep otherwise.  The answer embeds the
    :class:`~repro.sim.vectors.EquivalenceResult` wire form, including a
    counterexample vector on failure.
    """

    kind: ClassVar[str] = "check_equivalence"

    name: str = ""
    reference: Optional[str] = None
    mode: str = "auto"
    clock: Optional[str] = None
    max_exhaustive: int = 10
    samples: int = 256
    cycles: int = 32
    lanes: int = 64
    seed: int = 1990

    def __post_init__(self) -> None:
        if self.mode not in EQUIVALENCE_MODES:
            raise IcdbError(
                f"unknown equivalence mode {self.mode!r}; expected one of "
                f"{EQUIVALENCE_MODES}",
                code=E_BAD_REQUEST,
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "reference": self.reference,
            "mode": self.mode,
            "clock": self.clock,
            "max_exhaustive": self.max_exhaustive,
            "samples": self.samples,
            "cycles": self.cycles,
            "lanes": self.lanes,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckEquivalence":
        reference = data.get("reference")
        clock = data.get("clock")
        try:
            numbers = {
                field_name: int(data.get(field_name, default))
                for field_name, default in (
                    ("max_exhaustive", 10),
                    ("samples", 256),
                    ("cycles", 32),
                    ("lanes", 64),
                    ("seed", 1990),
                )
            }
        except (TypeError, ValueError):
            raise IcdbError(
                "check_equivalence sizing fields must be integers",
                code=E_BAD_REQUEST,
            )
        return cls(
            name=str(data.get("name") or ""),
            reference=str(reference) if reference is not None else None,
            mode=str(data.get("mode") or "auto"),
            clock=str(clock) if clock is not None else None,
            **numbers,
        )


#: Valid operations of a :class:`DesignOp`.
DESIGN_OPS = (
    "start_design",
    "start_transaction",
    "put_in_list",
    "component_list",
    "end_transaction",
    "end_design",
)


@dataclass(frozen=True)
class DesignOp(Request):
    """Design / transaction / component-list management.

    ``op`` is one of :data:`DESIGN_OPS`; ``design`` defaults to the
    session's current design; ``instance`` is required by ``put_in_list``.
    """

    kind: ClassVar[str] = "design_op"

    op: str = ""
    design: str = ""
    instance: str = ""

    def __post_init__(self) -> None:
        if self.op not in DESIGN_OPS:
            raise IcdbError(
                f"unknown design operation {self.op!r}; expected one of {DESIGN_OPS}",
                code=E_BAD_REQUEST,
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "op": self.op,
            "design": self.design,
            "instance": self.instance,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DesignOp":
        return cls(
            op=data.get("op", ""),
            design=data.get("design", ""),
            instance=data.get("instance", ""),
        )


@dataclass(frozen=True)
class BatchRequest(Request):
    """A pipelined batch: several requests executed in one server pass.

    The server executes the member requests in order against one session
    -- the whole sequence ``repeat`` times over -- under a single
    acquisition of the service lock, and answers with one
    :class:`Response` whose ``value`` is the list of the member responses'
    ``to_dict()`` forms (``repeat * len(requests)`` of them, in execution
    order).  ``repeat`` is the ``executemany`` of the protocol: bulk
    generators asking for N identical cached components ship and parse the
    request once instead of N times.  Batches cannot nest.
    """

    kind: ClassVar[str] = "batch"

    #: Ceiling on ``repeat * len(requests)``: a batch holds the service
    #: lock for its whole execution, so one frame must not be able to
    #: queue unbounded work (or allocate an unbounded flattened tuple).
    MAX_TOTAL_REQUESTS: ClassVar[int] = 10_000

    requests: Tuple[Request, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if any(isinstance(member, BatchRequest) for member in self.requests):
            raise IcdbError("batch requests cannot be nested", code=E_BAD_REQUEST)
        # Job control is connection-level: a batch holds the service lock
        # for its whole execution, and a waiting job_status inside it would
        # deadlock against the very job it awaits.
        offenders = [m.kind for m in self.requests if m.kind in JOB_CONTROL_KINDS]
        if offenders:
            raise IcdbError(
                f"job-control requests cannot ride in a batch: {offenders}",
                code=E_BAD_REQUEST,
            )
        # A batch holds the service lock for its whole execution; a plan
        # fans candidates out across job workers that need that lock to
        # register instances -- waiting on them from inside the batch
        # would deadlock.
        if any(isinstance(member, PlanQuery) for member in self.requests):
            raise IcdbError(
                "plan_query requests cannot ride in a batch "
                "(a plan fans out across the job worker pool)",
                code=E_BAD_REQUEST,
            )
        if not isinstance(self.repeat, int) or self.repeat < 1:
            raise IcdbError(
                f"batch repeat must be a positive integer, got {self.repeat!r}",
                code=E_BAD_REQUEST,
            )
        total = self.repeat * len(self.requests)
        if total > self.MAX_TOTAL_REQUESTS:
            raise IcdbError(
                f"batch of {total} requests exceeds the "
                f"{self.MAX_TOTAL_REQUESTS}-request limit",
                code=E_BAD_REQUEST,
            )

    def flattened(self) -> Tuple[Request, ...]:
        """The full request sequence with ``repeat`` applied."""
        if self.repeat == 1:
            return self.requests
        return self.requests * self.repeat

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "requests": [member.to_dict() for member in self.requests],
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchRequest":
        members = data.get("requests") or ()
        if not isinstance(members, (list, tuple)):
            raise IcdbError("batch 'requests' must be a list", code=E_BAD_REQUEST)
        repeat = data.get("repeat", 1)
        if not isinstance(repeat, int) or isinstance(repeat, bool):
            raise IcdbError(
                f"batch repeat must be an integer, got {repeat!r}", code=E_BAD_REQUEST
            )
        return cls(
            requests=tuple(request_from_dict(member) for member in members),
            repeat=repeat,
        )


#: Job lifecycle states, in the order a job moves through them.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: States a job never leaves once reached.
JOB_TERMINAL_STATES = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


@dataclass(frozen=True)
class SubmitJob(Request):
    """Run any service request as an asynchronous server-side job.

    The answer is a *job descriptor* (``job_id``, ``state``, timing and
    progress fields), returned immediately; the wrapped request executes
    on the service's bounded worker pool.  Jobs of one session are
    dispatched in submit order (per-session FIFO); jobs of different
    sessions run in parallel.  Job-control requests cannot themselves be
    submitted as jobs, and neither can batches containing them.
    """

    kind: ClassVar[str] = "submit_job"

    request: Optional[Request] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.request is None:
            raise IcdbError(
                "submit_job requires a wrapped 'request'", code=E_BAD_REQUEST
            )
        if isinstance(self.request, (SubmitJob, JobStatus, CancelJob)):
            raise IcdbError(
                f"a {self.request.kind!r} request cannot be submitted as a job",
                code=E_BAD_REQUEST,
            )

    def to_dict(self) -> Dict[str, Any]:
        assert self.request is not None
        return {
            "kind": self.kind,
            "request": self.request.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitJob":
        inner = data.get("request")
        if not isinstance(inner, Mapping):
            raise IcdbError(
                "submit_job requires a 'request' object", code=E_BAD_REQUEST
            )
        return cls(
            request=request_from_dict(inner), label=str(data.get("label") or "")
        )


@dataclass(frozen=True)
class JobStatus(Request):
    """Poll one job's descriptor; optionally wait and fetch its events.

    ``wait=True`` blocks server-side until the job reaches a terminal
    state or ``timeout_ms`` expires (an ``E_TIMEOUT`` error envelope; the
    job itself is unaffected).  ``include_events`` attaches the retained
    event history (entries with ``seq > events_since``) to the
    descriptor.  A terminal descriptor carries the job's full
    :class:`Response` envelope under ``"response"``.
    """

    kind: ClassVar[str] = "job_status"

    job_id: str = ""
    wait: bool = False
    timeout_ms: Optional[float] = None
    include_events: bool = False
    events_since: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "wait": self.wait,
            "timeout_ms": self.timeout_ms,
            "include_events": self.include_events,
            "events_since": self.events_since,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        timeout = data.get("timeout_ms")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise IcdbError(
                    "job_status 'timeout_ms' must be a number", code=E_BAD_REQUEST
                )
        try:
            since = int(data.get("events_since") or 0)
        except (TypeError, ValueError):
            raise IcdbError(
                "job_status 'events_since' must be an integer", code=E_BAD_REQUEST
            )
        return cls(
            job_id=str(data.get("job_id") or ""),
            wait=bool(data.get("wait", False)),
            timeout_ms=timeout,
            include_events=bool(data.get("include_events", False)),
            events_since=since,
        )


@dataclass(frozen=True)
class CancelJob(Request):
    """Cooperatively cancel a job.

    A queued job is cancelled immediately; a running job stops at its next
    generation / layout checkpoint (its worker slot is freed and no
    instance or artifact is left behind).  Cancelling a terminal job is a
    no-op answering the final descriptor.
    """

    kind: ClassVar[str] = "cancel_job"

    job_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "job_id": self.job_id}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CancelJob":
        return cls(job_id=str(data.get("job_id") or ""))


@dataclass(frozen=True)
class GetMetrics(Request):
    """Export the service's metrics registry snapshot.

    Answers the :meth:`repro.obs.MetricsRegistry.snapshot` dict:
    ``version`` / ``time`` plus flat ``counters`` (owned counters merged
    with the collector-pulled cache / job / session accounting),
    ``gauges`` and fixed-bucket ``histograms``.  ``prefixes`` keeps only
    metric names starting with any given prefix (empty = everything);
    ``include_histograms=False`` drops the bucket arrays for cheap
    high-frequency polling.
    """

    kind: ClassVar[str] = "get_metrics"

    prefixes: Tuple[str, ...] = ()
    include_histograms: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "prefixes": list(self.prefixes),
            "include_histograms": self.include_histograms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GetMetrics":
        prefixes = data.get("prefixes")
        if prefixes is not None and not isinstance(prefixes, (list, tuple, str)):
            raise IcdbError(
                "get_metrics 'prefixes' must be a list of strings",
                code=E_BAD_REQUEST,
            )
        return cls(
            prefixes=tuple(str(p) for p in _tuple(prefixes)),
            include_histograms=bool(data.get("include_histograms", True)),
        )


@dataclass(frozen=True)
class Ping(Request):
    """Liveness and health probe.

    Unlike the frame-level ``ping``/``pong`` (a pure codec round trip),
    this is a *typed* request: it travels the full request path and
    answers the service's health dict -- status (``ok`` / ``draining``),
    uptime, protocol version, job queue depths, durable-store recovery
    state and whatever health sources the hosting server registered
    (live session counts, drain / shed state).  ``echo`` is returned
    verbatim, so a client can correlate probes.
    """

    kind: ClassVar[str] = "ping"

    echo: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "echo": self.echo}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Ping":
        echo = data.get("echo")
        if echo is not None and not isinstance(echo, str):
            raise IcdbError("ping 'echo' must be a string", code=E_BAD_REQUEST)
        return cls(echo=echo or "")


@dataclass(frozen=True)
class JobEvent:
    """One progress record of a job (pushed as a ``job_event`` frame).

    ``seq`` is monotonic per job (starting at 1); ``state`` is the job
    state after the event; ``stage`` / ``progress`` describe the pipeline
    checkpoint that produced it.  ``timestamp`` is server wall-clock
    seconds (``time.time()``).
    """

    job_id: str = ""
    seq: int = 0
    state: str = JOB_QUEUED
    stage: str = ""
    progress: float = 0.0
    message: str = ""
    timestamp: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "stage": self.stage,
            "progress": self.progress,
            "message": self.message,
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "JobEvent":
        return JobEvent(
            job_id=str(data.get("job_id") or ""),
            seq=int(data.get("seq") or 0),
            state=str(data.get("state") or JOB_QUEUED),
            stage=str(data.get("stage") or ""),
            progress=float(data.get("progress") or 0.0),
            message=str(data.get("message") or ""),
            timestamp=float(data.get("timestamp") or 0.0),
        )


@dataclass(frozen=True)
class AttachSession:
    """The alternative opening frame: resume an existing session by token.

    The ``hello`` / ``welcome`` handshake issues a ``session_token``; a
    later connection opens with ``attach`` instead of ``hello`` to bind to
    that same server-side session -- its design context and its jobs
    (running or finished) survive the connection that submitted them.
    """

    protocol: int = PROTOCOL_VERSION
    token: str = ""
    client: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "attach",
            "protocol": self.protocol,
            "token": self.token,
            "client": self.client,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "AttachSession":
        try:
            protocol = int(data.get("protocol", 0))
        except (TypeError, ValueError):
            raise IcdbError("attach 'protocol' must be an integer", code=E_PROTOCOL)
        return AttachSession(
            protocol=protocol,
            token=str(data.get("token") or ""),
            client=str(data.get("client") or ""),
        )


@dataclass(frozen=True)
class WarmCache(Request):
    """Prime the server's generation-stage memo for catalog elaborations.

    Each entry is a plain mapping selecting what to warm: either an
    explicit ``implementation`` name, or a ``component`` /``functions``
    pair the catalog resolves (every matching implementation is warmed),
    plus optional ``attributes`` / ``parameters`` overrides, an optional
    ``constraints`` dict and an optional ``name`` labelling the template
    the way the eventual requester would.  Warming runs the expand /
    synth / size / estimate stages through the normal memo *without*
    registering anything, so it is idempotent and safe to retry blindly.

    ``fanout`` asks a fleet-attached server to also broadcast the warm to
    its workers so their local caches prime too; a worker (or a server
    with no fleet) warms only itself.
    """

    kind: ClassVar[str] = "warm_cache"

    entries: Tuple[Dict[str, Any], ...] = ()
    fanout: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "entries": [dict(entry) for entry in self.entries],
            "fanout": self.fanout,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WarmCache":
        raw = data.get("entries") or ()
        if isinstance(raw, Mapping):
            raw = (raw,)
        return cls(
            entries=tuple(dict(entry) for entry in raw),
            fanout=bool(data.get("fanout", True)),
        )


@dataclass(frozen=True)
class FleetGenerate(Request):
    """A fleet worker's unit of work: compute one generation's stage bundle.

    The dispatcher sends this to a worker process; the worker runs the
    catalog elaboration (expand, synthesize, size, estimate) through its
    own generation cache and answers with the pickled stage entries --
    the server installs them and replays the original request locally as
    a warm hit.  The work is pure cache priming: nothing is registered
    or persisted on the worker, so re-executing after an ambiguous
    failure is harmless and the kind is classified idempotent.
    """

    kind: ClassVar[str] = "fleet_generate"

    implementation: str = ""
    parameters: Optional[Dict[str, int]] = None
    constraints: Optional[Constraints] = None
    name: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "implementation": self.implementation,
            "parameters": dict(self.parameters) if self.parameters else None,
            "constraints": self.constraints.to_dict() if self.constraints else None,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetGenerate":
        return cls(
            implementation=str(data.get("implementation") or ""),
            parameters=(
                {key: int(value) for key, value in data["parameters"].items()}
                if data.get("parameters")
                else None
            ),
            constraints=(
                Constraints.from_dict(data["constraints"])
                if data.get("constraints")
                else None
            ),
            name=data.get("name"),
        )


#: Request kinds that control jobs rather than doing work themselves.
#: Transports execute these inline on the connection (a waiting
#: ``JobStatus`` must never occupy a job worker slot), and they are
#: rejected inside batches (a batch holds the service lock, which the
#: awaited job may need).
JOB_CONTROL_KINDS = (SubmitJob.kind, JobStatus.kind, CancelJob.kind)


#: Request kinds that are safe to retry blindly after an ambiguous
#: transport failure: re-executing one cannot change service state
#: beyond what a single execution would (queries, metrics, simulation
#: re-computation, job inspection; ``cancel_job`` is idempotent -- a
#: second cancel of the same job is a no-op).  Everything else mutates
#: (registers instances, layouts, designs or jobs) and must only be
#: retried when the failure provably preceded the send, or under a
#: transport-level ``request_id`` the server dedupes.
IDEMPOTENT_KINDS = (
    ComponentQuery.kind,
    FunctionQuery.kind,
    InstanceQuery.kind,
    Simulate.kind,
    CheckEquivalence.kind,
    JobStatus.kind,
    CancelJob.kind,
    GetMetrics.kind,
    Ping.kind,
    WarmCache.kind,
    FleetGenerate.kind,
)


#: The complement of :data:`IDEMPOTENT_KINDS`: kinds whose execution
#: changes service state (registers instances, layouts, designs or
#: jobs), so a blind retry could double-apply.  Every wire kind must
#: appear in exactly one of the two tuples -- a classification test
#: walks :data:`REQUEST_TYPES` and fails on any kind left out, so a new
#: request type cannot ship unclassified (an unclassified kind would
#: silently get the reconnecting client's no-blind-retry treatment,
#: which is safe but masks the omission).
MUTATING_KINDS = (
    ComponentRequest.kind,
    PlanQuery.kind,
    LayoutRequest.kind,
    DesignOp.kind,
    BatchRequest.kind,
    SubmitJob.kind,
)


#: Registry of request types by wire kind.
REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.kind: cls
    for cls in (
        ComponentQuery,
        FunctionQuery,
        InstanceQuery,
        ComponentRequest,
        PlanQuery,
        LayoutRequest,
        Simulate,
        CheckEquivalence,
        DesignOp,
        BatchRequest,
        SubmitJob,
        JobStatus,
        CancelJob,
        GetMetrics,
        Ping,
        WarmCache,
        FleetGenerate,
    )
}


def request_from_dict(data: Mapping[str, Any]) -> Request:
    """Rebuild any request from its ``to_dict()`` form (transport entry)."""
    if not isinstance(data, Mapping):
        raise IcdbError(
            f"a request must be a mapping, got {type(data).__name__}",
            code=E_BAD_REQUEST,
        )
    kind = data.get("kind")
    request_type = REQUEST_TYPES.get(kind or "")
    if request_type is None:
        raise IcdbError(f"unknown request kind {kind!r}", code=E_BAD_REQUEST)
    return request_type.from_dict(data)


@dataclass(frozen=True)
class Hello:
    """The client's opening frame of a transport connection.

    Carries the protocol version the client speaks and a client label the
    server records on the session it creates for this connection.
    """

    protocol: int = PROTOCOL_VERSION
    client: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "hello", "protocol": self.protocol, "client": self.client}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Hello":
        try:
            protocol = int(data.get("protocol", 0))
        except (TypeError, ValueError):
            raise IcdbError("hello 'protocol' must be an integer", code=E_PROTOCOL)
        return Hello(protocol=protocol, client=str(data.get("client", "")))


@dataclass(frozen=True)
class Welcome:
    """The server's answer to a :class:`Hello` (or ``attach``): the
    session is open.

    ``session_token`` is the resume credential: present it in an
    :class:`AttachSession` frame on a later connection to rebind to this
    session and its jobs.
    """

    protocol: int = PROTOCOL_VERSION
    session_id: str = ""
    server: str = ""
    session_token: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "welcome",
            "protocol": self.protocol,
            "session_id": self.session_id,
            "server": self.server,
            "session_token": self.session_token,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Welcome":
        return Welcome(
            protocol=int(data.get("protocol", 0)),
            session_id=str(data.get("session_id", "")),
            server=str(data.get("server", "")),
            session_token=str(data.get("session_token", "")),
        )


@dataclass
class Response:
    """The envelope every service call returns.

    ``value`` is JSON-serializable (renders and summaries, never live engine
    objects); ``error`` is set when ``ok`` is false.  ``elapsed_ms`` is the
    server-side execution time, ``cached`` marks results served from the
    result cache.  ``exception`` is in-process only (never serialized): the
    original exception, kept so legacy entry points re-raise it unchanged.

    The envelope is a plain (unfrozen) dataclass: responses are built and
    re-parsed once per request on the pipelined hot path, where the
    ``object.__setattr__`` cost of a frozen dataclass is measurable.
    """

    ok: bool
    value: Any = None
    error: Optional[IcdbErrorInfo] = None
    elapsed_ms: float = 0.0
    cached: bool = False
    session_id: str = ""
    request_kind: str = ""
    exception: Optional[BaseException] = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> Dict[str, Any]:
        """The wire form; default-valued fields are omitted (sparse
        encoding -- ``from_dict`` restores the defaults), which keeps the
        per-item envelopes of large batch answers small."""
        data: Dict[str, Any] = {
            "ok": self.ok,
            "value": self.value,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.error is not None:
            data["error"] = self.error.to_dict()
        if self.cached:
            data["cached"] = True
        if self.session_id:
            data["session_id"] = self.session_id
        if self.request_kind:
            data["request_kind"] = self.request_kind
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Response":
        return Response(
            ok=bool(data.get("ok")),
            value=data.get("value"),
            error=(
                IcdbErrorInfo.from_dict(data["error"]) if data.get("error") else None
            ),
            elapsed_ms=float(data.get("elapsed_ms") or 0.0),
            cached=bool(data.get("cached", False)),
            session_id=data.get("session_id", ""),
            request_kind=data.get("request_kind", ""),
        )

    def unwrap(self) -> Any:
        """Return ``value`` or raise: the in-process convenience accessor."""
        if self.ok:
            return self.value
        if self.exception is not None:
            raise self.exception
        if self.error is not None:
            self.error.raise_as_exception()
        raise IcdbError("request failed with no error information")
